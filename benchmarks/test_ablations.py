"""Ablation benchmarks for DESIGN.md's design choices.

These are not paper figures; they probe the knobs the paper discusses
in footnotes and future work:

- Acc_Conf stability (footnote 5): the cost model should not be very
  sensitive over 20-50%.
- MAX_CFM (§3.3): three CFM points suffice; one already captures most
  of the benefit on these CFGs.
- JRS threshold: a near-saturated threshold (14-15) covers the most
  mispredictions; a low threshold forfeits coverage.
- Easy-branch filter (§8.3 future work): excluding always-easy
  branches should not hurt the suite average.
"""

from repro.experiments import ablations


def test_acc_conf_stability(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        ablations.run_acc_conf,
        kwargs={"scale": scale, "benchmarks": suite,
                "values": (0.20, 0.40, 0.50)},
        rounds=1, iterations=1,
    )
    save_result("ablation_acc_conf", ablations.format_result(result))
    means = result["means"]
    spread = max(means.values()) - min(means.values())
    # "not sensitive to reasonable variations in Acc_Conf (20%-50%)"
    assert spread < 0.10


def test_max_cfm(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        ablations.run_max_cfm,
        kwargs={"scale": scale, "benchmarks": suite, "values": (1, 3)},
        rounds=1, iterations=1,
    )
    save_result("ablation_max_cfm", ablations.format_result(result))
    means = result["means"]
    # three CFM points never hurt, and one already carries most benefit
    assert means["max_cfm=3"] >= means["max_cfm=1"] - 0.02
    assert means["max_cfm=1"] > 0.5 * means["max_cfm=3"]


def test_confidence_threshold(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        ablations.run_confidence_threshold,
        kwargs={"scale": scale, "benchmarks": suite, "values": (6, 14)},
        rounds=1, iterations=1,
    )
    save_result(
        "ablation_confidence", ablations.format_result(result)
    )
    means = result["means"]
    # the saturated gate (14) covers more mispredictions than a lax one
    assert means["threshold=14"] >= means["threshold=6"] - 0.02


def test_easy_branch_filter(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        ablations.run_easy_branch_filter,
        kwargs={"scale": scale, "benchmarks": suite,
                "floors": (0.0, 0.03)},
        rounds=1, iterations=1,
    )
    save_result(
        "ablation_easy_filter", ablations.format_result(result)
    )
    means = result["means"]
    # filtering always-easy branches does not cost the suite average
    assert means["min_misp=0.03"] >= means["min_misp=0.00"] - 0.02


def test_predictor_sensitivity(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        ablations.run_predictor_sensitivity,
        kwargs={"scale": scale, "benchmarks": suite,
                "kinds": ("bimodal", "perceptron")},
        rounds=1, iterations=1,
    )
    save_result(
        "ablation_predictor", ablations.format_result(result)
    )
    means = result["means"]
    # DMP keeps a clear benefit under both a weak and a strong predictor
    assert means["predictor=bimodal"] > 0.03
    assert means["predictor=perceptron"] > 0.03
