"""Figure 10: diverge-branch selection overlap across profiling inputs.

Shape check (paper §7.3): weighted by dynamic executions, the large
majority of diverge branches are selected with either profiling input
(paper: more than 74% in every benchmark).
"""

from repro.experiments import fig10


def test_fig10_selection_overlap(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        fig10.run, kwargs={"scale": scale, "benchmarks": suite},
        rounds=1, iterations=1,
    )
    save_result("fig10", fig10.format_result(result))

    eithers = [row["either"] for row in result["rows"]]
    # strong overlap everywhere...
    assert min(eithers) > 0.6
    # ...and overwhelming overlap on average.
    assert sum(eithers) / len(eithers) > 0.8
    for row in result["rows"]:
        assert row["num_run"] > 0 and row["num_train"] > 0
