"""Table 2: benchmark characteristics.

Shape checks against the paper's Table 2: the MPKI *ordering* has go
at the top and vortex/gap near the bottom, baseline IPCs span roughly
0.4-3.5, and every benchmark has diverge branches with ~1 CFM point on
average.
"""

from repro.experiments import table2


def test_table2_characteristics(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        table2.run, kwargs={"scale": scale, "benchmarks": suite},
        rounds=1, iterations=1,
    )
    save_result("table2", table2.format_result(result))
    rows = {r["benchmark"]: r for r in result["rows"]}

    if {"go", "vortex", "gap"} <= set(rows):
        assert rows["go"]["mpki"] > rows["vortex"]["mpki"]
        assert rows["go"]["mpki"] > rows["gap"]["mpki"]
    for row in rows.values():
        assert 0.05 < row["base_ipc"] < 8.0
        assert row["diverge_branches"] > 0
        assert 1.0 <= row["avg_cfm"] <= 3.0
