"""Shared configuration for the reproduction benchmarks.

Each ``test_*`` module regenerates one table/figure of the paper:
running ``pytest benchmarks/ --benchmark-only -s`` prints every
reproduced table and writes it under ``benchmarks/results/``.

Environment knobs:

- ``REPRO_BENCH_SCALE`` — trace-length multiplier (default 0.5;
  1.0 ≈ 60k dynamic instructions per benchmark, the scale EXPERIMENTS.md
  records).
- ``REPRO_BENCH_SUITE`` — comma-separated benchmark subset (default:
  all 17).
"""

import os
import pathlib

import pytest

from repro.obs import build_manifest, write_manifest
from repro.obs.context import get_metrics, get_phases
from repro.workloads import BENCHMARK_NAMES

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-test wall-clock, written into the run manifest at session end
#: (same JSON format as ``python -m repro all --manifest``).
_TIMINGS = {}


def bench_scale():
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_suite():
    names = os.environ.get("REPRO_BENCH_SUITE", "")
    if not names:
        return list(BENCHMARK_NAMES)
    return [n.strip() for n in names.split(",") if n.strip()]


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def suite():
    return bench_suite()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name, text):
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        name = report.nodeid.rsplit("::", 1)[-1]
        entry = _TIMINGS.setdefault(
            name, {"seconds": 0.0, "events": 0, "calls": 0}
        )
        entry["seconds"] += report.duration
        entry["calls"] += 1


def pytest_sessionfinish(session, exitstatus):
    """Write the suite's timings as a run manifest."""
    if not _TIMINGS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    manifest = build_manifest(
        command="pytest benchmarks/",
        args={
            "scale": bench_scale(),
            "suite": ",".join(bench_suite()),
        },
        benchmarks=bench_suite(),
        scale=bench_scale(),
        phases=dict(_TIMINGS),
        metrics=get_metrics(),
        extra={"pipeline_phases": get_phases().as_dict()},
    )
    write_manifest(str(RESULTS_DIR / "manifest.json"), manifest)
