"""Shared configuration for the reproduction benchmarks.

Each ``test_*`` module regenerates one table/figure of the paper:
running ``pytest benchmarks/ --benchmark-only -s`` prints every
reproduced table and writes it under ``benchmarks/results/``.

Environment knobs:

- ``REPRO_BENCH_SCALE`` — trace-length multiplier (default 0.5;
  1.0 ≈ 60k dynamic instructions per benchmark, the scale EXPERIMENTS.md
  records).
- ``REPRO_BENCH_SUITE`` — comma-separated benchmark subset (default:
  all 17).
"""

import os
import pathlib

import pytest

from repro.workloads import BENCHMARK_NAMES

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale():
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_suite():
    names = os.environ.get("REPRO_BENCH_SUITE", "")
    if not names:
        return list(BENCHMARK_NAMES)
    return [n.strip() for n in names.split(",") if n.strip()]


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def suite():
    return bench_suite()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name, text):
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
