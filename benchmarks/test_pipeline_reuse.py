"""Analysis-reuse benchmarks for the compiler pipeline (not figures).

Times a 10-point MIN_MERGE_PROB threshold sweep — Figure 7's hot axis
— through the pass-manager pipeline twice: *cold*, with a fresh
:class:`AnalysisManager` per point (every point rebuilds CFGs,
dominators, loops, and path sets, which is what the pre-pipeline
selector did), and *cached*, with one manager shared across the sweep
(one structural build; path sets key on the enumeration bounds, which
this axis does not touch, so later points are pure cache hits).  The
measured times land in ``benchmarks/results/BENCH_pipeline.json`` and
the cached sweep is asserted to be at least twice as fast.
"""

import json
import os
import pathlib

import pytest

from repro.compiler import AnalysisManager, run_selection_pipeline
from repro.core import SelectionConfig
from repro.core.thresholds import SelectionThresholds
from repro.profiling import Profiler
from repro.workloads import load_benchmark

from conftest import bench_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The swept axis: 10 MIN_MERGE_PROB points (Fig. 7 uses a subset).
SWEEP = tuple(round(0.01 + 0.06 * i, 2) for i in range(10))

BENCHMARK = "twolf"

#: Minimum cold/cached ratio the analysis cache must deliver.
MIN_SPEEDUP = 2.0

_RESULTS = {}


@pytest.fixture(scope="module")
def artifacts():
    workload = load_benchmark(BENCHMARK, scale=bench_scale())
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    return workload.program, profile


@pytest.fixture(scope="module", autouse=True)
def pipeline_report():
    yield
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "benchmark": BENCHMARK,
        "scale": bench_scale(),
        "sweep_points": len(SWEEP),
        **{name: value for name, value in sorted(_RESULTS.items())},
    }
    path = RESULTS_DIR / "BENCH_pipeline.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[bench] pipeline timings written to {path}")


def _sweep(program, profile, manager_per_point):
    shared = None if manager_per_point else AnalysisManager()
    annotations = []
    for value in SWEEP:
        config = SelectionConfig.all_best_heur(
            thresholds=SelectionThresholds(min_merge_prob=value)
        )
        state = run_selection_pipeline(
            program, profile, config,
            manager=AnalysisManager() if manager_per_point else shared,
        )
        annotations.append(state.annotation)
    return annotations


def test_cold_sweep(benchmark, artifacts):
    program, profile = artifacts

    def run():
        return _sweep(program, profile, manager_per_point=True)

    annotations = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(annotations) == len(SWEEP)
    seconds = benchmark.stats.stats.min
    _RESULTS["cold_sweep_seconds"] = seconds
    _RESULTS["cold_selections_per_sec"] = len(SWEEP) / seconds


def test_cached_sweep_at_least_2x_faster(benchmark, artifacts):
    program, profile = artifacts

    def run():
        return _sweep(program, profile, manager_per_point=False)

    annotations = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(annotations) == len(SWEEP)
    seconds = benchmark.stats.stats.min
    _RESULTS["cached_sweep_seconds"] = seconds
    _RESULTS["cached_selections_per_sec"] = len(SWEEP) / seconds

    cold = _RESULTS["cold_sweep_seconds"]
    speedup = cold / seconds
    _RESULTS["analysis_cache_speedup"] = speedup
    assert speedup >= MIN_SPEEDUP, (
        f"analysis cache delivered only {speedup:.2f}x over cold "
        f"(expected >= {MIN_SPEEDUP}x)"
    )


def test_cached_sweep_matches_cold_byte_for_byte(artifacts):
    """Reuse must never change results: same annotations either way."""
    from repro.core import annotation_io

    program, profile = artifacts
    cold = _sweep(program, profile, manager_per_point=True)
    cached = _sweep(program, profile, manager_per_point=False)
    for a, b in zip(cold, cached):
        assert annotation_io.dumps(a) == annotation_io.dumps(b)
