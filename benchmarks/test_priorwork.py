"""Prior-work comparison bench: dual-path < dynamic-hammock < DMP.

Quantifies the paper's positioning (§2, §8.1): DMP generalizes
dynamic hammock predication, which in turn beats raw dual-path
execution.  The gap between dynamic-hammock and DMP is the value of
compiler-identified CFM points on complex control flow.
"""

from repro.experiments import priorwork


def test_priorwork_progression(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        priorwork.run, kwargs={"scale": scale, "benchmarks": suite},
        rounds=1, iterations=1,
    )
    save_result("priorwork", priorwork.format_result(result))
    means = result["means"]
    assert means["dual-path"] < means["dynamic-hammock"]
    assert means["dynamic-hammock"] < means["dmp-all-best"]
    # the DMP-over-hammock gap is the headline of the paper
    assert means["dmp-all-best"] - means["dynamic-hammock"] > 0.03
