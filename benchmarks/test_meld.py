"""Static-melding benchmarks: rewrite throughput + checked replay.

Times the two costs the MeldPass adds to the toolflow on two
workloads: the structural rewrite itself (matcher + CMOV rewrite,
which every ``meld`` compile pays) and the *checked* melded replay —
functional execution of the melded program followed by the
architectural-equivalence assertion against the original's final
state, the invariant the ``meld-equivalence`` CI job guards.  The
measured figures land in ``benchmarks/results/BENCH_meld.json`` and
feed the benchmark trajectory gate.
"""

import json
import os
import pathlib

import pytest

from repro.compiler.transform import (
    MELD_MAX_SIDE_INSTS,
    apply_meld,
    find_meld_candidates,
)
from repro.emulator import execute
from repro.experiments.meldcompare import MELD_BUDGET_FACTOR, assert_equivalent
from repro.workloads import load_benchmark

from conftest import bench_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Two workloads keep the equivalence check cheap but non-trivial —
#: vpr melds multiple diamonds, gcc exercises one-sided hammocks.
BENCHMARKS = ("vpr", "gcc")

_RESULTS = {}


@pytest.fixture(scope="module")
def workloads():
    return {name: load_benchmark(name, scale=bench_scale())
            for name in BENCHMARKS}


@pytest.fixture(scope="module", autouse=True)
def meld_report():
    yield
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "benchmarks": list(BENCHMARKS),
        "scale": bench_scale(),
        **{name: value for name, value in sorted(_RESULTS.items())},
    }
    path = RESULTS_DIR / "BENCH_meld.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[bench] meld timings written to {path}")


def _rewrite_all(workloads):
    results = {}
    for name, workload in workloads.items():
        program = workload.program
        candidates = find_meld_candidates(program, MELD_MAX_SIDE_INSTS)
        results[name] = apply_meld(program, candidates)
    return results


def test_meld_rewrite_throughput(benchmark, workloads):
    results = benchmark.pedantic(
        lambda: _rewrite_all(workloads), rounds=3, iterations=1
    )
    hammocks = sum(len(r.melded) for r in results.values())
    assert hammocks > 0, "expected at least one meldable hammock"
    seconds = benchmark.stats.stats.min
    _RESULTS["melded_hammocks"] = hammocks
    _RESULTS["meld_rewrites_per_sec"] = len(BENCHMARKS) / seconds
    _RESULTS["meld_hammocks_per_sec"] = hammocks / seconds


def test_checked_melded_replay_throughput(benchmark, workloads):
    """Melded replay + equivalence assertion, per workload."""
    rewrites = _rewrite_all(workloads)
    originals = {}
    for name, workload in workloads.items():
        _, result = execute(
            workload.program,
            memory=dict(workload.memory),
            max_instructions=workload.max_instructions,
        )
        assert result.halted
        originals[name] = result.state

    def replay_and_check():
        for name, workload in workloads.items():
            rewrite = rewrites[name]
            if not rewrite.changed:
                continue
            _, result = execute(
                rewrite.program,
                memory=dict(workload.memory),
                max_instructions=(
                    workload.max_instructions * MELD_BUDGET_FACTOR
                ),
            )
            assert result.halted
            assert_equivalent(name, originals[name], result.state)

    benchmark.pedantic(replay_and_check, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.min
    _RESULTS["checked_replay_seconds"] = seconds
    _RESULTS["checked_replays_per_sec"] = len(BENCHMARKS) / seconds
