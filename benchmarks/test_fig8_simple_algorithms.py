"""Figure 8: simple selection baselines vs the proposed algorithms.

Shape checks (paper §7.2): All-best-heur beats every simple baseline
on average; Random-50 trails the informed simple baselines; If-else
(simple hammocks only) captures only part of the simple-baseline
benefit on non-hammock-dominated codes.
"""

from repro.experiments import fig8


def test_fig8_simple_algorithms(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        fig8.run, kwargs={"scale": scale, "benchmarks": suite},
        rounds=1, iterations=1,
    )
    save_result("fig8", fig8.format_result(result))
    means = result["means"]

    # The proposed algorithms beat every simple baseline on average.
    for label in ("every-br", "random-50", "high-bp-5", "immediate",
                  "if-else"):
        assert means["all-best-heur"] >= means[label] - 0.01, label

    # Random halves of the branch set trail informed selection.
    assert means["random-50"] <= means["every-br"] + 0.01
    assert means["random-50"] <= means["all-best-heur"]

    # The simple-hammock-dominated benchmarks are where If-else does
    # comparatively well (paper: eon/perlbmk/li).
    per = result["speedups"]
    if "li" in result["benchmarks"]:
        assert per["if-else"]["li"] > 0.5 * per["all-best-heur"]["li"]
