"""Benchmark trajectory: throughput history with a regression gate.

The component/engine/pipeline/campaign benchmark suites each drop a
``benchmarks/results/BENCH_*.json`` snapshot of their machine-readable
timings.  Those files are overwritten per run, so they answer "how fast
is it now?" but not "is it getting slower?".  This tool keeps the
history:

- ``append`` folds the throughput figures (every ``*_per_sec`` key) of
  all current ``BENCH_*.json`` files into one record and appends it to
  ``benchmarks/results/BENCH_trajectory.jsonl`` (committed, one line
  per benchmarked revision);
- ``check`` compares the newest record against the previous one and
  exits non-zero if any shared throughput metric regressed by more
  than ``--tolerance`` (default 30% — generous, because CI runners are
  noisy; sustained drift still trips it).

CI runs the suites, then ``append``, then ``check`` (see the
``benchmark-trajectory`` job in ``.github/workflows/ci.yml``).

Usage::

    python benchmarks/trajectory.py append [--rev auto]
    python benchmarks/trajectory.py check [--tolerance 0.3]
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import time

#: Default location of the BENCH_*.json snapshots and the trajectory.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

TRAJECTORY_NAME = "BENCH_trajectory.jsonl"

#: Maximum allowed fractional drop of any shared throughput metric.
DEFAULT_TOLERANCE = 0.30


def _git_rev():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def collect_throughput(results_dir):
    """``{"<file>.<key>": value}`` for every ``*_per_sec`` figure."""
    throughput = {}
    pattern = os.path.join(results_dir, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"trajectory: skipping unreadable {path}: {exc}",
                  file=sys.stderr)
            continue
        if not isinstance(data, dict):
            continue
        for key, value in data.items():
            if key.endswith("_per_sec") and isinstance(value, (int, float)):
                throughput[f"{name}.{key}"] = value
    return throughput


def read_trajectory(path):
    records = []
    if not os.path.exists(path):
        return records
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                # A torn tail from an interrupted append: keep history.
                print("trajectory: skipping corrupt line",
                      file=sys.stderr)
    return records


def append(results_dir, trajectory_path, rev=None):
    throughput = collect_throughput(results_dir)
    if not throughput:
        print(f"trajectory: no *_per_sec figures under {results_dir}; "
              f"run the benchmark suites first", file=sys.stderr)
        return 1
    record = {
        "ts": time.time(),
        "rev": rev if rev not in (None, "auto") else _git_rev(),
        "throughput": throughput,
    }
    with open(trajectory_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"trajectory: appended {len(throughput)} metrics "
          f"(rev {record['rev']}) to {trajectory_path}")
    return 0


def compare(previous, current, tolerance):
    """(regressions, improvements) between two throughput dicts."""
    regressions = []
    improvements = []
    for key in sorted(set(previous) & set(current)):
        before, after = previous[key], current[key]
        if before <= 0:
            continue
        change = (after - before) / before
        if change < -tolerance:
            regressions.append((key, before, after, change))
        elif change > tolerance:
            improvements.append((key, before, after, change))
    return regressions, improvements


def check(trajectory_path, tolerance):
    records = read_trajectory(trajectory_path)
    if len(records) < 2:
        print(f"trajectory: {len(records)} record(s) in "
              f"{trajectory_path}; nothing to compare yet")
        return 0
    previous = records[-2].get("throughput", {})
    current = records[-1].get("throughput", {})
    regressions, improvements = compare(previous, current, tolerance)
    for key, before, after, change in improvements:
        print(f"trajectory: {key} improved "
              f"{before:.2f} -> {after:.2f} ({change:+.0%})")
    if not regressions:
        shared = len(set(previous) & set(current))
        print(f"trajectory: OK — {shared} shared metrics within "
              f"{tolerance:.0%} of the previous record")
        return 0
    for key, before, after, change in regressions:
        print(f"trajectory: REGRESSION {key} "
              f"{before:.2f} -> {after:.2f} ({change:+.0%}, "
              f"tolerance -{tolerance:.0%})", file=sys.stderr)
    return 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/trajectory.py",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("command", choices=("append", "check"))
    parser.add_argument("--results-dir", default=RESULTS_DIR)
    parser.add_argument(
        "--trajectory", default=None,
        help=f"history file (default <results-dir>/{TRAJECTORY_NAME})",
    )
    parser.add_argument("--rev", default="auto",
                        help="revision label for append (default: git)")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"max fractional throughput drop "
             f"(default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    trajectory_path = args.trajectory or os.path.join(
        args.results_dir, TRAJECTORY_NAME
    )
    if args.command == "append":
        return append(args.results_dir, trajectory_path, rev=args.rev)
    return check(trajectory_path, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
