"""Serving-daemon latency benchmarks (not paper figures).

Times the ``repro serve`` request path over real loopback HTTP: the
cold first request (process state empty — artifacts, analyses, and
decode tables all built on demand) against warm repeats that reuse the
daemon's process state.  The cold-vs-warm ratio *is* the subsystem's
reason to exist, so it is tracked in
``benchmarks/results/BENCH_serve.json`` alongside the warm p50 and
request throughput, and the ``*_per_sec`` key feeds the performance
trajectory gate.
"""

import json
import os
import pathlib
import threading
import time
import urllib.request

import pytest

from conftest import bench_scale
from repro.exec import artifact_cache
from repro.serve.app import ServeApp
from repro.serve.daemon import build_server

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Warm requests measured after the cold one.
WARM_ROUNDS = 20

_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def serve_report():
    yield
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "warm_rounds": WARM_ROUNDS,
        **{name: value for name, value in sorted(_RESULTS.items())},
    }
    path = RESULTS_DIR / "BENCH_serve.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[bench] serve timings written to {path}")


@pytest.fixture(scope="module")
def server():
    """A live daemon with genuinely cold process state.

    The disk artifact cache is disabled so "cold" measures the full
    build (trace, profile, analysis), and the warm numbers isolate the
    daemon's in-process state — which is the subsystem under test.
    """
    from repro.experiments import runner

    runner.clear_cache()
    artifact_cache.set_disabled(True)
    srv = build_server(("127.0.0.1", 0), ServeApp())
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)
        artifact_cache.set_disabled(None)


def _post_compile(srv):
    host, port = srv.server_address[:2]
    body = json.dumps({
        "benchmark": "gzip", "scale": bench_scale(),
    }).encode("utf-8")
    request = urllib.request.Request(
        f"http://{host}:{port}/v1/compile", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request) as response:
        assert response.status == 200
        return response.read()


def test_cold_then_warm_compile_latency(server, benchmark):
    started = time.perf_counter()
    cold_body = _post_compile(server)
    cold_seconds = time.perf_counter() - started
    assert cold_body

    benchmark.pedantic(
        lambda: _post_compile(server),
        rounds=WARM_ROUNDS, iterations=1,
    )
    stats = benchmark.stats.stats
    p50 = stats.median
    _RESULTS["serve_cold_first_request_seconds"] = cold_seconds
    _RESULTS["serve_warm_p50_seconds"] = p50
    _RESULTS["serve_warm_requests_per_sec"] = 1.0 / stats.mean
    _RESULTS["serve_cold_vs_warm_speedup"] = cold_seconds / p50
    # The cold/warm gap is what holding warm process state buys; a
    # conservative floor so a cache regression trips CI loudly.
    assert cold_seconds / p50 > 2.0


def test_traced_warm_compile_latency(tmp_path_factory, benchmark):
    """Warm throughput with per-request tracing *enabled*.

    Tracked separately from ``serve_warm_requests_per_sec`` (which
    stays tracing-off, guarding the "disabled tracing is free"
    contract): this key prices the span spool fsync-free appends and
    context bookkeeping a traced request pays.
    """
    trace_dir = tmp_path_factory.mktemp("serve-trace")
    srv = build_server(("127.0.0.1", 0),
                       ServeApp(trace_dir=str(trace_dir)))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        _post_compile(srv)  # warm up
        benchmark.pedantic(
            lambda: _post_compile(srv),
            rounds=WARM_ROUNDS, iterations=1,
        )
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)
    stats = benchmark.stats.stats
    _RESULTS["serve_traced_warm_requests_per_sec"] = 1.0 / stats.mean
