"""Component micro-benchmarks (not paper figures).

Timing-simulator, emulator, profiler and selector throughput — useful
for tracking performance regressions of the toolchain itself.  These
use pytest-benchmark's normal multi-round timing (they are cheap).
"""

import pytest

from repro.core import SelectionConfig, select_diverge_branches
from repro.emulator import execute
from repro.profiling import Profiler
from repro.uarch import TimingSimulator
from repro.workloads import load_benchmark


@pytest.fixture(scope="module")
def artifacts():
    workload = load_benchmark("crafty", scale=0.2)
    trace, _ = execute(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    return workload, trace, profile


def test_emulator_throughput(benchmark, artifacts):
    workload, trace, _ = artifacts
    result = benchmark.pedantic(
        lambda: execute(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
            collect_trace=False,
        ),
        rounds=3,
        iterations=1,
    )


def test_profiler_throughput(benchmark, artifacts):
    workload, _, _ = artifacts
    benchmark.pedantic(
        lambda: Profiler().profile(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        ),
        rounds=3,
        iterations=1,
    )


def test_baseline_simulator_throughput(benchmark, artifacts):
    workload, trace, _ = artifacts
    benchmark.pedantic(
        lambda: TimingSimulator(workload.program).run(trace),
        rounds=3,
        iterations=1,
    )


def test_dmp_simulator_throughput(benchmark, artifacts):
    workload, trace, profile = artifacts
    annotation = select_diverge_branches(
        workload.program, profile, SelectionConfig.all_best_heur()
    )
    benchmark.pedantic(
        lambda: TimingSimulator(
            workload.program, annotation=annotation
        ).run(trace),
        rounds=3,
        iterations=1,
    )


def test_dmp_simulator_with_ledger_throughput(benchmark, artifacts):
    """The attribution path: per-branch counters + RuntimeLedger.

    Kept next to ``test_dmp_simulator_throughput`` so a BENCH run shows
    both numbers — the default (``ledger=None``) run must stay on the
    counter-free fast path, and this one bounds what attribution costs
    when it *is* requested.
    """
    from repro.obs.ledger import RuntimeLedger

    workload, trace, profile = artifacts
    annotation = select_diverge_branches(
        workload.program, profile, SelectionConfig.all_best_heur()
    )
    benchmark.pedantic(
        lambda: TimingSimulator(
            workload.program, annotation=annotation,
            ledger=RuntimeLedger(),
        ).run(trace, label="bench"),
        rounds=3,
        iterations=1,
    )


def test_selector_throughput(benchmark, artifacts):
    workload, _, profile = artifacts
    benchmark.pedantic(
        lambda: select_diverge_branches(
            workload.program, profile, SelectionConfig.all_best_cost()
        ),
        rounds=3,
        iterations=1,
    )
