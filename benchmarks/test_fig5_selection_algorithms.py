"""Figure 5: DMP improvement with different selection algorithms.

The headline result.  Shape checks (paper §7.1):

- each cumulative heuristic adds performance (monotone means);
- Alg-exact alone is a small fraction of the full benefit;
- Alg-freq is the single largest contributor;
- the cost-benefit model matches the tuned heuristics closely
  (paper: 20.2% vs 20.4%) without requiring threshold tuning;
- cost-edge is at least as good as cost-long.
"""

from repro.experiments import fig5


def test_fig5_selection_algorithms(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        fig5.run, kwargs={"scale": scale, "benchmarks": suite},
        rounds=1, iterations=1,
    )
    save_result("fig5", fig5.format_result(result))
    means = result["means"]

    # Monotone cumulative improvement across the heuristic series.
    heuristic_series = [
        "exact",
        "exact+freq",
        "exact+freq+short",
        "exact+freq+short+ret",
        "all-best-heur",
    ]
    values = [means[s] for s in heuristic_series]
    for earlier, later in zip(values, values[1:]):
        assert later >= earlier - 0.01

    # All techniques together deliver a large gain...
    assert means["all-best-heur"] > 0.10
    # ...and Alg-exact alone only a small fraction of it (paper:
    # 4.5% of 20.4%).
    assert means["exact"] < 0.6 * means["all-best-heur"]
    # Alg-freq is the largest single contributor.
    freq_gain = means["exact+freq"] - means["exact"]
    assert freq_gain > 0.02

    # The cost model needs no threshold tuning yet performs on par
    # with the best heuristics (within a few points).
    assert means["all-best-cost"] > 0.7 * means["all-best-heur"]
    assert means["cost-edge"] >= means["cost-long"] - 0.02
