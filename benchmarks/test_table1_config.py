"""Table 1: machine configuration (regeneration + fidelity checks)."""

from repro.experiments import table1


def test_table1_configuration(benchmark, save_result):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    text = table1.format_result(result)
    save_result("table1", text)
    cfg = result["config"]
    # Table 1 headline values
    assert cfg.fetch_width == 8
    assert cfg.rob_size == 512
    assert cfg.min_misprediction_penalty >= 25
    assert cfg.num_cfm_registers == 3
