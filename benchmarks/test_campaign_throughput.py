"""Campaign-engine throughput benchmarks (not paper figures).

Times the sweep-campaign subsystem introduced with ``repro.campaign``:
scheduler cell throughput at one and two workers (fork + pipe + journal
overhead per cell, using a trivial cell function so the harness itself
is what's measured), the durable journal's per-record write cost
(flush + fsync), and the resume overhead of replaying a finished
campaign.  The measured numbers are written to
``benchmarks/results/BENCH_campaign.json`` so the performance
trajectory covers the new subsystem.
"""

import json
import os
import pathlib

import pytest

from repro.campaign import Axis, CampaignSpec, Journal, Scheduler, replay

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Fixed sweep shape so timings are comparable across runs.
N_BENCHMARKS = 4
N_VALUES = 6
JOURNAL_RECORDS = 500

_RESULTS = {}


def bench_cell(params):
    """A trivial cell: the benchmark then measures pure harness cost."""
    return {
        "speedup": 0.1,
        "baseline": {"ipc": 1.0},
        "stats": {"ipc": 1.1},
    }


def _spec():
    return CampaignSpec(
        name="bench",
        benchmarks=tuple(f"wl{i}" for i in range(N_BENCHMARKS)),
        scale=0.1,
        selection="exact-freq",
        axes=(Axis("max_instr", tuple(range(10, 10 + N_VALUES))),),
        cell="test_campaign_throughput:bench_cell",
    )


@pytest.fixture(scope="module", autouse=True)
def campaign_report():
    yield
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "cells": N_BENCHMARKS * N_VALUES,
        "journal_records": JOURNAL_RECORDS,
        **{name: value for name, value in sorted(_RESULTS.items())},
    }
    path = RESULTS_DIR / "BENCH_campaign.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[bench] campaign timings written to {path}")


def _drain(tmp_path, jobs):
    spec = _spec()
    journal_path = tmp_path / "journal.jsonl"
    with Journal(journal_path) as journal:
        out = Scheduler(spec, journal, jobs=jobs).run(replay(journal_path))
    assert len(out["results"]) == len(spec.cells())
    return out


def test_scheduler_cells_per_sec_one_worker(benchmark, tmp_path_factory):
    def run():
        return _drain(tmp_path_factory.mktemp("camp1"), jobs=1)

    benchmark.pedantic(run, rounds=3, iterations=1)
    cells = N_BENCHMARKS * N_VALUES
    _RESULTS["scheduler_seconds_jobs1"] = benchmark.stats.stats.min
    _RESULTS["cells_per_sec_jobs1"] = cells / benchmark.stats.stats.min


def test_scheduler_cells_per_sec_two_workers(benchmark,
                                             tmp_path_factory):
    def run():
        return _drain(tmp_path_factory.mktemp("camp2"), jobs=2)

    benchmark.pedantic(run, rounds=3, iterations=1)
    cells = N_BENCHMARKS * N_VALUES
    _RESULTS["scheduler_seconds_jobs2"] = benchmark.stats.stats.min
    _RESULTS["cells_per_sec_jobs2"] = cells / benchmark.stats.stats.min


def test_journal_write_cost(benchmark, tmp_path_factory):
    """Per-record append cost including flush + fsync durability."""

    def write_records():
        path = tmp_path_factory.mktemp("journal") / "journal.jsonl"
        with Journal(path) as journal:
            for index in range(JOURNAL_RECORDS):
                journal.cell_finish(
                    f"cell{index:06d}", 1, 0.25,
                    {"speedup": 0.1, "baseline": {"ipc": 1.0},
                     "stats": {"ipc": 1.1}},
                )

    benchmark.pedantic(write_records, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.min
    _RESULTS["journal_write_seconds"] = seconds
    _RESULTS["journal_appends_per_sec"] = JOURNAL_RECORDS / seconds


def test_resume_overhead(benchmark, tmp_path_factory):
    """Replaying a finished campaign and discovering there is no work."""
    tmp_path = tmp_path_factory.mktemp("resume")
    _drain(tmp_path, jobs=1)
    spec = _spec()
    journal_path = tmp_path / "journal.jsonl"

    def resume():
        state = replay(journal_path)
        pending = state.pending_cells(spec)
        assert not pending
        return state

    state = benchmark.pedantic(resume, rounds=5, iterations=1)
    assert len(state.results) == len(spec.cells())
    _RESULTS["resume_replay_seconds"] = benchmark.stats.stats.min
