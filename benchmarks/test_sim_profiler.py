"""Simulator cost-profiler benchmarks: the zero-overhead proof.

The per-component cost attribution in :mod:`repro.uarch.profiler` is
opt-in: ``TimingSimulator(..., profiler=None)`` — the default — must
stay on the counter-free hot path.  This suite times both paths on the
same prebuilt trace:

- ``test_run_unprofiled`` is the zero-overhead benchmark: the default
  path with the instrumentation *compiled in but disabled*.  Its
  throughput lands in ``BENCH_simprofiler.json`` as
  ``unprofiled_insts_per_sec`` and is gated by
  ``benchmarks/trajectory.py`` against history, so a PR that sneaks
  per-instruction work onto the default path trips CI.
- ``test_run_profiled`` times the attributing run; the report records
  the measured ``profiling_slowdown`` (the *accepted* cost of asking
  where the time goes) and the attributed component fractions.

The same pair runs against the vectorized batch-replay engine: its
``profiler=None`` path carries no stopwatch checks either (kernels are
charged per window, never per row), and its attributed run must keep
the nine component buckets meaningful (non-empty partition summing to
the run).
"""

import json
import os
import pathlib

import pytest

from repro.emulator import execute
from repro.profiling import Profiler
from repro.uarch import (
    SimProfiler,
    TimingSimulator,
    VectorizedTimingSimulator,
)
from repro.workloads import load_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCHMARK = "crafty"
SCALE = 0.2

_RESULTS = {}


@pytest.fixture(scope="module")
def prepared():
    workload = load_benchmark(BENCHMARK, scale=SCALE)
    collector = Profiler().collector()
    trace, result = execute(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
        on_branch=collector.on_branch,
        compact=True,
    )
    return workload, trace


@pytest.fixture(scope="module", autouse=True)
def simprofiler_report():
    yield
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "benchmark": BENCHMARK,
        "scale": SCALE,
    }
    report.update(sorted(_RESULTS.items()))
    unprofiled = _RESULTS.get("unprofiled_seconds")
    profiled = _RESULTS.get("profiled_seconds")
    if unprofiled and profiled:
        report["profiling_slowdown"] = profiled / unprofiled
    vec_unprofiled = _RESULTS.get("vectorized_unprofiled_seconds")
    vec_profiled = _RESULTS.get("vectorized_profiled_seconds")
    if vec_unprofiled and vec_profiled:
        report["vectorized_profiling_slowdown"] = (
            vec_profiled / vec_unprofiled
        )
    path = RESULTS_DIR / "BENCH_simprofiler.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[bench] sim-profiler timings written to {path}")


def test_run_unprofiled(benchmark, prepared):
    """The default ``profiler=None`` hot path (the zero-overhead gate)."""
    workload, trace = prepared
    stats = benchmark.pedantic(
        lambda: TimingSimulator(workload.program).run(trace),
        rounds=5,
        iterations=1,
    )
    seconds = benchmark.stats.stats.min
    _RESULTS["unprofiled_seconds"] = seconds
    _RESULTS["unprofiled_insts_per_sec"] = (
        stats.retired_instructions / seconds
    )


def test_run_profiled(benchmark, prepared):
    """The attributing run: per-component stopwatch partition active."""
    workload, trace = prepared

    def run():
        profiler = SimProfiler()
        stats = TimingSimulator(
            workload.program, profiler=profiler
        ).run(trace)
        return stats, profiler

    stats, profiler = benchmark.pedantic(run, rounds=5, iterations=1)
    seconds = benchmark.stats.stats.min
    _RESULTS["profiled_seconds"] = seconds
    _RESULTS["profiled_insts_per_sec"] = (
        stats.retired_instructions / seconds
    )
    _RESULTS["components"] = {
        row["name"]: {
            "fraction": round(row["fraction"], 4),
            "events": row["events"],
        }
        for row in profiler.components()
    }
    # The stopwatch partition must account for (essentially) the whole
    # instrumented run: buckets are charged back-to-back with no gaps.
    assert profiler.total_seconds() > 0
    assert stats.retired_instructions > 0


def test_run_vectorized_unprofiled(benchmark, prepared):
    """The vectorized engine's ``profiler=None`` zero-overhead path."""
    workload, trace = prepared
    stats = benchmark.pedantic(
        lambda: VectorizedTimingSimulator(workload.program).run(trace),
        rounds=5,
        iterations=1,
    )
    seconds = benchmark.stats.stats.min
    _RESULTS["vectorized_unprofiled_seconds"] = seconds
    _RESULTS["vectorized_unprofiled_insts_per_sec"] = (
        stats.retired_instructions / seconds
    )


def test_run_vectorized_profiled(benchmark, prepared):
    """The vectorized engine with per-kernel component attribution."""
    workload, trace = prepared

    def run():
        profiler = SimProfiler()
        stats = VectorizedTimingSimulator(
            workload.program, profiler=profiler
        ).run(trace)
        return stats, profiler

    stats, profiler = benchmark.pedantic(run, rounds=5, iterations=1)
    seconds = benchmark.stats.stats.min
    _RESULTS["vectorized_profiled_seconds"] = seconds
    _RESULTS["vectorized_profiled_insts_per_sec"] = (
        stats.retired_instructions / seconds
    )
    _RESULTS["vectorized_components"] = {
        row["name"]: {
            "fraction": round(row["fraction"], 4),
            "events": row["events"],
        }
        for row in profiler.components()
    }
    assert profiler.total_seconds() > 0
    # Identical machine model → identical stats under attribution.
    assert stats.as_dict() == TimingSimulator(
        workload.program
    ).run(trace).as_dict()
