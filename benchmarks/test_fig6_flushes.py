"""Figure 6: pipeline flushes in the baseline and DMP.

Shape checks: each added selection technique removes more flushes, and
the full configuration removes a substantial fraction of the
baseline's.
"""

from repro.experiments import fig6


def test_fig6_pipeline_flushes(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        fig6.run, kwargs={"scale": scale, "benchmarks": suite},
        rounds=1, iterations=1,
    )
    save_result("fig6", fig6.format_result(result))
    means = result["means"]

    series = [
        "baseline",
        "exact",
        "exact+freq",
        "exact+freq+short",
        "exact+freq+short+ret",
        "all-best-heur",
    ]
    values = [means[s] for s in series]
    # flushes decrease (weakly) as techniques are added
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier + 0.15
    # the full configuration removes a sizable share of baseline flushes
    assert means["all-best-heur"] < 0.85 * means["baseline"]
    # DMP never removes *all* flushes (uncoverable mispredictions remain)
    assert means["all-best-heur"] > 0.0
