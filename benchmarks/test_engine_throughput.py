"""Engine throughput benchmarks (not paper figures).

Times the experiment engine introduced with ``repro.exec``: the fused
single-pass artifact build vs the old two-pass build, warm
artifact-cache loads, simulation over the compact trace encoding, and
a small figure-suite run at ``--jobs 1`` vs ``--jobs 2``.  The
measured wall-clock seconds are written to
``benchmarks/results/BENCH_engine.json`` so the performance trajectory
is tracked across PRs.
"""

import json
import os
import pathlib

import pytest

from repro.emulator import execute
from repro.exec import artifact_cache
from repro.experiments import fig6, runner
from repro.profiling import Profiler
from repro.uarch import TimingSimulator, VectorizedTimingSimulator
from repro.workloads import load_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Small fixed cell grid so suite timings are comparable across runs.
SUITE_BENCHMARKS = ["gzip", "twolf", "crafty"]
SUITE_SCALE = 0.2

_RESULTS = {}

#: Extra top-level report keys; ``*_per_sec`` entries here are picked
#: up by ``benchmarks/trajectory.py`` as ``engine.<key>`` and gated.
_TOP = {}


def _record(name, benchmark):
    _RESULTS[name] = benchmark.stats.stats.min


@pytest.fixture(scope="module", autouse=True)
def engine_report(tmp_path_factory):
    """Redirect the disk cache for the module, then write the report."""
    previous = os.environ.get(artifact_cache.ENV_CACHE_DIR)
    scratch = tmp_path_factory.mktemp("engine-cache")
    os.environ[artifact_cache.ENV_CACHE_DIR] = str(scratch)
    runner.clear_cache()
    yield
    if previous is None:
        os.environ.pop(artifact_cache.ENV_CACHE_DIR, None)
    else:
        os.environ[artifact_cache.ENV_CACHE_DIR] = previous
    runner.clear_cache()
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "suite_benchmarks": SUITE_BENCHMARKS,
        "suite_scale": SUITE_SCALE,
        "seconds": dict(sorted(_RESULTS.items())),
    }
    report.update(sorted(_TOP.items()))
    path = RESULTS_DIR / "BENCH_engine.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[bench] engine timings written to {path}")


@pytest.fixture(scope="module")
def workload():
    return load_benchmark("crafty", scale=0.2)


def _single_pass(workload):
    profiler = Profiler()
    collector = profiler.collector()
    trace, result = execute(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
        on_branch=collector.on_branch,
        compact=True,
    )
    return trace, collector.finish(result)


def test_single_pass_build(benchmark, workload):
    """One fused emulation producing both trace and profile."""
    benchmark.pedantic(lambda: _single_pass(workload), rounds=3,
                       iterations=1)
    _record("emulator_single_pass_build", benchmark)


def test_two_pass_build(benchmark, workload):
    """The pre-engine baseline: trace run plus a second profile run."""

    def two_pass():
        trace, _ = execute(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        )
        profile = Profiler().profile(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        )
        return trace, profile

    benchmark.pedantic(two_pass, rounds=3, iterations=1)
    _record("emulator_two_pass_build", benchmark)


def test_cache_warm_load(benchmark, workload):
    """Deserializing a cached (trace, profile) pair from disk."""
    profiler = Profiler()
    trace, profile = _single_pass(workload)
    key = artifact_cache.artifact_key(workload, profiler.fingerprint())
    artifact_cache.store(key, trace, profile)
    loaded = benchmark.pedantic(
        lambda: artifact_cache.load(key), rounds=3, iterations=1
    )
    assert loaded is not None
    _record("cache_warm_load", benchmark)


def test_simulator_compact_trace(benchmark, workload):
    """Timing simulation straight off the parallel-array trace.

    Also derives ``sim.insts_per_sec`` — retired instructions over the
    fastest round's simulate time — the headline throughput figure the
    trajectory gate tracks (``engine.sim.insts_per_sec``).
    """
    trace, _ = _single_pass(workload)
    stats = benchmark.pedantic(
        lambda: TimingSimulator(workload.program).run(trace),
        rounds=3,
        iterations=1,
    )
    _record("simulator_compact_trace", benchmark)
    _TOP["sim.insts_per_sec"] = (
        stats.retired_instructions / benchmark.stats.stats.min
    )


def test_simulator_vectorized(benchmark, workload):
    """The numpy batch-replay engine on the same trace.

    Emits ``sim_vectorized.insts_per_sec`` (trajectory-gated as
    ``engine.sim_vectorized.insts_per_sec``) and asserts the
    vectorized/scalar speedup stays at or above 5x — the optimization's
    contract, per-round construction included.  Runs after the scalar
    benchmark so ``sim.insts_per_sec`` is already recorded.
    """
    trace, _ = _single_pass(workload)
    scalar_stats = TimingSimulator(workload.program).run(trace)
    stats = benchmark.pedantic(
        lambda: VectorizedTimingSimulator(workload.program).run(trace),
        rounds=3,
        iterations=1,
    )
    assert stats.as_dict() == scalar_stats.as_dict()
    _record("simulator_vectorized", benchmark)
    insts_per_sec = (
        stats.retired_instructions / benchmark.stats.stats.min
    )
    _TOP["sim_vectorized.insts_per_sec"] = insts_per_sec
    scalar_insts_per_sec = _TOP.get("sim.insts_per_sec")
    if scalar_insts_per_sec:
        speedup = insts_per_sec / scalar_insts_per_sec
        _TOP["sim_vectorized_speedup"] = speedup
        assert speedup >= 5.0, (
            f"vectorized engine must be >= 5x scalar, got "
            f"{speedup:.2f}x"
        )


def _suite(jobs):
    runner.clear_cache()
    artifact_cache.set_disabled(True)
    try:
        return fig6.run(scale=SUITE_SCALE, benchmarks=SUITE_BENCHMARKS,
                        jobs=jobs)
    finally:
        artifact_cache.set_disabled(None)
        runner.clear_cache()


def test_suite_serial(benchmark):
    """A three-benchmark fig6 sweep on the serial path."""
    benchmark.pedantic(lambda: _suite(1), rounds=1, iterations=1)
    _record("suite_jobs1", benchmark)


def test_suite_two_workers(benchmark):
    """The same sweep fanned out over two worker processes."""
    benchmark.pedantic(lambda: _suite(2), rounds=1, iterations=1)
    _record("suite_jobs2", benchmark)
