"""Figure 9: DMP improvement with a different profiling input set.

Shape checks (paper §7.3): profiling on the train input instead of the
run input loses only a small amount of the improvement (paper: 0.5
points of 20.4), for both the heuristic and the cost-model compilers.
"""

from repro.experiments import fig9


def test_fig9_input_set_sensitivity(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        fig9.run, kwargs={"scale": scale, "benchmarks": suite},
        rounds=1, iterations=1,
    )
    save_result("fig9", fig9.format_result(result))
    means = result["means"]

    same = means["all-best-heur-same"]
    diff = means["all-best-heur-diff"]
    assert same > 0.05                      # DMP still clearly wins
    assert diff > 0.05
    # The gap is small in absolute terms and relative to the benefit.
    assert abs(same - diff) < 0.05
    assert diff > 0.6 * same

    cost_same = means["all-best-cost-same"]
    cost_diff = means["all-best-cost-diff"]
    assert abs(cost_same - cost_diff) < 0.05
