"""Figure 7: MAX_INSTR × MIN_MERGE_PROB threshold sweep.

Shape checks (paper §7.1.1): a too-small MAX_INSTR (10) forfeits most
of the benefit; MAX_INSTR=50 with a small MIN_MERGE_PROB is at or near
the best; very high merge-probability-only selection retains most of
the benefit (the high-merge candidates carry it).
"""

from repro.experiments import fig7


def test_fig7_threshold_sweep(benchmark, save_result, scale, suite):
    result = benchmark.pedantic(
        fig7.run,
        kwargs={
            "scale": scale,
            "benchmarks": suite,
            "max_instr_values": (10, 50, 100, 200),
            "min_merge_prob_values": (0.01, 0.30, 0.90),
        },
        rounds=1,
        iterations=1,
    )
    save_result("fig7", fig7.format_result(result))
    grid = result["grid"]

    best = max(grid.values())
    # MAX_INSTR=10 is far from the best (misses most hammocks).
    assert grid[(10, 0.01)] < best - 0.01
    # MAX_INSTR=50 with small MIN_MERGE_PROB is close to the best.
    assert grid[(50, 0.01)] > 0.7 * best
    # High-merge-probability candidates carry most of the benefit.
    assert grid[(50, 0.90)] > 0.5 * grid[(50, 0.01)]
