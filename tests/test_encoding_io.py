"""Tests for binary encoding and annotation serialization."""

import pytest

from repro.core import SelectionConfig, select_diverge_branches
from repro.core import annotation_io
from repro.errors import AssemblerError, SelectionError
from repro.isa import Instruction, Opcode, assemble
from repro.isa.encoding import (
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.profiling import Profiler
from repro.workloads import load_benchmark


class TestInstructionEncoding:
    CASES = [
        Instruction(op=Opcode.ADD, dest=1, src1=2, src2=3),
        Instruction(op=Opcode.ADD, dest=1, src1=2, imm=-42),
        Instruction(op=Opcode.MOVI, dest=63, imm=(1 << 30)),
        Instruction(op=Opcode.LD, dest=5, src1=6, imm=-8),
        Instruction(op=Opcode.ST, src1=6, src2=7, imm=0),
        Instruction(op=Opcode.BEQZ, src1=9, target=1234),
        Instruction(op=Opcode.BNEZ, src1=9, target=0),
        Instruction(op=Opcode.JMP, target=77),
        Instruction(op=Opcode.CALL, target=2),
        Instruction(op=Opcode.RET),
        Instruction(op=Opcode.NOP),
        Instruction(op=Opcode.HALT),
        Instruction(op=Opcode.MOV, dest=0, src1=63),
    ]

    @pytest.mark.parametrize("inst", CASES, ids=lambda i: i.format())
    def test_roundtrip(self, inst):
        word = encode_instruction(inst)
        assert len(word) == 8
        decoded = decode_instruction(word)
        assert decoded == inst

    def test_immediate_zero_roundtrips(self):
        # imm=0 must not be confused with "no operand"
        inst = Instruction(op=Opcode.MOVI, dest=1, imm=0)
        assert decode_instruction(encode_instruction(inst)).imm == 0

    def test_oversized_immediate_rejected(self):
        inst = Instruction(op=Opcode.MOVI, dest=1, imm=1 << 40)
        with pytest.raises(AssemblerError, match="32-bit"):
            encode_instruction(inst)

    def test_sentinel_immediate_rejected(self):
        inst = Instruction(op=Opcode.MOVI, dest=1, imm=0x7FFFFFFF)
        with pytest.raises(AssemblerError, match="sentinel"):
            encode_instruction(inst)

    def test_bad_opcode_index(self):
        with pytest.raises(AssemblerError, match="unknown opcode"):
            decode_instruction(b"\xfe\x00\x00\x00\x00\x00\x00\x00")


class TestProgramImages:
    def test_roundtrip_multifunction_program(self, call_program):
        blob = encode_program(call_program)
        restored = decode_program(blob, name=call_program.name)
        assert len(restored) == len(call_program)
        assert [f.name for f in restored.functions] == [
            f.name for f in call_program.functions
        ]
        for original, decoded in zip(
            call_program.instructions, restored.instructions
        ):
            assert original == decoded

    def test_roundtrip_generated_benchmark(self):
        workload = load_benchmark("li", scale=0.1)
        blob = encode_program(workload.program)
        restored = decode_program(blob)
        assert len(restored) == len(workload.program)

    def test_magic_checked(self):
        with pytest.raises(AssemblerError, match="DMPB"):
            decode_program(b"NOPE" + b"\x00" * 16)

    def test_trailing_bytes_rejected(self, simple_hammock_program):
        blob = encode_program(simple_hammock_program) + b"\x00"
        with pytest.raises(AssemblerError, match="trailing"):
            decode_program(blob)


@pytest.fixture(scope="module")
def annotated():
    workload = load_benchmark("twolf", scale=0.2)
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    annotation = select_diverge_branches(
        workload.program, profile, SelectionConfig.all_best_heur()
    )
    return workload.program, annotation


class TestAnnotationIO:
    def test_json_roundtrip(self, annotated):
        program, annotation = annotated
        text = annotation_io.dumps(annotation)
        restored = annotation_io.loads(text)
        assert len(restored) == len(annotation)
        for original in annotation:
            copy = restored.get(original.branch_pc)
            assert copy is not None
            assert copy.kind == original.kind
            assert copy.cfm_pcs == original.cfm_pcs
            assert copy.select_registers == original.select_registers
            assert copy.always_predicate == original.always_predicate
            assert copy.loop_direction == original.loop_direction

    def test_file_roundtrip(self, annotated, tmp_path):
        program, annotation = annotated
        path = tmp_path / "marks.json"
        annotation_io.save(annotation, path)
        restored = annotation_io.load(path)
        assert len(restored) == len(annotation)

    def test_bad_format_rejected(self):
        with pytest.raises(SelectionError, match="not a DMP"):
            annotation_io.loads('{"format": "something-else"}')

    def test_bad_version_rejected(self):
        with pytest.raises(SelectionError, match="version"):
            annotation_io.loads(
                '{"format": "dmp-annotation", "version": 99}'
            )

    def test_validate_accepts_real_annotation(self, annotated):
        program, annotation = annotated
        assert annotation_io.validate_against_program(
            annotation, program
        ) == []

    def test_validate_flags_bad_pcs(self, annotated):
        from repro.core import BinaryAnnotation, DivergeBranch, DivergeKind

        program, _ = annotated
        bogus = BinaryAnnotation(
            "x",
            [
                DivergeBranch(
                    branch_pc=0,  # movi, not a branch
                    kind=DivergeKind.SIMPLE_HAMMOCK,
                    cfm_points=(),
                ),
                DivergeBranch(
                    branch_pc=10 ** 6,
                    kind=DivergeKind.SIMPLE_HAMMOCK,
                    cfm_points=(),
                ),
            ],
        )
        problems = annotation_io.validate_against_program(bogus, program)
        assert len(problems) == 2

    def test_simulation_identical_after_roundtrip(self, annotated):
        from repro.emulator import execute
        from repro.uarch import simulate
        from repro.workloads import load_benchmark

        program, annotation = annotated
        workload = load_benchmark("twolf", scale=0.2)
        trace, _ = execute(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        )
        restored = annotation_io.loads(annotation_io.dumps(annotation))
        a = simulate(program, trace, annotation=annotation)
        b = simulate(program, trace, annotation=restored)
        assert a.cycles == b.cycles
        assert a.dpred_episodes == b.dpred_episodes
