"""Functional-emulator tests: semantics, tracing, and guard rails."""

import pytest

from repro.emulator import ArchState, Emulator, execute
from repro.errors import EmulationError
from repro.isa import assemble


def run_asm(text, memory=None, budget=100_000):
    program = assemble(f".func main\n{text}\n    halt\n.endfunc")
    trace, result = execute(program, memory=memory, max_instructions=budget)
    return trace, result


class TestALUSemantics:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, -1),
            ("mul", 6, 7, 42),
            ("div", 42, 5, 8),
            ("and", 12, 10, 8),
            ("or", 12, 10, 14),
            ("xor", 12, 10, 6),
            ("shl", 3, 4, 48),
            ("shr", 48, 4, 3),
            ("cmplt", 3, 4, 1),
            ("cmple", 4, 4, 1),
            ("cmpeq", 4, 4, 1),
            ("cmpne", 4, 4, 0),
            ("cmpgt", 4, 3, 1),
            ("cmpge", 3, 4, 0),
        ],
    )
    def test_binary_op(self, op, a, b, expected):
        _, result = run_asm(
            f"    movi r1, {a}\n    movi r2, {b}\n    {op} r3, r1, r2"
        )
        assert result.state.regs[3] == expected

    def test_division_by_zero_yields_zero(self):
        _, result = run_asm("    movi r1, 9\n    div r3, r1, r0")
        assert result.state.regs[3] == 0

    def test_division_truncates_toward_zero(self):
        _, result = run_asm(
            "    movi r1, -7\n    movi r2, 2\n    div r3, r1, r2"
        )
        assert result.state.regs[3] == -3

    @pytest.mark.parametrize(
        "a,b",
        [
            (2**62 + 3, 3),
            (-(2**62 + 3), 3),
            (2**62 + 3, -3),
            (-(2**62 + 3), -3),
            (2**63 - 1, 1),
            (2**53 + 1, 1),
        ],
    )
    def test_division_exact_above_float_precision(self, a, b):
        # int(a / b) would round through a 53-bit float here.
        _, result = run_asm(
            f"    movi r1, {a}\n    movi r2, {b}\n    div r3, r1, r2"
        )
        quotient = abs(a) // abs(b)
        expected = -quotient if (a < 0) != (b < 0) else quotient
        assert result.state.regs[3] == expected

    def test_division_overflow_wraps_like_other_alu_ops(self):
        # INT64_MIN / -1 does not fit in 64 bits; it wraps, as ADD/MUL do.
        _, result = run_asm(
            f"    movi r1, {-2**63}\n    movi r2, -1\n    div r3, r1, r2"
        )
        assert result.state.regs[3] == -(2**63)

    def test_shift_amount_masked(self):
        _, result = run_asm(
            "    movi r1, 1\n    movi r2, 65\n    shl r3, r1, r2"
        )
        assert result.state.regs[3] == 2  # 65 & 63 == 1

    def test_64bit_wraparound(self):
        _, result = run_asm(
            "    movi r1, 1\n    movi r2, 63\n    shl r3, r1, r2\n"
            "    add r4, r3, r3"
        )
        assert result.state.regs[3] == -(1 << 63)
        assert result.state.regs[4] == 0

    def test_zero_register_reads_zero_and_ignores_writes(self):
        _, result = run_asm("    movi r0, 99\n    add r1, r0, 5")
        assert result.state.regs[0] == 0
        assert result.state.regs[1] == 5


class TestControlFlow:
    def test_taken_and_not_taken_branches(self):
        trace, result = run_asm(
            """
            movi r1, 1
            bnez r1, yes
            movi r2, 100
        yes:
            beqz r1, no
            movi r3, 7
        no:
        """
        )
        assert result.state.regs[2] == 0
        assert result.state.regs[3] == 7

    def test_loop_iterates(self):
        _, result = run_asm(
            """
            movi r1, 5
        top:
            addi r2, r2, 3
            addi r1, r1, -1
            bnez r1, top
            """
        )
        assert result.state.regs[2] == 15

    def test_call_and_return(self):
        program = assemble(
            """
            .func main
                movi r1, 1
                call helper
                addi r1, r1, 10
                halt
            .endfunc
            .func helper
                addi r1, r1, 100
                ret
            .endfunc
            """
        )
        _, result = execute(program)
        assert result.state.regs[1] == 111

    def test_return_without_call_raises(self):
        program = assemble(".func main\n    ret\n.endfunc")
        with pytest.raises(EmulationError, match="empty call stack"):
            execute(program)

    def test_runaway_recursion_detected(self):
        program = assemble(
            """
            .func main
                call f
                halt
            .endfunc
            .func f
                call f
                ret
            .endfunc
            """
        )
        with pytest.raises(EmulationError, match="call stack overflow"):
            execute(program, max_instructions=100_000)


class TestMemory:
    def test_load_store_roundtrip(self):
        _, result = run_asm(
            """
            movi r1, 10
            movi r2, 42
            st r2, 5(r1)
            ld r3, 5(r1)
            """
        )
        assert result.state.regs[3] == 42
        assert result.state.memory[15] == 42

    def test_uninitialized_memory_reads_zero(self):
        _, result = run_asm("    ld r1, 100(r0)")
        assert result.state.regs[1] == 0

    def test_preloaded_memory(self):
        _, result = run_asm("    ld r1, 3(r0)", memory={3: 77})
        assert result.state.regs[1] == 77


class TestTraceAndBudget:
    def test_trace_records_every_instruction(self):
        trace, result = run_asm("    movi r1, 2\n    addi r1, r1, 1")
        assert len(trace) == result.instruction_count
        assert [d.pc for d in trace] == [0, 1, 2]

    def test_trace_records_branch_outcomes(self):
        trace, _ = run_asm(
            "    movi r1, 1\n    bnez r1, t\n    nop\nt:"
        )
        branch = trace[1]
        assert branch.taken()
        assert branch.next_pc == 3

    def test_trace_records_load_addresses(self):
        trace, _ = run_asm("    movi r1, 4\n    ld r2, 6(r1)")
        assert trace[1].address == 10

    def test_budget_stops_infinite_loop(self):
        program = assemble(".func main\ntop:\n    jmp top\n.endfunc")
        _, result = execute(program, max_instructions=500)
        assert result.hit_budget
        assert not result.halted
        assert result.instruction_count == 500

    def test_on_branch_callback(self, simple_hammock_program,
                                alternating_memory):
        seen = []
        emulator = Emulator(simple_hammock_program)
        emulator.run(
            state=ArchState(memory=alternating_memory),
            on_branch=lambda pc, taken: seen.append((pc, taken)),
        )
        assert seen
        pcs = {pc for pc, _ in seen}
        assert pcs <= set(simple_hammock_program.conditional_branch_pcs())
        # the hammock condition alternates, so both outcomes appear
        hammock_pc = 6
        outcomes = {taken for pc, taken in seen if pc == hammock_pc}
        assert outcomes == {True, False}


class TestArchState:
    def test_copy_is_independent(self):
        state = ArchState(memory={1: 2})
        clone = state.copy()
        clone.regs[5] = 9
        clone.memory[1] = 3
        clone.call_stack.append(7)
        assert state.regs[5] == 0
        assert state.memory[1] == 2
        assert state.call_stack == []
