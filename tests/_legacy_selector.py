"""Frozen copy of the pre-pipeline ``DivergeSelector.select`` logic.

This module is the oracle for the pipeline-equivalence tests: it
preserves, verbatim, the monolithic selection sequence that shipped
before ``repro.compiler`` existed, so the tests can assert that the
pass-manager pipeline emits byte-identical annotations for every
preset.  Do not "improve" this file — its value is that it does not
change.
"""

from dataclasses import replace

from repro.core.alg_exact import find_exact_candidates
from repro.core.alg_freq import find_freq_candidates
from repro.core.analysis import ProgramAnalysis
from repro.core.cost_model import evaluate_hammock
from repro.core.loop_selection import select_loop_diverge_branches
from repro.core.marks import BinaryAnnotation, DivergeBranch, DivergeKind
from repro.core.return_cfm import find_return_cfm_candidates
from repro.core.short_hammocks import apply_short_hammock_heuristic
from repro.core.thresholds import COST_MODEL


def _effective_thresholds(config):
    """The legacy rule: cost-model mode discarded custom thresholds."""
    if config.cost_model is None:
        return config.thresholds
    return COST_MODEL


def _finish_hammock(analysis, candidate, always, source=None):
    select_registers = analysis.select_registers_for_paths(
        candidate.path_set, candidate.cfm_pcs
    )
    return DivergeBranch(
        branch_pc=candidate.branch_pc,
        kind=candidate.kind,
        cfm_points=candidate.cfm_points,
        select_registers=select_registers,
        always_predicate=always,
        source=source or candidate.kind.value,
    )


def _finish_short(analysis, config, branch_pc, cfm_points):
    thresholds = _effective_thresholds(config)
    path_set = analysis.paths(
        branch_pc,
        max_instr=thresholds.max_instr,
        max_cbr=thresholds.max_cbr,
        min_exec_prob=thresholds.min_exec_prob,
        stop_at_iposdom=True,
    )
    cfm_pcs = {p.pc for p in cfm_points if p.pc is not None}
    select_registers = analysis.select_registers_for_paths(
        path_set, cfm_pcs
    )
    kind = (
        DivergeKind.SIMPLE_HAMMOCK
        if all(p.merge_prob >= 0.999 for p in cfm_points)
        else DivergeKind.FREQUENTLY_HAMMOCK
    )
    return DivergeBranch(
        branch_pc=branch_pc,
        kind=kind,
        cfm_points=tuple(cfm_points),
        select_registers=select_registers,
        always_predicate=True,
        source="short-hammock",
    )


def legacy_select(program, profile, config, two_d_profile=None):
    """The old monolithic selection; returns
    ``(annotation, cost_reports, loop_reports)``."""
    analysis = ProgramAnalysis(program, profile)
    thresholds = _effective_thresholds(config)
    annotation = BinaryAnnotation(program.name)
    cost_reports = []
    loop_reports = []

    candidates = []
    if config.enable_exact:
        candidates.extend(find_exact_candidates(analysis, thresholds))
    if config.enable_freq:
        exclude = frozenset(c.branch_pc for c in candidates)
        candidates.extend(
            find_freq_candidates(analysis, thresholds, exclude)
        )
    if config.min_misp_rate > 0.0:
        branch_profile = profile.branch_profile
        candidates = [
            candidate
            for candidate in candidates
            if branch_profile.misprediction_rate(candidate.branch_pc)
            >= config.min_misp_rate
        ]
    if two_d_profile is not None:
        candidates = [
            candidate
            for candidate in candidates
            if two_d_profile.keep_branch(candidate.branch_pc)
        ]

    short = {}
    if config.enable_short:
        short, candidates = apply_short_hammock_heuristic(
            candidates, profile, config.thresholds
        )

    cost_params = config.cost_params
    if config.cost_model is not None and config.per_app_acc_conf:
        measured = profile.measured_acc_conf
        if measured > 0.0:
            cost_params = replace(cost_params, acc_conf=measured)

    if config.cost_model is not None:
        selected = []
        for candidate in candidates:
            report = evaluate_hammock(
                candidate, profile, cost_params,
                method=config.cost_model,
            )
            cost_reports.append(report)
            if report.selected:
                selected.append(candidate)
        candidates = selected

    for candidate in candidates:
        annotation.add(_finish_hammock(analysis, candidate, always=False))

    for branch_pc, cfm_points in sorted(short.items()):
        annotation.add(
            _finish_short(analysis, config, branch_pc, cfm_points)
        )

    if config.enable_return_cfm:
        exclude = frozenset(branch.branch_pc for branch in annotation)
        ret_candidates = find_return_cfm_candidates(
            analysis, thresholds, exclude
        )
        if config.cost_model is not None:
            kept = []
            for candidate in ret_candidates:
                report = evaluate_hammock(
                    candidate, profile, cost_params,
                    method=config.cost_model,
                )
                cost_reports.append(report)
                if report.selected:
                    kept.append(candidate)
            ret_candidates = kept
        for candidate in ret_candidates:
            annotation.add(
                _finish_hammock(
                    analysis, candidate, always=False, source="return-cfm"
                )
            )

    if config.enable_loop:
        loops, loop_reports = select_loop_diverge_branches(
            analysis, config.thresholds
        )
        for branch in loops:
            if not annotation.is_diverge(branch.branch_pc):
                annotation.add(branch)

    return annotation, cost_reports, loop_reports
