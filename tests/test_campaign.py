"""The campaign subsystem: spec/cell identity, journal replay, the
fault-tolerant scheduler (exceptions, hard crashes, timeouts, retry,
quarantine), crash/resume equivalence, the CLI, and Figure 7 expressed
as a campaign."""

import json
import os

import pytest

from repro import __main__ as repro_main
from repro.campaign import (
    Axis,
    CampaignSpec,
    Journal,
    Scheduler,
    aggregate_means,
    render_report,
    render_status,
    replay,
)
from repro.campaign.spec import content_hash, resolve_cell_fn
from repro.obs import MetricsRegistry, PhaseProfile, telemetry

SCALE = 0.1
BENCH = ["gzip", "twolf"]

#: Attempt-marker directory for cells that fail a set number of times
#: (inherited by forked workers through the environment).
_MARKER_ENV = "REPRO_CAMPAIGN_TEST_DIR"


# -- cell functions (must be module-level: workers import by path) ----


def fake_cell(params):
    """Deterministic synthetic result derived from the parameters."""
    from repro.obs.context import get_metrics

    get_metrics().counter("fake_cells_total").inc()
    value = int(content_hash(params), 16) % 1000 / 1000.0
    return {
        "speedup": value,
        "baseline": {"ipc": 1.0},
        "stats": {"ipc": 1.0 + value},
    }


def crashy_cell(params):
    """Raises for one benchmark, succeeds for the rest."""
    if params["benchmark"] == "twolf":
        raise RuntimeError("synthetic cell failure")
    return fake_cell(params)


def hard_crash_cell(params):
    """Kills the worker outright (no exception, no payload)."""
    if params["benchmark"] == "twolf":
        os._exit(9)
    return fake_cell(params)


def sleepy_cell(params):
    """Exceeds any reasonable per-cell budget for one benchmark."""
    import time

    if params["benchmark"] == "twolf":
        time.sleep(60)
    return fake_cell(params)


def flaky_cell(params):
    """Fails the first attempt per cell, then succeeds (tests retry)."""
    marker_dir = os.environ[_MARKER_ENV]
    marker = os.path.join(marker_dir, content_hash(params))
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        raise RuntimeError("first attempt always fails")
    return fake_cell(params)


def _spec(cell="tests.test_campaign:fake_cell", name="probe",
          benchmarks=("gzip", "twolf"), axes=None):
    return CampaignSpec(
        name=name,
        benchmarks=benchmarks,
        scale=SCALE,
        selection="exact-freq",
        axes=axes if axes is not None
        else (Axis("max_instr", (10, 50)),),
        cell=cell,
    )


def _run(spec, tmp_path, jobs=1, state=None, max_cells=None, **kwargs):
    journal_path = tmp_path / "journal.jsonl"
    if state is None:
        state = replay(journal_path)
    with Journal(journal_path) as journal:
        journal.campaign_start(spec.name, spec.spec_hash, jobs)
        scheduler = Scheduler(spec, journal, jobs=jobs,
                              backoff=kwargs.pop("backoff", 0.0),
                              **kwargs)
        return scheduler.run(state, max_cells=max_cells)


class TestSpec:
    def test_cell_ids_are_stable_content_hashes(self):
        first = [c.cell_id for c in _spec().cells()]
        second = [c.cell_id for c in _spec().cells()]
        assert first == second
        assert len(set(first)) == len(first)

    def test_cell_ids_track_parameters(self):
        base = {c.cell_id for c in _spec().cells()}
        rescaled = CampaignSpec.from_dict(
            {**_spec().as_dict(), "scale": 0.2}
        )
        assert base.isdisjoint(c.cell_id for c in rescaled.cells())

    def test_cells_are_benchmark_major(self):
        cells = _spec().cells()
        assert [c.benchmark for c in cells] \
            == ["gzip", "gzip", "twolf", "twolf"]
        assert [dict(c.point)["max_instr"] for c in cells] \
            == [10, 50, 10, 50]

    def test_axis_routing(self):
        spec = _spec(axes=(
            Axis("max_instr", (10,)),
            Axis("proc.confidence_threshold", (6, 14)),
            Axis("selection", ("exact-freq", "all-best-heur")),
        ))
        params = spec.cells()[0].params
        assert params["thresholds"] == {"max_instr": 10}
        assert params["processor"] == {"confidence_threshold": 6}
        assert params["selection"] == "exact-freq"

    @pytest.mark.parametrize("axis", [
        Axis("not_a_threshold", (1,)),
        Axis("proc.not_a_field", (1,)),
        Axis("selection", ("not-a-preset",)),
    ])
    def test_bad_axes_rejected(self, axis):
        with pytest.raises(ValueError):
            _spec(axes=(axis,))

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            _spec(axes=(Axis("max_instr", (1,)),
                        Axis("max_instr", (2,))))

    def test_json_round_trip(self, tmp_path):
        spec = _spec()
        path = tmp_path / "spec.json"
        spec.dump(path)
        loaded = CampaignSpec.load(path)
        assert loaded == spec
        assert loaded.spec_hash == spec.spec_hash

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec"):
            CampaignSpec.from_dict({**_spec().as_dict(), "bogus": 1})

    def test_resolve_cell_fn(self):
        assert resolve_cell_fn("tests.test_campaign:fake_cell") \
            is fake_cell
        assert resolve_cell_fn("tests.test_campaign.fake_cell") \
            is fake_cell
        with pytest.raises(ValueError):
            resolve_cell_fn("tests.test_campaign:no_such_cell")


class TestJournal:
    def test_missing_journal_is_empty_state(self, tmp_path):
        state = replay(tmp_path / "journal.jsonl")
        assert state.results == {} and state.records == 0

    def test_replay_folds_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.campaign_start("probe", "abc", 1)
            journal.cell_start("c1", 1)
            journal.cell_finish("c1", 1, 0.5, {"speedup": 0.1})
            journal.cell_start("c2", 1)
            journal.cell_fail("c2", 1, "exception", "boom", 0.1)
            journal.cell_start("c2", 2)
            journal.cell_fail("c2", 2, "timeout", "late", 0.2)
            journal.cell_quarantine("c2", 2)
            journal.cell_start("c3", 1)
        state = replay(path)
        assert state.spec_hash == "abc"
        assert state.results == {"c1": {"speedup": 0.1}}
        assert state.failures == {"c2": 2}
        assert state.last_failure["c2"]["kind"] == "timeout"
        assert state.quarantined == {"c2"}
        assert state.in_flight == {"c3"}
        assert state.sessions == 1

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.cell_start("c1", 1)
            journal.cell_finish("c1", 1, 0.5, {"speedup": 0.1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"cell.finish","cell_id":"c2"')
        state = replay(path)
        assert state.results == {"c1": {"speedup": 0.1}}
        assert state.corrupt_lines == 1

    def test_mixed_spec_hashes_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.campaign_start("probe", "aaa", 1)
            journal.campaign_start("probe", "bbb", 1)
        with pytest.raises(ValueError, match="mixes spec hashes"):
            replay(path)


class TestScheduler:
    def test_happy_path_completes_every_cell(self, tmp_path):
        registry = MetricsRegistry()
        with telemetry(metrics=registry, phases=PhaseProfile()):
            out = _run(_spec(), tmp_path, jobs=2)
        assert not out["interrupted"]
        assert len(out["results"]) == 4
        assert out["quarantined"] == set()
        assert registry.counter(
            "campaign_cells_completed_total").value == 4
        # Worker-side telemetry snapshots folded into the parent.
        assert registry.counter("fake_cells_total").value == 4

    def test_exception_cells_retry_then_quarantine(self, tmp_path):
        spec = _spec(cell="tests.test_campaign:crashy_cell")
        registry = MetricsRegistry()
        with telemetry(metrics=registry, phases=PhaseProfile()):
            out = _run(spec, tmp_path, max_attempts=2)
        assert len(out["results"]) == 2          # gzip cells
        assert len(out["quarantined"]) == 2      # twolf cells
        assert registry.counter(
            "campaign_cells_retried_total").value == 2
        assert registry.counter(
            "campaign_cells_quarantined_total").value == 2
        state = replay(tmp_path / "journal.jsonl")
        assert state.quarantined == out["quarantined"]
        for cell_id in out["quarantined"]:
            assert state.failures[cell_id] == 2
            assert state.last_failure[cell_id]["kind"] == "exception"
            assert "synthetic cell failure" \
                in state.last_failure[cell_id]["error"]

    def test_flaky_cells_succeed_on_retry(self, tmp_path, monkeypatch):
        markers = tmp_path / "markers"
        markers.mkdir()
        monkeypatch.setenv(_MARKER_ENV, str(markers))
        spec = _spec(cell="tests.test_campaign:flaky_cell")
        out = _run(spec, tmp_path, max_attempts=3)
        assert len(out["results"]) == 4
        assert out["quarantined"] == set()
        state = replay(tmp_path / "journal.jsonl")
        assert all(count == 1 for count in state.failures.values())

    def test_worker_hard_crash_is_isolated(self, tmp_path):
        spec = _spec(cell="tests.test_campaign:hard_crash_cell")
        out = _run(spec, tmp_path, jobs=2, max_attempts=1)
        assert len(out["results"]) == 2
        assert len(out["quarantined"]) == 2
        state = replay(tmp_path / "journal.jsonl")
        for cell_id in out["quarantined"]:
            assert state.last_failure[cell_id]["kind"] == "crash"
            assert "exit code" in state.last_failure[cell_id]["error"]

    def test_timeout_terminates_the_worker(self, tmp_path):
        spec = _spec(cell="tests.test_campaign:sleepy_cell")
        out = _run(spec, tmp_path, jobs=2, max_attempts=1,
                   cell_timeout=0.5)
        assert len(out["results"]) == 2
        assert len(out["quarantined"]) == 2
        state = replay(tmp_path / "journal.jsonl")
        for cell_id in out["quarantined"]:
            assert state.last_failure[cell_id]["kind"] == "timeout"

    def test_interrupted_run_resumes_identically(self, tmp_path):
        spec = _spec()
        first = _run(spec, tmp_path, max_cells=1)
        assert first["interrupted"]
        assert first["session_completed"] == 1
        resumed = _run(spec, tmp_path)
        assert not resumed["interrupted"]

        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        clean = _run(spec, clean_dir)

        assert resumed["results"] == clean["results"]
        assert render_report(spec, resumed["results"]) \
            == render_report(spec, clean["results"])
        # The resumed journal shows two sessions and no re-runs.
        state = replay(tmp_path / "journal.jsonl")
        assert state.sessions == 2
        assert state.records == 2 + 2 * len(spec.cells())

    def test_quarantined_cells_render_as_gaps(self, tmp_path):
        spec = _spec(cell="tests.test_campaign:crashy_cell")
        out = _run(spec, tmp_path, max_attempts=1)
        report = render_report(spec, out["results"],
                               quarantined=out["quarantined"])
        assert "quarantined" in report
        assert "gap" in report
        means, gaps = aggregate_means(spec, out["results"])
        assert means == {}          # every point misses twolf
        assert len(gaps) == 2

    def test_status_names_failing_cells(self, tmp_path):
        spec = _spec(cell="tests.test_campaign:crashy_cell")
        _run(spec, tmp_path, max_attempts=1)
        state = replay(tmp_path / "journal.jsonl")
        status = render_status(spec, state)
        assert "2/4 cells complete" in status
        assert "2 quarantined" in status
        assert "synthetic cell failure" in status


class TestCacheJournaling:
    """Per-cell analysis-cache counters in the journal (status-only)."""

    def test_finish_records_carry_cache_counters(self, tmp_path):
        spec = _spec()          # fake_cell: no analyses, zero counters
        _run(spec, tmp_path)
        state = replay(tmp_path / "journal.jsonl")
        assert set(state.cache) == set(state.results)
        assert all(
            cell == {"analysis_hits": 0, "analysis_misses": 0}
            for cell in state.cache.values()
        )

    def test_status_omits_cache_line_without_lookups(self, tmp_path):
        spec = _spec()
        _run(spec, tmp_path)
        state = replay(tmp_path / "journal.jsonl")
        assert "analysis cache:" not in render_status(spec, state)

    def test_status_summarizes_journaled_counters(self):
        spec = _spec()
        state = replay("/nonexistent")
        for cell in spec.cells():
            state.results[cell.cell_id] = {"speedup": 0.1}
            state.cache[cell.cell_id] = {
                "analysis_hits": 3, "analysis_misses": 1,
            }
        status = render_status(spec, state)
        assert "analysis cache: 12/16 hits (75%) across 4 journaled " \
            "cells" in status

    def test_report_ignores_cache_records(self, tmp_path):
        """``report`` stays deterministic: cache annotations are an
        operational detail and must not leak into it."""
        spec = _spec()
        out = _run(spec, tmp_path)
        report = render_report(spec, out["results"])
        assert "analysis cache" not in report

    def test_cell_finish_without_cache_is_unchanged(self, tmp_path):
        """Direct journal writers (benchmarks, older tools) that pass
        no cache argument produce records without the key."""
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.cell_finish("cell0", 1, 0.5, {"speedup": 0.1})
        record = json.loads(path.read_text())
        assert "cache" not in record
        assert not replay(path).cache


class TestCampaignCLI:
    def _spec_file(self, tmp_path):
        path = tmp_path / "probe.json"
        path.write_text(json.dumps(_spec().as_dict()) + "\n")
        return str(path)

    def test_run_status_report_round_trip(self, tmp_path, capsys):
        results = str(tmp_path / "campaigns")
        spec_file = self._spec_file(tmp_path)
        assert repro_main.main(
            ["campaign", "run", spec_file, "--results-dir", results]
        ) == 0
        assert repro_main.main(
            ["campaign", "status", "probe", "--results-dir", results]
        ) == 0
        assert "4/4 cells complete" in capsys.readouterr().out
        assert repro_main.main(
            ["campaign", "report", "probe", "--results-dir", results]
        ) == 0
        assert "Per-cell results" in capsys.readouterr().out

    def test_rerun_requires_resume(self, tmp_path):
        results = str(tmp_path / "campaigns")
        spec_file = self._spec_file(tmp_path)
        repro_main.main(
            ["campaign", "run", spec_file, "--results-dir", results]
        )
        with pytest.raises(SystemExit):
            repro_main.main(
                ["campaign", "run", spec_file, "--results-dir", results]
            )
        # --fresh discards and re-runs.
        assert repro_main.main(
            ["campaign", "run", spec_file, "--results-dir", results,
             "--fresh"]
        ) == 0

    def test_interrupt_resume_reports_identically(self, tmp_path,
                                                  capsys):
        interrupted = str(tmp_path / "interrupted")
        clean = str(tmp_path / "clean")
        spec_file = self._spec_file(tmp_path)
        assert repro_main.main(
            ["campaign", "run", spec_file, "--results-dir", interrupted,
             "--max-cells", "2", "--jobs", "2"]
        ) == 3
        assert repro_main.main(
            ["campaign", "resume", "probe", "--results-dir", interrupted]
        ) == 0
        assert repro_main.main(
            ["campaign", "run", spec_file, "--results-dir", clean]
        ) == 0
        capsys.readouterr()
        repro_main.main(
            ["campaign", "report", "probe", "--results-dir", interrupted]
        )
        resumed_report = capsys.readouterr().out
        repro_main.main(
            ["campaign", "report", "probe", "--results-dir", clean]
        )
        clean_report = capsys.readouterr().out
        assert resumed_report == clean_report

    def test_resume_refuses_spec_mismatch(self, tmp_path):
        results = str(tmp_path / "campaigns")
        spec_file = self._spec_file(tmp_path)
        repro_main.main(
            ["campaign", "run", spec_file, "--results-dir", results]
        )
        spec_path = os.path.join(results, "probe", "spec.json")
        mutated = json.loads(open(spec_path).read())
        mutated["scale"] = 0.5
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(mutated, handle)
        with pytest.raises(SystemExit):
            repro_main.main(
                ["campaign", "resume", "probe", "--results-dir", results]
            )

    def test_unknown_spec_is_an_error(self, tmp_path, capsys):
        assert repro_main.main(
            ["campaign", "run", "no-such-spec",
             "--results-dir", str(tmp_path)]
        ) == 1
        assert "neither a builtin spec" in capsys.readouterr().err


class TestFig7AsCampaign:
    """Fig. 7's sweep expressed as a campaign reproduces its numbers."""

    MI = (10, 50)
    MM = (0.05, 0.60)

    def test_grid_matches_monolithic_driver_exactly(self, tmp_path):
        from repro.experiments import fig7, runner

        spec = fig7.campaign_spec(
            scale=SCALE, benchmarks=BENCH,
            max_instr_values=self.MI, min_merge_prob_values=self.MM,
        )
        out = _run(spec, tmp_path, jobs=2)
        assert len(out["results"]) == len(spec.cells())
        means, gaps = aggregate_means(spec, out["results"])
        assert not gaps

        # The parent-side warm hook builds each benchmark's analysis
        # once; every forked worker then hits the inherited cache, and
        # the journal records the per-cell counters.
        state = replay(tmp_path / "journal.jsonl")
        assert set(state.cache) == set(state.results)
        assert all(cell["analysis_hits"] >= 1
                   for cell in state.cache.values())
        status = render_status(spec, state)
        assert "analysis cache:" in status

        runner.clear_cache()
        reference = fig7.run(
            scale=SCALE, benchmarks=BENCH, max_instr_values=self.MI,
            min_merge_prob_values=self.MM, jobs=1,
        )
        runner.clear_cache()
        campaign_grid = {
            (mi, mm): means[(("max_instr", mi), ("min_merge_prob", mm))]
            for mi in self.MI for mm in self.MM
        }
        assert campaign_grid == reference["grid"]

    def test_report_renders_the_sensitivity_grid(self, tmp_path):
        from repro.experiments import fig7

        spec = fig7.campaign_spec(
            scale=SCALE, benchmarks=BENCH,
            max_instr_values=self.MI, min_merge_prob_values=self.MM,
        )
        out = _run(spec, tmp_path, jobs=2)
        report = render_report(spec, out["results"])
        assert "Sensitivity: mean speedup vs max_instr" \
            " × min_merge_prob" in report
        assert "Best point:" in report
