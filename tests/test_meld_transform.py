"""Static if-conversion (MeldPass): matcher, rewrite, and equivalence.

The transform's load-bearing contract is that melding is
*architecturally invisible*: a melded program must halt and reach the
bit-identical final register file and memory image of the original.
The suite-wide battery at the bottom asserts that for every benchmark
under ``meld:all`` (the widest structural mode, so every rewrite shape
is exercised).
"""

import pytest

from repro.compiler import resolve, run_selection_pipeline
from repro.compiler.transform import (
    MELD_MAX_SIDE_INSTS,
    MeldPass,
    apply_meld,
    find_meld_candidates,
    select_meld_candidates,
)
from repro.emulator import execute
from repro.isa import NUM_REGISTERS, Opcode, ProgramBuilder, assemble
from repro.workloads import BENCHMARK_NAMES, load_benchmark


def _run_states(program_a, program_b, memory=None, budget=1_000_000):
    _, result_a = execute(
        program_a, memory=dict(memory or {}), max_instructions=budget
    )
    _, result_b = execute(
        program_b, memory=dict(memory or {}), max_instructions=budget
    )
    assert result_a.halted and result_b.halted
    return result_a.state, result_b.state


# -- structural matcher -------------------------------------------------------


def test_finds_diamond_candidate(simple_hammock_program):
    candidates = find_meld_candidates(
        simple_hammock_program, MELD_MAX_SIDE_INSTS
    )
    kinds = {c.kind for c in candidates}
    assert "diamond" in kinds
    diamond = next(c for c in candidates if c.kind == "diamond")
    instructions = simple_hammock_program.instructions
    assert instructions[diamond.branch_pc].op in (
        Opcode.BEQZ, Opcode.BNEZ
    )
    # Both sides are nonempty and disjoint, join strictly after both.
    then_lo, then_hi = diamond.then_range
    else_lo, else_hi = diamond.else_range
    assert then_lo < then_hi and else_lo < else_hi
    assert diamond.join_pc >= max(then_hi, else_hi)


def test_finds_one_sided_candidate():
    program = assemble(
        """
        .func main
            movi r1, 7
            bnez r1, skip
            addi r2, r2, 1
            addi r3, r3, 2
        skip:
            halt
        .endfunc
        """,
        name="one-sided",
    )
    candidates = find_meld_candidates(program, MELD_MAX_SIDE_INSTS)
    assert [c.kind for c in candidates] == ["one-sided"]
    assert candidates[0].join_pc == 4


def test_store_in_side_disqualifies():
    program = assemble(
        """
        .func main
            movi r1, 7
            bnez r1, skip
            st r2, 0(r1)
        skip:
            halt
        .endfunc
        """,
        name="store-side",
    )
    assert find_meld_candidates(program, MELD_MAX_SIDE_INSTS) == []


def test_external_entry_disqualifies():
    # The jmp from outside lands mid-hammock, so predicating the side
    # would change that path's behaviour.
    program = assemble(
        """
        .func main
            movi r1, 1
            bnez r1, over
            jmp inside
        over:
            bnez r1, skip
            addi r2, r2, 1
        inside:
            addi r3, r3, 1
        skip:
            halt
        .endfunc
        """,
        name="external-entry",
    )
    pcs = [c.branch_pc for c in find_meld_candidates(
        program, MELD_MAX_SIDE_INSTS
    )]
    assert 3 not in pcs


def test_side_size_bound_respected(simple_hammock_program):
    assert find_meld_candidates(simple_hammock_program, 0) == []


# -- rewrite semantics --------------------------------------------------------


def test_meld_preserves_architectural_state(simple_hammock_program):
    candidates = find_meld_candidates(
        simple_hammock_program, MELD_MAX_SIDE_INSTS
    )
    result = apply_meld(simple_hammock_program, candidates)
    assert result.changed
    memory = {i: i % 2 for i in range(100)}
    original, melded = _run_states(
        simple_hammock_program, result.program, memory=memory
    )
    assert original.regs == melded.regs
    assert original.memory == melded.memory


def test_melded_program_has_no_hammock_branch(simple_hammock_program):
    candidates = find_meld_candidates(
        simple_hammock_program, MELD_MAX_SIDE_INSTS
    )
    result = apply_meld(simple_hammock_program, candidates)
    melded_pcs = set(result.melded)
    assert melded_pcs == {c.branch_pc for c in candidates}
    # The removed branch pcs are absent from the surviving-pc map...
    assert not melded_pcs & set(result.pc_map)
    # ...and every surviving instruction keeps its identity.
    for old_pc, new_pc in result.pc_map.items():
        old = simple_hammock_program.instructions[old_pc]
        new = result.program.instructions[new_pc]
        assert old.op is new.op
        assert (old.dest, old.src1, old.src2) == (
            new.dest, new.src1, new.src2
        )
    # CMOV select instructions were spliced in.
    ops = [inst.op for inst in result.program.instructions]
    assert Opcode.CMOV in ops


def test_inverse_pc_map_is_bijective(simple_hammock_program):
    result = apply_meld(
        simple_hammock_program,
        find_meld_candidates(simple_hammock_program, MELD_MAX_SIDE_INSTS),
    )
    inverse = result.inverse_pc_map()
    assert len(inverse) == len(result.pc_map)
    for old_pc, new_pc in result.pc_map.items():
        assert inverse[new_pc] == old_pc


def test_not_enough_scratch_registers_skips():
    # Reference every register except r0 so the scratch pool is empty;
    # the hammock is structurally meldable but must be left alone.
    builder = ProgramBuilder()
    builder.begin_function("main")
    for reg in range(1, NUM_REGISTERS):
        builder.movi(reg, reg)
    builder.bnez(1, "skip")
    builder.addi(2, 2, 1)
    builder.label("skip")
    builder.halt()
    builder.end_function()
    program = builder.build()
    candidates = find_meld_candidates(program, MELD_MAX_SIDE_INSTS)
    assert candidates
    result = apply_meld(program, candidates)
    assert not result.changed
    assert result.program is program


def test_nested_hammock_equivalence(nested_hammock_program):
    result = apply_meld(
        nested_hammock_program,
        find_meld_candidates(nested_hammock_program, MELD_MAX_SIDE_INSTS),
    )
    memory = {i: (i * 7) % 3 for i in range(100)}
    original, melded = _run_states(
        nested_hammock_program, result.program, memory=memory
    )
    assert original.regs == melded.regs
    assert original.memory == melded.memory


# -- selection / profile interaction ------------------------------------------


def _artifacts(name, scale=0.2):
    from repro.experiments.runner import get_artifacts

    return get_artifacts(name, scale=scale)


def test_select_short_requires_profile_heat():
    artifacts = _artifacts("vpr")
    config = resolve("meld")
    short = select_meld_candidates(
        artifacts.program, artifacts.profile,
        config.effective_thresholds, mode="short",
    )
    everything = select_meld_candidates(
        artifacts.program, artifacts.profile,
        config.effective_thresholds, mode="all",
    )
    assert {c.branch_pc for c in short} <= {
        c.branch_pc for c in everything
    }
    for candidate in short:
        assert artifacts.profile.branch_profile.exec_count(
            candidate.branch_pc
        ) > 0


def test_profile_remap_drops_melded_branches():
    artifacts = _artifacts("vpr")
    config = resolve("meld")
    state = run_selection_pipeline(
        artifacts.program, artifacts.profile, config
    )
    assert state.transform is not None and state.transform.changed
    # The pipeline's melded profile lost exactly the removed branches'
    # executions from its branch totals.
    remapped = artifacts.profile.remapped(state.transform.pc_map)
    dropped = sum(
        artifacts.profile.branch_profile.exec_count(pc)
        for pc in state.transform.melded
    )
    assert remapped.total_branches == (
        artifacts.profile.total_branches - dropped
    )
    assert remapped.total_instructions == artifacts.profile.total_instructions
    for pc in state.transform.melded:
        assert pc not in remapped.edge_profile.executed_branch_pcs()


def test_meld_preset_yields_empty_annotation():
    artifacts = _artifacts("vpr")
    state = run_selection_pipeline(
        artifacts.program, artifacts.profile, resolve("meld")
    )
    assert len(state.annotation) == 0
    assert state.transform is not None


def test_combined_annotation_pcs_in_melded_program():
    artifacts = _artifacts("vpr")
    state = run_selection_pipeline(
        artifacts.program, artifacts.profile,
        resolve("meld+all-best-heur"),
    )
    assert state.transform is not None
    program = state.transform.program
    melded_new_pcs = {
        record.new_pc for record in state.transform.melded.values()
    }
    for branch in state.annotation:
        inst = program.instructions[branch.branch_pc]
        assert inst.op in (Opcode.BEQZ, Opcode.BNEZ)
        assert branch.branch_pc not in melded_new_pcs


def test_run_selection_refuses_meld_configs():
    from repro.experiments.runner import run_selection

    with pytest.raises(ValueError, match="meldcompare"):
        run_selection("vpr", resolve("meld"), scale=0.2)


def test_meld_pass_ledger_attribution():
    from repro.obs.ledger import SelectionLedger

    artifacts = _artifacts("vpr")
    ledger = SelectionLedger()
    state = run_selection_pipeline(
        artifacts.program, artifacts.profile, resolve("meld"),
        ledger=ledger,
    )
    melded_decisions = [
        d for d in ledger.decisions if d.reason == "melded"
    ]
    assert sorted(d.branch_pc for d in melded_decisions) == sorted(
        state.transform.melded
    )
    for decision in melded_decisions:
        assert decision.pass_name == MeldPass.name
        assert decision.rule.startswith("meld:short:")


# -- suite-wide architectural-equivalence battery -----------------------------


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_melded_program_architecturally_identical(name):
    """meld:all on every workload: halt + bit-identical final state."""
    from repro.experiments.meldcompare import (
        MELD_BUDGET_FACTOR,
        assert_equivalent,
    )

    workload = load_benchmark(name, scale=0.2)
    program = workload.program
    candidates = find_meld_candidates(program, MELD_MAX_SIDE_INSTS)
    result = apply_meld(program, candidates)
    _, original = execute(
        program, memory=dict(workload.memory),
        max_instructions=workload.max_instructions,
    )
    assert original.halted
    if not result.changed:
        return
    _, melded = execute(
        result.program, memory=dict(workload.memory),
        max_instructions=workload.max_instructions * MELD_BUDGET_FACTOR,
    )
    assert melded.halted
    assert_equivalent(name, original.state, melded.state)


# -- comparison driver, CLI --diff, campaign cell -----------------------------


def test_meldcompare_driver_structure():
    from repro.experiments import meldcompare

    result = meldcompare.run(scale=0.2, benchmarks=["vpr"], jobs=1)
    assert result["series"] == list(meldcompare.SERIES)
    for label in ("baseline",) + meldcompare.SERIES:
        assert result["ipc"][label]["vpr"] > 0
    claims = result["claims"]["vpr"]
    melded, dpred = set(claims["melded"]), set(claims["dpred"])
    assert set(claims["contested"]) == melded & dpred
    assert set(claims["meld_only"]) == melded - dpred
    assert set(claims["dpred_only"]) == dpred - melded
    assert set(claims["combined_melded"]) == melded
    # Whatever dpred still claims after melding is a subset of what it
    # claimed before (melding only removes candidates).
    assert set(claims["combined_dpred"]) <= dpred
    text = meldcompare.format_result(result)
    assert "static-meld" in text and "Hammock attribution" in text


def test_meldcompare_work_speedup_is_cycle_ratio():
    from repro.experiments.meldcompare import work_speedup
    from repro.uarch.stats import SimStats

    baseline = SimStats(cycles=1000, retired_instructions=1000)
    melded = SimStats(cycles=800, retired_instructions=1400)
    assert work_speedup(melded, baseline) == pytest.approx(0.25)
    # IPC-based speedup_over would overstate it badly.
    assert melded.speedup_over(baseline) > 0.25


def test_meld_campaign_cell_dispatch():
    from repro.experiments.meldcompare import meld_cell

    base = {"benchmark": "vpr", "input_set": "reduced", "scale": 0.2,
            "thresholds": {}, "processor": {},
            "cell": "repro.experiments.meldcompare:meld_cell"}
    melded = meld_cell(dict(base, selection="meld+all-best-heur"))
    assert melded["melded_branches"] > 0
    assert melded["diverge_branches"] > 0
    assert melded["ledger"]["consistent"]
    # Non-meld selections fall through to the default cell (no
    # melded_branches key, same payload shape).
    plain = meld_cell(dict(base, selection="all-best-heur"))
    assert "melded_branches" not in plain
    assert plain["speedup"] != 0


def test_meld_campaign_spec_registered():
    from repro.campaign.cli import builtin_specs
    from repro.experiments.meldcompare import campaign_spec

    assert "meld" in builtin_specs()
    spec = campaign_spec(scale=0.2, benchmarks=["vpr"])
    cells = spec.cells()
    assert [c.params["selection"] for c in cells] == [
        "meld", "all-best-heur", "meld+all-best-heur"
    ]
    assert all(
        c.params["cell"] == "repro.experiments.meldcompare:meld_cell"
        for c in cells
    )


def test_compile_cli_diff_flag(capsys):
    from repro.compiler.cli import main

    assert main([
        "--benchmark", "vpr", "--scale", "0.2", "--config", "meld",
        "-o", "/dev/null", "--diff",
    ]) == 0
    out = capsys.readouterr().out
    assert "--- vpr (original)" in out
    assert "+++ vpr (transformed)" in out
    assert "cmov" in out
    assert "# melded" in out


def test_compile_cli_diff_flag_annotation_only(capsys):
    from repro.compiler.cli import main

    assert main([
        "--benchmark", "vpr", "--scale", "0.2",
        "--config", "all-best-heur", "-o", "/dev/null", "--diff",
    ]) == 0
    assert "annotation-only pipeline" in capsys.readouterr().out
