"""Tests for extensions beyond the paper's core: the §8.3 easy-branch
filter, the CLI entry point, and the ablation harness."""

import pytest

from repro.core import SelectionConfig, select_diverge_branches
from repro.experiments import ablations
from repro.profiling import Profiler
from repro.workloads import load_benchmark
from repro import __main__ as cli


@pytest.fixture(scope="module")
def artifacts():
    workload = load_benchmark("gap", scale=0.2)
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    return workload.program, profile


class TestEasyBranchFilter:
    def test_floor_shrinks_selection(self, artifacts):
        program, profile = artifacts
        loose = select_diverge_branches(
            program, profile, SelectionConfig()
        )
        strict = select_diverge_branches(
            program, profile, SelectionConfig(min_misp_rate=0.05)
        )
        assert len(strict) <= len(loose)

    def test_survivors_exceed_floor(self, artifacts):
        program, profile = artifacts
        floor = 0.05
        annotation = select_diverge_branches(
            program,
            profile,
            SelectionConfig(min_misp_rate=floor),
        )
        for branch in annotation:
            rate = profile.branch_profile.misprediction_rate(
                branch.branch_pc
            )
            assert rate >= floor

    def test_zero_floor_is_identity(self, artifacts):
        program, profile = artifacts
        a = select_diverge_branches(
            program, profile, SelectionConfig(min_misp_rate=0.0)
        )
        b = select_diverge_branches(program, profile, SelectionConfig())
        assert {x.branch_pc for x in a} == {x.branch_pc for x in b}


class TestAblationHarness:
    def test_acc_conf_sweep(self):
        result = ablations.run_acc_conf(
            scale=0.15, benchmarks=["twolf"], values=(0.2, 0.4)
        )
        assert set(result["means"]) == {"acc=0.20", "acc=0.40"}
        assert "Ablation" in ablations.format_result(result)

    def test_max_cfm_sweep(self):
        result = ablations.run_max_cfm(
            scale=0.15, benchmarks=["twolf"], values=(1, 3)
        )
        assert len(result["means"]) == 2

    def test_easy_filter_sweep(self):
        result = ablations.run_easy_branch_filter(
            scale=0.15, benchmarks=["twolf"], floors=(0.0, 0.05)
        )
        assert len(result["means"]) == 2


class TestCLI:
    def test_table1(self, capsys):
        assert cli.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_figure_with_subset(self, capsys):
        assert cli.main(
            ["fig10", "--scale", "0.15", "--benchmarks", "twolf"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "twolf" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])


class TestCLICoverage:
    def test_coverage_artifact(self, capsys):
        assert cli.main(
            ["coverage", "--scale", "0.15", "--benchmarks", "li"]
        ) == 0
        out = capsys.readouterr().out
        assert "Misprediction coverage" in out

    def test_chart_flag(self, capsys):
        assert cli.main(
            ["fig10", "--scale", "0.15", "--benchmarks", "li", "--chart"]
        ) == 0


class TestPerAppAccConf:
    def test_measured_acc_conf_changes_selection_params(self, artifacts):
        from dataclasses import replace

        from repro.core import DivergeSelector

        program, profile = artifacts
        fixed = SelectionConfig.all_best_cost()
        per_app = replace(fixed, per_app_acc_conf=True)
        a = DivergeSelector(program, profile, fixed).select()
        b = DivergeSelector(program, profile, per_app).select()
        # both produce valid annotations; with gap's low measured
        # Acc_Conf the per-app model is more conservative
        assert len(b) <= len(a)

    def test_zero_measured_accuracy_falls_back(self, artifacts):
        from dataclasses import replace

        from repro.core import DivergeSelector

        program, profile = artifacts
        profile_copy = profile
        saved = profile_copy.measured_acc_conf
        try:
            profile_copy.measured_acc_conf = 0.0
            per_app = replace(
                SelectionConfig.all_best_cost(), per_app_acc_conf=True
            )
            annotation = DivergeSelector(
                program, profile_copy, per_app
            ).select()
            assert annotation is not None
        finally:
            profile_copy.measured_acc_conf = saved
