"""End-to-end DivergeSelector tests across configurations."""

import pytest

from repro.core import (
    DivergeKind,
    DivergeSelector,
    SelectionConfig,
    select_diverge_branches,
)
from repro.profiling import Profiler
from repro.workloads import load_benchmark


@pytest.fixture(scope="module")
def twolf_artifacts():
    workload = load_benchmark("twolf", scale=0.6)
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    return workload.program, profile


class TestConfigurations:
    def test_exact_only_excludes_frequently(self, twolf_artifacts):
        program, profile = twolf_artifacts
        annotation = select_diverge_branches(
            program, profile, SelectionConfig(enable_freq=False)
        )
        assert not annotation.branches_of_kind(
            DivergeKind.FREQUENTLY_HAMMOCK
        )

    def test_freq_adds_frequently_hammocks(self, twolf_artifacts):
        program, profile = twolf_artifacts
        annotation = select_diverge_branches(
            program, profile, SelectionConfig()
        )
        assert annotation.branches_of_kind(DivergeKind.FREQUENTLY_HAMMOCK)

    def test_all_best_heur_has_every_mechanism(self, twolf_artifacts):
        program, profile = twolf_artifacts
        annotation = select_diverge_branches(
            program, profile, SelectionConfig.all_best_heur()
        )
        assert any(b.always_predicate for b in annotation)
        assert any(b.has_return_cfm for b in annotation)

    def test_cumulative_configs_grow_selection(self, twolf_artifacts):
        program, profile = twolf_artifacts
        sizes = []
        for config in (
            SelectionConfig(enable_freq=False),
            SelectionConfig(),
            SelectionConfig(enable_short=True, enable_return_cfm=True),
            SelectionConfig.all_best_heur(),
        ):
            sizes.append(
                len(select_diverge_branches(program, profile, config))
            )
        assert sizes == sorted(sizes)

    def test_no_duplicate_marks(self, twolf_artifacts):
        program, profile = twolf_artifacts
        annotation = select_diverge_branches(
            program, profile, SelectionConfig.all_best_heur()
        )
        pcs = [b.branch_pc for b in annotation]
        assert len(pcs) == len(set(pcs))

    def test_all_marks_are_conditional_branches(self, twolf_artifacts):
        program, profile = twolf_artifacts
        annotation = select_diverge_branches(
            program, profile, SelectionConfig.all_best_heur()
        )
        for branch in annotation:
            assert program[branch.branch_pc].is_conditional_branch


class TestCostModelMode:
    def test_cost_mode_produces_reports(self, twolf_artifacts):
        program, profile = twolf_artifacts
        selector = DivergeSelector(
            program, profile, SelectionConfig.all_best_cost()
        )
        annotation = selector.select()
        assert selector.cost_reports
        assert len(annotation) > 0
        # every selected non-short, non-loop mark had a negative cost
        selected_pcs = {
            b.branch_pc
            for b in annotation
            if not b.always_predicate and b.kind is not DivergeKind.LOOP
        }
        negative = {
            r.branch_pc for r in selector.cost_reports if r.selected
        }
        assert selected_pcs <= negative

    def test_cost_long_vs_edge_both_work(self, twolf_artifacts):
        program, profile = twolf_artifacts
        for method in ("long", "edge"):
            annotation = select_diverge_branches(
                program,
                profile,
                SelectionConfig(cost_model=method, name=f"cost-{method}"),
            )
            assert len(annotation) > 0

    def test_cost_mode_rejects_splits(self, twolf_artifacts):
        # twolf contains a "split" region (~110-inst sides) that the
        # cost model must reject.
        program, profile = twolf_artifacts
        selector = DivergeSelector(
            program, profile, SelectionConfig(cost_model="edge")
        )
        selector.select()
        rejected = [r for r in selector.cost_reports if not r.selected]
        assert rejected

    def test_loop_reports_populated(self, twolf_artifacts):
        program, profile = twolf_artifacts
        selector = DivergeSelector(
            program, profile, SelectionConfig.all_best_heur()
        )
        selector.select()
        # twolf has no diverge loops but the pass still ran; use gzip
        workload = load_benchmark("gzip", scale=0.3)
        profile2 = Profiler().profile(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        )
        selector2 = DivergeSelector(
            workload.program, profile2, SelectionConfig.all_best_heur()
        )
        annotation = selector2.select()
        assert selector2.loop_reports
        assert annotation.branches_of_kind(DivergeKind.LOOP)


class TestSelectRegisters:
    def test_hammock_select_registers_written_inside(self, twolf_artifacts):
        program, profile = twolf_artifacts
        annotation = select_diverge_branches(
            program, profile, SelectionConfig()
        )
        for branch in annotation:
            if branch.kind is DivergeKind.LOOP or branch.has_return_cfm:
                continue
            # every select register is written by some instruction
            # between the branch and its furthest CFM
            assert all(0 < reg < 64 for reg in branch.select_registers)
