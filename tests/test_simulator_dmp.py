"""DMP-mode timing-simulator tests."""

import random

import pytest

from repro.core import (
    BinaryAnnotation,
    CFMKind,
    CFMPoint,
    DivergeBranch,
    DivergeKind,
    SelectionConfig,
    select_diverge_branches,
)
from repro.emulator import execute
from repro.isa import assemble
from repro.profiling import Profiler
from repro.uarch import simulate


HAMMOCK = """
.func main
    movi r1, 0
    movi r2, 500
loop:
    cmpge r4, r1, r2
    bnez r4, done
    ld r3, 0(r1)
    bnez r3, then
    addi r6, r6, 1
    addi r6, r6, 2
    jmp merge
then:
    addi r7, r7, 1
    addi r7, r7, 2
merge:
    addi r8, r8, 1
    addi r1, r1, 1
    jmp loop
done:
    halt
.endfunc
"""

HAMMOCK_BRANCH = 5
HAMMOCK_MERGE = 11


def hammock_setup(seed=1):
    program = assemble(HAMMOCK)
    rng = random.Random(seed)
    memory = {i: rng.randrange(2) for i in range(500)}
    trace, _ = execute(program, memory=memory)
    return program, trace


def hammock_annotation(always=False):
    return BinaryAnnotation(
        "h",
        [
            DivergeBranch(
                branch_pc=HAMMOCK_BRANCH,
                kind=DivergeKind.SIMPLE_HAMMOCK,
                cfm_points=(
                    CFMPoint(pc=HAMMOCK_MERGE, kind=CFMKind.EXACT),
                ),
                select_registers=frozenset({6, 7}),
                always_predicate=always,
            )
        ],
    )


class TestHammockEpisodes:
    def test_dpred_avoids_flushes_and_speeds_up(self):
        program, trace = hammock_setup()
        base = simulate(program, trace, label="base")
        dmp = simulate(program, trace, annotation=hammock_annotation(),
                       label="dmp")
        assert dmp.dpred_episodes > 0
        assert dmp.dpred_flushes_avoided > 0
        assert dmp.pipeline_flushes < base.pipeline_flushes
        assert dmp.ipc > base.ipc

    def test_episodes_merge_at_cfm(self):
        program, trace = hammock_setup()
        dmp = simulate(program, trace, annotation=hammock_annotation())
        assert dmp.merge_rate > 0.9
        assert dmp.dpred_select_uops > 0
        assert dmp.dpred_wrong_path_insts > 0

    def test_always_predicate_enters_more_episodes(self):
        program, trace = hammock_setup()
        gated = simulate(program, trace, annotation=hammock_annotation())
        always = simulate(
            program, trace, annotation=hammock_annotation(always=True)
        )
        assert always.dpred_episodes >= gated.dpred_episodes
        # always-predication covers every misprediction of the branch
        assert always.pipeline_flushes <= gated.pipeline_flushes

    def test_mispredictions_still_counted(self):
        program, trace = hammock_setup()
        base = simulate(program, trace)
        dmp = simulate(program, trace, annotation=hammock_annotation())
        # DMP avoids flushes, not mispredictions
        assert dmp.mispredictions == base.mispredictions

    def test_baseline_ignores_annotation_when_none(self):
        program, trace = hammock_setup()
        stats = simulate(program, trace, annotation=None)
        assert stats.dpred_episodes == 0


class TestDualPath:
    def test_cfm_less_mark_degrades_to_dual_path(self):
        program, trace = hammock_setup()
        annotation = BinaryAnnotation(
            "h",
            [
                DivergeBranch(
                    branch_pc=HAMMOCK_BRANCH,
                    kind=DivergeKind.FREQUENTLY_HAMMOCK,
                    cfm_points=(),
                )
            ],
        )
        base = simulate(program, trace)
        dmp = simulate(program, trace, annotation=annotation)
        assert dmp.dpred_episodes > 0
        assert dmp.dpred_episodes_merged == 0
        # dual-path still avoids flushes for covered mispredictions
        assert dmp.pipeline_flushes < base.pipeline_flushes


LOOP = """
.func main
    movi r1, 0
    movi r2, 400
outer:
    cmpge r4, r1, r2
    bnez r4, done
    ld r3, 0(r1)
inner:
    addi r5, r5, 1
    addi r3, r3, -1
    bnez r3, inner
    addi r6, r6, 1
    addi r1, r1, 1
    jmp outer
done:
    halt
.endfunc
"""

LOOP_LATCH = 7


def loop_setup():
    program = assemble(LOOP)
    rng = random.Random(3)
    # geometric-ish trips, mean ~3: unpredictable exits
    memory = {}
    for i in range(400):
        trips = 1
        while trips < 12 and rng.random() > 1 / 3:
            trips += 1
        memory[i] = trips
    trace, _ = execute(program, memory=memory)
    return program, trace


def loop_annotation():
    return BinaryAnnotation(
        "l",
        [
            DivergeBranch(
                branch_pc=LOOP_LATCH,
                kind=DivergeKind.LOOP,
                cfm_points=(
                    CFMPoint(pc=LOOP_LATCH + 1, kind=CFMKind.LOOP_EXIT),
                ),
                select_registers=frozenset({3, 5}),
                loop_direction=True,
                loop_body_size=3,
            )
        ],
    )


class TestLoopEpisodes:
    def test_loop_dpred_avoids_exit_flushes(self):
        program, trace = loop_setup()
        base = simulate(program, trace)
        dmp = simulate(program, trace, annotation=loop_annotation())
        assert dmp.dpred_episodes_loop > 0
        assert dmp.dpred_flushes_avoided > 0
        assert dmp.pipeline_flushes < base.pipeline_flushes
        assert dmp.ipc > base.ipc

    def test_loop_selects_charged(self):
        program, trace = loop_setup()
        dmp = simulate(program, trace, annotation=loop_annotation())
        assert dmp.dpred_select_uops > 0


class TestEndToEndPipeline:
    def test_selection_to_simulation(self):
        program = assemble(HAMMOCK)
        rng = random.Random(1)
        memory = {i: rng.randrange(2) for i in range(500)}
        profile = Profiler().profile(program, memory=memory)
        annotation = select_diverge_branches(
            program, profile, SelectionConfig.all_best_heur()
        )
        assert annotation.is_diverge(HAMMOCK_BRANCH)
        trace, _ = execute(program, memory=memory)
        base = simulate(program, trace)
        dmp = simulate(program, trace, annotation=annotation)
        assert dmp.ipc > base.ipc
