"""Tests for per-branch stats collection and the coverage report."""

import pytest

from repro.core import SelectionConfig
from repro.experiments import coverage
from repro.experiments.runner import get_artifacts
from repro.uarch import TimingSimulator


class TestPerBranchStats:
    def test_disabled_by_default(self):
        artifacts = get_artifacts("li", scale=0.15)
        stats = TimingSimulator(artifacts.program).run(artifacts.trace)
        assert stats.per_branch == {}

    def test_counters_consistent_with_aggregates(self):
        artifacts = get_artifacts("li", scale=0.15)
        simulator = TimingSimulator(
            artifacts.program, collect_per_branch=True
        )
        stats = simulator.run(artifacts.trace)
        per = stats.per_branch
        assert sum(c["executions"] for c in per.values()) == \
            stats.conditional_branches
        assert sum(c["mispredictions"] for c in per.values()) == \
            stats.mispredictions
        assert sum(c["flushes"] for c in per.values()) == \
            stats.pipeline_flushes

    def test_dmp_counters(self):
        from repro.core import select_diverge_branches

        artifacts = get_artifacts("li", scale=0.15)
        annotation = select_diverge_branches(
            artifacts.program,
            artifacts.profile,
            SelectionConfig.all_best_heur(),
        )
        simulator = TimingSimulator(
            artifacts.program,
            annotation=annotation,
            collect_per_branch=True,
        )
        stats = simulator.run(artifacts.trace)
        per = stats.per_branch
        assert sum(c["episodes"] for c in per.values()) == \
            stats.dpred_episodes
        assert sum(c["flushes_avoided"] for c in per.values()) == \
            stats.dpred_flushes_avoided
        # avoided + taken flushes cannot exceed mispredictions
        for counters in per.values():
            assert (
                counters["flushes_avoided"] + counters["flushes"]
                <= counters["mispredictions"] + 1
            )


class TestCoverageReport:
    def test_report_structure(self):
        result = coverage.run("li", scale=0.15, top=5)
        assert result["benchmark"] == "li"
        assert len(result["rows"]) <= 5
        assert 0.0 <= result["coverage"] <= 1.0
        for row in result["rows"]:
            assert 0.0 <= row["coverage"] <= 1.0

    def test_report_renders(self):
        result = coverage.run("li", scale=0.15, top=5)
        text = coverage.format_result(result)
        assert "Misprediction coverage" in text
        assert "Total:" in text

    def test_marked_branches_have_coverage(self):
        result = coverage.run("twolf", scale=0.2, top=20)
        marked = [r for r in result["rows"]
                  if r["marked"] != "-" and r["mispredictions"] > 3]
        unmarked = [r for r in result["rows"] if r["marked"] == "-"]
        # some marked branch covers most of its mispredictions...
        assert marked and max(r["coverage"] for r in marked) > 0.5
        # ...and unmarked branches cover none
        assert all(r["coverage"] == 0.0 for r in unmarked)
