"""The serving daemon: byte-identity with the CLIs, single-flight
coalescing, the HTTP surface, engine resolution under threads, and
graceful shutdown."""

import contextlib
import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import __main__ as repro_main
from repro.campaign.spec import DEFAULT_CELL, content_hash, run_cell
from repro.obs.context import telemetry
from repro.obs.explain import validate_explain
from repro.serve.app import ServeApp, SingleFlight
from repro.serve.daemon import build_server

SCALE = 0.1
BENCH = "gzip"

SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "docs", "schemas",
    "simulate.schema.json",
)


def _cli_stdout(argv):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        status = repro_main.main(argv)
    assert status == 0
    return buffer.getvalue()


@pytest.fixture
def app():
    application = ServeApp()
    with telemetry(metrics=application.registry):
        yield application


class TestByteIdentity:
    def test_compile_matches_cli(self, app):
        status, body = app.handle("compile", {
            "benchmark": BENCH, "scale": SCALE,
            "config": "all-best-heur",
        })
        assert status == 200
        cli = _cli_stdout(["compile", "--benchmark", BENCH,
                           "--scale", str(SCALE),
                           "--config", "all-best-heur"])
        assert body == cli.encode("utf-8")

    def test_compile_pipeline_spelling_matches_cli(self, app):
        spec = "exact,freq,short,ret,loop,cost:edge"
        status, body = app.handle("compile", {
            "benchmark": BENCH, "scale": SCALE, "pipeline": spec,
        })
        assert status == 200
        cli = _cli_stdout(["compile", "--benchmark", BENCH,
                           "--scale", str(SCALE), "--pipeline", spec])
        assert body == cli.encode("utf-8")

    def test_explain_matches_cli_json(self, app):
        status, body = app.handle("explain", {
            "workload": BENCH, "scale": SCALE,
            "config": "All-best-cost",  # CLI is case-insensitive
        })
        assert status == 200
        cli = _cli_stdout(["explain", BENCH, "--scale", str(SCALE),
                           "--config", "All-best-cost", "--json"])
        assert body == cli.encode("utf-8")

    def test_simulate_matches_campaign_cell(self, app):
        status, body = app.handle("simulate", {
            "benchmark": BENCH, "scale": SCALE,
            "selection": "all-best-heur",
        })
        assert status == 200
        data = json.loads(body)
        params = {
            "benchmark": BENCH, "input_set": "reduced",
            "scale": SCALE, "selection": "all-best-heur",
            "thresholds": {}, "processor": {}, "cell": DEFAULT_CELL,
        }
        assert data["cell_id"] == content_hash(params)
        expected = run_cell(params)
        expected.pop("ledger", None)
        assert data["result"] == expected

    def test_simulate_response_matches_pinned_schema(self, app):
        status, body = app.handle("simulate", {
            "benchmark": BENCH, "scale": SCALE,
        })
        assert status == 200
        with open(SCHEMA_PATH, encoding="utf-8") as handle:
            schema = json.load(handle)
        assert validate_explain(json.loads(body), schema) == []


class TestValidation:
    def test_unknown_fields_are_rejected(self, app):
        status, body = app.handle("simulate", {
            "benchmark": BENCH, "scale": SCALE, "bogus": 1,
        })
        assert status == 400
        assert "bogus" in json.loads(body)["error"]

    def test_missing_benchmark_is_rejected(self, app):
        status, body = app.handle("compile", {"scale": SCALE})
        assert status == 400
        assert "benchmark" in json.loads(body)["error"]

    def test_unknown_benchmark_is_a_client_error(self, app):
        status, body = app.handle("compile", {
            "benchmark": "no-such-benchmark", "scale": SCALE,
        })
        assert status == 400

    def test_config_and_pipeline_conflict(self, app):
        status, body = app.handle("compile", {
            "benchmark": BENCH, "config": "all-best-heur",
            "pipeline": "exact",
        })
        assert status == 400

    def test_unknown_endpoint_is_404(self, app):
        status, _ = app.handle("transmogrify", {})
        assert status == 404

    def test_errors_are_counted(self, app):
        app.handle("compile", {"scale": SCALE})
        assert app.registry.get("serve_errors_total").value >= 1


class TestSingleFlight:
    def test_concurrent_identical_calls_coalesce(self):
        flight = SingleFlight()
        release = threading.Event()
        entered = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            entered.set()
            release.wait(timeout=5)
            return b"payload"

        outcomes = []

        def leader():
            outcomes.append(flight.do("k", compute))

        def follower():
            entered.wait(timeout=5)
            outcomes.append(flight.do("k", compute))

        threads = [threading.Thread(target=leader)]
        threads += [threading.Thread(target=follower)
                    for _ in range(3)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=5)
        time.sleep(0.05)  # let the followers park on the event
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(calls) == 1
        assert sorted(c for _, c in outcomes) == [False, True, True, True]
        assert all(result == b"payload" for result, _ in outcomes)

    def test_leader_error_propagates_to_followers(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def compute():
            entered.set()
            release.wait(timeout=5)
            raise RuntimeError("boom")

        errors = []

        def leader():
            try:
                flight.do("k", compute)
            except RuntimeError as exc:
                errors.append(str(exc))

        def follower():
            entered.wait(timeout=5)
            try:
                flight.do("k", compute)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=leader),
                   threading.Thread(target=follower)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=5)
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert errors == ["boom", "boom"]

    def test_sequential_calls_do_not_coalesce(self):
        flight = SingleFlight()
        _, coalesced_first = flight.do("k", lambda: 1)
        _, coalesced_second = flight.do("k", lambda: 2)
        assert not coalesced_first
        assert not coalesced_second

    def test_coalesced_requests_increment_the_counter(
            self, app, monkeypatch):
        entered = threading.Event()
        release = threading.Event()

        def slow_simulate(params, cell_id):
            entered.set()
            release.wait(timeout=5)
            return b"{}\n"

        monkeypatch.setattr(
            "repro.serve.app._simulate_bytes", slow_simulate
        )
        body = {"benchmark": BENCH, "scale": SCALE}
        results = []

        def request():
            results.append(app.handle("simulate", dict(body)))

        leader = threading.Thread(target=request)
        leader.start()
        entered.wait(timeout=5)
        follower = threading.Thread(target=request)
        follower.start()
        time.sleep(0.05)
        release.set()
        leader.join(timeout=5)
        follower.join(timeout=5)
        assert [status for status, _ in results] == [200, 200]
        assert results[0][1] == results[1][1]
        assert app.registry.get("serve_coalesced_total").value == 1
        assert app.registry.get("serve_requests_total").value == 2


class TestHTTP:
    @pytest.fixture
    def server(self, app):
        srv = build_server(("127.0.0.1", 0), app)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def _post(self, server, endpoint, body):
        request = urllib.request.Request(
            self._url(server, f"/v1/{endpoint}"),
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def test_compile_over_http_matches_cli(self, server):
        status, body = self._post(server, "compile", {
            "benchmark": BENCH, "scale": SCALE,
        })
        assert status == 200
        cli = _cli_stdout(["compile", "--benchmark", BENCH,
                           "--scale", str(SCALE)])
        assert body == cli.encode("utf-8")

    def test_healthz_reports_warm_state(self, server):
        with urllib.request.urlopen(
                self._url(server, "/healthz")) as response:
            assert response.status == 200
            data = json.loads(response.read())
        assert data["status"] == "ok"
        assert "entries" in data["analysis_cache"]
        assert "entries" in data["artifact_cache"]

    def test_metrics_renders_openmetrics(self, server):
        self._post(server, "compile", {
            "benchmark": BENCH, "scale": SCALE,
        })
        with urllib.request.urlopen(
                self._url(server, "/metrics")) as response:
            assert response.status == 200
            text = response.read().decode("utf-8")
        assert "serve_requests_total" in text
        assert "serve_compile_latency_seconds_count" in text
        assert text.endswith("# EOF\n")

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            self._url(server, "/v1/simulate"),
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(self._url(server, "/nope"))
        assert excinfo.value.code == 404


class TestEngineResolution:
    """Per-request overrides are thread-local; env/process defaults
    behave identically to the CLI path (PR 7 precedence)."""

    def test_engine_override_is_thread_local(self):
        from repro.uarch.engine import engine_override, get_default_engine

        barrier = threading.Barrier(2, timeout=5)
        seen = {}

        def worker(name, engine):
            with engine_override(engine):
                barrier.wait()
                seen[name] = get_default_engine()
                barrier.wait()

        threads = [
            threading.Thread(target=worker, args=("a", "scalar")),
            threading.Thread(target=worker, args=("b", "vectorized")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert seen == {"a": "scalar", "b": "vectorized"}

    def test_env_default_reaches_request_threads(self, monkeypatch):
        from repro.uarch.engine import get_default_engine

        monkeypatch.setattr("repro.uarch.engine._default_engine", None)
        monkeypatch.setenv("REPRO_SIM_ENGINE", "scalar")
        result = {}

        def worker():
            result["engine"] = get_default_engine()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=5)
        assert result["engine"] == "scalar"

    def test_per_request_engine_does_not_change_the_bytes(self, app):
        _, scalar = app.handle("simulate", {
            "benchmark": BENCH, "scale": SCALE, "engine": "scalar",
        })
        # Engine is excluded from the coalescing key, so clear the
        # sequential-call path by asserting on a fresh app.
        other = ServeApp()
        with telemetry(metrics=other.registry):
            _, auto = other.handle("simulate", {
                "benchmark": BENCH, "scale": SCALE,
            })
        assert scalar == auto

    def test_invalid_engine_is_rejected(self, app):
        status, body = app.handle("simulate", {
            "benchmark": BENCH, "scale": SCALE, "engine": "warp",
        })
        assert status == 400


class TestDaemonProcess:
    """End-to-end: the real process drains cleanly on SIGTERM/SIGINT."""

    @pytest.mark.parametrize("signum,expected", [
        (signal.SIGTERM, 143),
        (signal.SIGINT, 130),
    ])
    def test_graceful_shutdown(self, tmp_path, signum, expected):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
            cwd=os.path.join(os.path.dirname(__file__), ".."),
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line
            port = int(line.split("http://")[1].split()[0]
                       .rsplit(":", 1)[1])
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz",
                    timeout=10) as response:
                assert response.status == 200
            process.send_signal(signum)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == expected
        assert "Traceback" not in stderr
        assert "drained and stopped" in stdout


class TestCacheInfoCLI:
    """Satellite: human-readable sizes and per-kind counts."""

    def test_format_size(self):
        from repro.exec.artifact_cache import format_size

        assert format_size(0) == "0 B"
        assert format_size(512) == "512 B"
        assert format_size(2048) == "2.0 KiB"
        assert format_size(3 * 1024 * 1024) == "3.0 MiB"
        assert format_size(5 * 1024 ** 3) == "5.0 GiB"

    def test_info_reports_kinds(self, tmp_path, monkeypatch):
        from repro.exec import artifact_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "aa.dmpart").write_bytes(b"x" * 100)
        (tmp_path / "bb.dmpart").write_bytes(b"x" * 50)
        (tmp_path / "cc.dmpart.tmp").write_bytes(b"x" * 10)
        info = artifact_cache.info()
        # The stable machine-readable contract.
        assert info["entries"] == 2
        assert info["bytes"] == 150
        assert info["kinds"]["artifact"] == {"entries": 2, "bytes": 150}
        assert info["kinds"]["tmp"] == {"entries": 1, "bytes": 10}

    def test_cache_info_cli_renders_human_sizes(self, tmp_path,
                                                monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "aa.dmpart").write_bytes(b"x" * 4096)
        assert repro_main.main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "4,096 bytes (4.0 KiB)" in out
        assert "artifact: 1 entries, 4.0 KiB" in out


class TestServeTracing:
    """Tentpole: per-request distributed tracing in the daemon."""

    @pytest.fixture
    def traced_app(self, tmp_path):
        application = ServeApp(trace_dir=str(tmp_path / "trace"))
        with telemetry(metrics=application.registry):
            yield application

    def test_meta_carries_a_fresh_trace_identity(self, traced_app):
        from repro.obs.tracectx import parse_traceparent

        status, _body, meta = traced_app.handle_request(
            "simulate", {"benchmark": BENCH, "scale": SCALE})
        assert status == 200
        assert meta["trace_id"] and len(meta["trace_id"]) == 32
        trace_id, span_id = parse_traceparent(meta["traceparent"])
        assert trace_id == meta["trace_id"]
        assert span_id is not None

    def test_request_yields_one_parented_timeline(self, traced_app):
        from repro.obs import traceview

        status, _body, meta = traced_app.handle_request(
            "simulate", {"benchmark": BENCH, "scale": SCALE})
        assert status == 200
        data = traceview.build_timeline(
            traced_app.trace_dir, meta["trace_id"])
        assert data["orphans"] == []
        assert len(data["roots"]) == 1
        names = {span["name"] for span in data["spans"]}
        assert "serve.simulate" in names
        assert traceview.validate_timeline(data) == []
        # per-span self time sums back to the request wall time
        total_self = sum(
            span["derived_self_seconds"] for span in data["spans"])
        assert total_self == pytest.approx(
            data["root_seconds"], rel=0.05, abs=0.005)

    def test_client_trace_id_is_joined(self, traced_app):
        from repro.obs.tracectx import format_traceparent, new_trace_id

        trace_id = new_trace_id()
        header = format_traceparent(trace_id, "0" * 16)
        status, _body, meta = traced_app.handle_request(
            "compile", {"benchmark": BENCH, "scale": SCALE},
            traceparent=header)
        assert status == 200
        assert meta["trace_id"] == trace_id

    def test_malformed_traceparent_roots_a_fresh_trace(self,
                                                       traced_app):
        status, _body, meta = traced_app.handle_request(
            "compile", {"benchmark": BENCH, "scale": SCALE},
            traceparent="garbage")
        assert status == 200
        assert meta["trace_id"] and meta["trace_id"] != "garbage"

    def test_trace_endpoint_returns_schema_valid_json(self,
                                                      traced_app):
        from repro.obs import traceview

        _status, _body, meta = traced_app.handle_request(
            "simulate", {"benchmark": BENCH, "scale": SCALE})
        status, body = traced_app.trace_timeline(meta["trace_id"])
        assert status == 200
        data = json.loads(body)
        assert traceview.validate_timeline(data) == []
        assert data["trace_id"] == meta["trace_id"]

    def test_trace_endpoint_unknown_id_is_404(self, traced_app):
        status, body = traced_app.trace_timeline("f" * 32)
        assert status == 404
        assert b"error" in body

    def test_trace_endpoint_404_when_tracing_off(self, app):
        status, _body = app.trace_timeline("f" * 32)
        assert status == 404

    def test_tracing_off_meta_has_no_identity(self, app):
        status, _body, meta = app.handle_request(
            "compile", {"benchmark": BENCH, "scale": SCALE})
        assert status == 200
        assert meta["trace_id"] is None
        assert meta["traceparent"] is None

    def test_traced_bytes_match_untraced(self, app, traced_app):
        body = {"benchmark": BENCH, "scale": SCALE}
        plain = app.handle("compile", dict(body))
        traced = traced_app.handle("compile", dict(body))
        assert plain == traced

    def test_coalesced_follower_records_the_leader(self, traced_app,
                                                   monkeypatch):
        entered = threading.Event()
        release = threading.Event()

        def slow_simulate(params, cell_id):
            entered.set()
            release.wait(timeout=5)
            return b"{}\n"

        monkeypatch.setattr(
            "repro.serve.app._simulate_bytes", slow_simulate
        )
        body = {"benchmark": BENCH, "scale": SCALE}
        metas = []

        def request():
            _s, _b, meta = traced_app.handle_request(
                "simulate", dict(body))
            metas.append(meta)

        leader = threading.Thread(target=request)
        leader.start()
        entered.wait(timeout=5)
        follower = threading.Thread(target=request)
        follower.start()
        time.sleep(0.05)
        release.set()
        leader.join(timeout=5)
        follower.join(timeout=5)
        by_role = {meta["coalesced"]: meta for meta in metas}
        assert set(by_role) == {True, False}
        leader_meta, follower_meta = by_role[False], by_role[True]
        assert follower_meta["leader"]["trace_id"] \
            == leader_meta["trace_id"]
        assert follower_meta["leader"]["span_id"]

    def test_http_response_echoes_the_trace_header(self, tmp_path):
        from repro.obs.tracectx import TRACE_HEADER

        application = ServeApp(trace_dir=str(tmp_path / "trace"))
        srv = build_server(("127.0.0.1", 0), application)
        thread = threading.Thread(target=srv.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            host, port = srv.server_address[:2]
            request = urllib.request.Request(
                f"http://{host}:{port}/v1/compile",
                data=json.dumps({"benchmark": BENCH,
                                 "scale": SCALE}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with telemetry(metrics=application.registry):
                with urllib.request.urlopen(request) as response:
                    assert response.status == 200
                    header = response.headers.get(TRACE_HEADER)
            assert header
            trace_id = header.split("-")[1]
            status, body = application.trace_timeline(trace_id)
            assert status == 200
            data = json.loads(body)
            assert data["orphans"] == []
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)


class TestAccessLog:
    """Satellite: one structured line per request."""

    def test_log_writes_one_json_line_per_request(self, tmp_path):
        from repro.serve.accesslog import AccessLog, read_access_log

        path = str(tmp_path / "access.jsonl")
        log = AccessLog(path)
        log.log("POST", "/v1/simulate", 200, 12.5,
                trace_id="a" * 32)
        log.log("GET", "/healthz", 200, 0.2)
        log.close()
        records = read_access_log(path)
        assert len(records) == 2
        first = records[0]
        assert first["method"] == "POST"
        assert first["path"] == "/v1/simulate"
        assert first["status"] == 200
        assert first["duration_ms"] == 12.5
        assert first["trace_id"] == "a" * 32
        assert first["coalesced"] is False
        assert records[1]["trace_id"] is None

    def test_reader_tolerates_a_torn_tail(self, tmp_path):
        from repro.serve.accesslog import AccessLog, read_access_log

        path = str(tmp_path / "access.jsonl")
        log = AccessLog(path)
        log.log("GET", "/metrics", 200, 0.1)
        log.close()
        with open(path, "a") as handle:
            handle.write('{"ts": 123, "met')
        corrupt = []
        records = read_access_log(path, corrupt=corrupt)
        assert len(records) == 1
        assert len(corrupt) == 1

    def test_app_log_access_extracts_the_leader(self, tmp_path):
        from repro.serve.accesslog import AccessLog, read_access_log

        path = str(tmp_path / "access.jsonl")
        application = ServeApp(access_log=AccessLog(path))
        application.log_access("POST", "/v1/simulate", 200, 3.0, meta={
            "trace_id": "b" * 32, "coalesced": True,
            "leader": {"trace_id": "c" * 32, "span_id": "d" * 16},
        })
        application.access.close()
        record = read_access_log(path)[0]
        assert record["trace_id"] == "b" * 32
        assert record["coalesced"] is True
        assert record["leader_trace_id"] == "c" * 32

    def test_no_sink_is_a_noop(self, app):
        assert app.log_access("GET", "/healthz", 200, 0.1) is None

    def test_stream_sink_is_not_closed(self):
        from repro.serve.accesslog import AccessLog

        stream = io.StringIO()
        log = AccessLog(stream)
        log.log("GET", "/healthz", 200, 0.1)
        log.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["path"] == "/healthz"
