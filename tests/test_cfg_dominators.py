"""Dominator / post-dominator analysis tests (Cooper-Harvey-Kennedy)."""

from repro.cfg import build_cfgs, compute_dominators, compute_postdominators
from repro.cfg.dominators import immediate_postdominator_pc
from repro.isa import assemble


def analyze(text, func="main"):
    program = assemble(text)
    cfg = build_cfgs(program)[func]
    return cfg, compute_dominators(cfg), compute_postdominators(cfg)


DIAMOND = """
.func main
    movi r1, 1
    bnez r1, right
    addi r2, r2, 1
    jmp join
right:
    addi r3, r3, 1
join:
    halt
.endfunc
"""


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg, doms, _ = analyze(DIAMOND)
        entry = cfg.entry_block.block_id
        for block in cfg.blocks:
            assert doms.dominates(entry, block.block_id)

    def test_sides_do_not_dominate_join(self):
        cfg, doms, _ = analyze(DIAMOND)
        join = cfg.block_containing(5).block_id
        left = cfg.block_containing(2).block_id
        right = cfg.block_containing(4).block_id
        assert not doms.dominates(left, join)
        assert not doms.dominates(right, join)
        assert doms.immediate(join) == cfg.entry_block.block_id

    def test_dominance_is_reflexive(self):
        cfg, doms, _ = analyze(DIAMOND)
        for block in cfg.blocks:
            assert doms.dominates(block.block_id, block.block_id)


class TestPostDominators:
    def test_join_postdominates_sides(self):
        cfg, _, postdoms = analyze(DIAMOND)
        join = cfg.block_containing(5).block_id
        for pc in (0, 2, 4):
            block = cfg.block_containing(pc).block_id
            assert postdoms.dominates(join, block)

    def test_iposdom_of_diamond_branch_is_join(self):
        cfg, _, postdoms = analyze(DIAMOND)
        assert immediate_postdominator_pc(cfg, postdoms, 1) == 5

    def test_branch_with_two_returns_has_no_iposdom(self):
        cfg, _, postdoms = analyze(
            """
            .func main
                call f
                halt
            .endfunc
            .func f
                movi r1, 1
                bnez r1, other
                ret
            other:
                ret
            .endfunc
            """,
            func="f",
        )
        assert immediate_postdominator_pc(cfg, postdoms, 3) is None

    def test_nested_hammock_iposdoms(self, nested_hammock_program):
        cfg = build_cfgs(nested_hammock_program)["main"]
        postdoms = compute_postdominators(cfg)
        # outer hammock branch at pc 5 merges at outer_merge (pc 16)
        outer = immediate_postdominator_pc(cfg, postdoms, 5)
        inner = immediate_postdominator_pc(cfg, postdoms, 10)
        assert outer is not None and inner is not None
        assert inner < outer  # inner merge comes before outer merge

    def test_loop_latch_iposdom_is_exit(self, loop_program):
        cfg = build_cfgs(loop_program)["main"]
        postdoms = compute_postdominators(cfg)
        latch_pc = next(
            pc
            for pc in loop_program.conditional_branch_pcs()
            if loop_program[pc].target <= pc
        )
        exit_pc = immediate_postdominator_pc(cfg, postdoms, latch_pc)
        assert exit_pc == latch_pc + 1
