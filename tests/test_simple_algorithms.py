"""Tests for the §7.2 simple selection baselines."""

import pytest

from repro.core.marks import DivergeKind
from repro.core.simple_algorithms import (
    SIMPLE_ALGORITHMS,
    select_every_br,
    select_high_bp,
    select_if_else,
    select_immediate,
    select_random_50,
)
from repro.profiling import Profiler
from repro.workloads import load_benchmark


@pytest.fixture(scope="module")
def artifacts():
    workload = load_benchmark("gcc", scale=0.25)
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    return workload.program, profile


def test_every_br_marks_all_executed_branches(artifacts):
    program, profile = artifacts
    annotation = select_every_br(program, profile)
    executed = set(profile.edge_profile.executed_branch_pcs())
    assert {b.branch_pc for b in annotation} == executed


def test_every_br_uses_iposdom_when_available(artifacts):
    program, profile = artifacts
    annotation = select_every_br(program, profile)
    with_cfm = [b for b in annotation if b.cfm_points]
    without_cfm = [b for b in annotation if not b.cfm_points]
    assert with_cfm  # most branches have an IPOSDOM
    # branches inside two-return helpers have none (dual-path marks)
    assert without_cfm


def test_random_50_is_seeded_and_half_sized(artifacts):
    program, profile = artifacts
    a = select_random_50(program, profile, seed=42)
    b = select_random_50(program, profile, seed=42)
    c = select_random_50(program, profile, seed=43)
    assert {x.branch_pc for x in a} == {x.branch_pc for x in b}
    assert {x.branch_pc for x in a} != {x.branch_pc for x in c}
    full = len(profile.edge_profile.executed_branch_pcs())
    assert len(a) == int(full * 0.5)


def test_high_bp_threshold(artifacts):
    program, profile = artifacts
    annotation = select_high_bp(program, profile, min_misp_rate=0.05)
    for branch in annotation:
        rate = profile.branch_profile.misprediction_rate(branch.branch_pc)
        assert rate > 0.05


def test_immediate_requires_iposdom(artifacts):
    program, profile = artifacts
    annotation = select_immediate(program, profile)
    assert all(b.cfm_points for b in annotation)


def test_if_else_only_simple_hammocks(artifacts):
    program, profile = artifacts
    annotation = select_if_else(program, profile)
    assert len(annotation) > 0
    assert all(
        b.kind is DivergeKind.SIMPLE_HAMMOCK for b in annotation
    )


def test_registry_contains_all_five(artifacts):
    assert set(SIMPLE_ALGORITHMS) == {
        "every-br",
        "random-50",
        "high-bp-5",
        "immediate",
        "if-else",
    }
    program, profile = artifacts
    for select in SIMPLE_ALGORITHMS.values():
        annotation = select(program, profile)
        assert annotation.program_name == program.name


def test_subset_relations(artifacts):
    program, profile = artifacts
    every = {b.branch_pc for b in select_every_br(program, profile)}
    high = {b.branch_pc for b in select_high_bp(program, profile)}
    immediate = {b.branch_pc for b in select_immediate(program, profile)}
    ifelse = {b.branch_pc for b in select_if_else(program, profile)}
    assert high <= every
    assert immediate <= every
    assert ifelse <= immediate
