"""``campaign watch``: the live, read-only status view over campaign
journals (unsharded and sharded alike)."""

import io
import json
import os
import time

from repro import __main__ as repro_main
from repro.campaign import Axis, CampaignSpec, Journal, shard_of
from repro.campaign.backends import shard_journal_name
from repro.campaign.watch import (
    RATE_WINDOW_SECONDS,
    build_watch,
    journal_targets,
    render_watch,
    scan_finishes,
    watch_loop,
)

SCALE = 0.1


def _spec(name="watched", benchmarks=("gzip", "twolf")):
    return CampaignSpec(
        name=name,
        benchmarks=benchmarks,
        scale=SCALE,
        selection="exact-freq",
        axes=(Axis("max_instr", (10, 30)),),
        cell="tests.test_campaign_backends:fake_cell",
    )


def _finish(journal, cell_id, attempt=1):
    journal.cell_start(cell_id, attempt)
    journal.cell_finish(cell_id, attempt, 0.01, {
        "speedup": 1.0, "baseline": {}, "stats": {},
    })


class TestScanFinishes:
    def test_counts_finishes_and_retries(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.campaign_start("x", "h", 1)
            _finish(journal, "aaa")
            journal.cell_start("bbb", 1)
            journal.cell_fail("bbb", 1, "crash", "boom", 0.01)
            _finish(journal, "bbb", attempt=2)
        finishes, retries = scan_finishes(path)
        assert len(finishes) == 2
        assert retries == 1
        assert all(isinstance(ts, float) for ts in finishes)

    def test_missing_journal_is_empty(self, tmp_path):
        assert scan_finishes(str(tmp_path / "nope.jsonl")) == ([], 0)

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.campaign_start("x", "h", 1)
            _finish(journal, "aaa")
        with open(path, "a") as handle:
            handle.write('{"type": "cell.fin')
        finishes, _retries = scan_finishes(path)
        assert len(finishes) == 1


class TestJournalTargets:
    def test_unsharded_owns_everything(self, tmp_path):
        spec = _spec()
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.campaign_start(spec.name, spec.spec_hash, 1)
        targets = journal_targets(spec, str(tmp_path))
        assert len(targets) == 1
        label, target_path, owned = targets[0]
        assert label == "all"
        assert target_path == path
        assert len(owned) == len(spec.cells())

    def test_shard_journals_partition_ownership(self, tmp_path):
        spec = _spec()
        for index in range(2):
            path = os.path.join(
                str(tmp_path), shard_journal_name(index, 2))
            with Journal(path) as journal:
                journal.campaign_start(spec.name, spec.spec_hash, 1)
        targets = journal_targets(spec, str(tmp_path))
        assert [label for label, _, _ in targets] == [
            "shard 0/2", "shard 1/2"]
        owned_ids = [
            {cell.cell_id for cell in owned}
            for _, _, owned in targets
        ]
        assert not (owned_ids[0] & owned_ids[1])
        assert len(owned_ids[0] | owned_ids[1]) == len(spec.cells())
        for index, ids in enumerate(owned_ids):
            assert all(shard_of(i, 2) == index for i in ids)


class TestBuildWatch:
    def test_progress_rate_and_eta(self, tmp_path):
        spec = _spec()
        cells = spec.cells()
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.campaign_start(spec.name, spec.spec_hash, 1)
            _finish(journal, cells[0].cell_id)
        now = time.time() + 1.0
        frame = build_watch(spec, str(tmp_path), now=now)
        assert frame["owned_cells"] == len(cells)
        assert frame["settled_cells"] == 1
        assert frame["pending_cells"] == len(cells) - 1
        assert frame["cells_per_sec"] > 0
        assert frame["eta_seconds"] > 0

    def test_finishes_outside_window_do_not_count(self, tmp_path):
        spec = _spec()
        cells = spec.cells()
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.campaign_start(spec.name, spec.spec_hash, 1)
            _finish(journal, cells[0].cell_id)
        frame = build_watch(spec, str(tmp_path),
                            now=time.time() + RATE_WINDOW_SECONDS + 10)
        assert frame["cells_per_sec"] == 0.0
        assert frame["eta_seconds"] is None

    def test_sharded_rows(self, tmp_path):
        spec = _spec()
        cells = spec.cells()
        by_shard = {0: [], 1: []}
        for cell in cells:
            by_shard[shard_of(cell.cell_id, 2)].append(cell)
        for index in range(2):
            path = os.path.join(
                str(tmp_path), shard_journal_name(index, 2))
            with Journal(path) as journal:
                journal.campaign_start(spec.name, spec.spec_hash, 1)
                for cell in by_shard[index]:
                    _finish(journal, cell.cell_id)
        frame = build_watch(spec, str(tmp_path))
        assert len(frame["rows"]) == 2
        assert frame["settled_cells"] == len(cells)
        assert frame["pending_cells"] == 0
        for row in frame["rows"]:
            assert row["done"] == row["owned"]

    def test_render_mentions_retries_and_progress(self, tmp_path):
        spec = _spec()
        cells = spec.cells()
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.campaign_start(spec.name, spec.spec_hash, 1)
            journal.cell_start(cells[0].cell_id, 1)
            journal.cell_fail(cells[0].cell_id, 1, "crash", "x", 0.01)
            _finish(journal, cells[0].cell_id, attempt=2)
        text = render_watch(build_watch(spec, str(tmp_path)))
        assert f"campaign {spec.name!r}" in text
        assert "1 retries" in text
        assert f"1/{len(cells)}" in text
        assert "cells/s" in text


class TestWatchLoop:
    def test_once_renders_a_single_frame(self, tmp_path):
        spec = _spec()
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.campaign_start(spec.name, spec.spec_hash, 1)
        stream = io.StringIO()
        code = watch_loop(spec, str(tmp_path), once=True,
                          stream=stream, clear=False)
        assert code == 0
        assert "cells settled" in stream.getvalue()

    def test_cli_watch_once(self, tmp_path, capsys):
        spec = _spec()
        results = tmp_path / "results"
        directory = results / spec.name
        directory.mkdir(parents=True)
        spec.dump(str(directory / "spec.json"))
        with Journal(str(directory / "journal.jsonl")) as journal:
            journal.campaign_start(spec.name, spec.spec_hash, 1)
        code = repro_main.main([
            "campaign", "watch", spec.name,
            "--results-dir", str(results), "--once",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cells settled" in out
        assert "eta" in out
