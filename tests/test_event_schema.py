"""Event-schema properties: every event round-trips; readers accept all.

The trace log is only trustworthy if what goes in comes back out: each
registered event class must survive ``to_record`` → JSON → ``from_record``
unchanged (hypothesis generates the field values from the dataclass
annotations, so adding a field to an event automatically extends the
property), and the offline readers (``summarize_trace``) must accept a
stream containing *every* registered event type without raising.  Also
covers the OpenMetrics exposition round-trip and output-path parent
creation.
"""

import dataclasses
import json
import os
import typing

import pytest
from hypothesis import given, settings, strategies as st

from repro.ioutil import ensure_parent
from repro.obs import events
from repro.obs.metrics import MetricsRegistry, parse_openmetrics
from repro.obs.trace_report import format_trace_report, summarize_trace
from repro.obs.tracer import JsonlSink, Tracer

# -- to_record/from_record round-trip ----------------------------------------

_SCALARS = {
    int: st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    str: st.text(max_size=40),
    bool: st.booleans(),
    float: st.floats(allow_nan=False, allow_infinity=False),
}


def _field_strategy(annotation):
    if annotation in _SCALARS:
        return _SCALARS[annotation]
    if typing.get_origin(annotation) is typing.Union:
        members = [
            _field_strategy(arg)
            for arg in typing.get_args(annotation)
            if arg is not type(None)
        ]
        return st.one_of(st.none(), *members)
    raise AssertionError(
        f"no strategy for event field annotation {annotation!r}; "
        f"extend _SCALARS alongside the new event field type"
    )


def _event_strategy(cls):
    hints = typing.get_type_hints(cls)
    return st.builds(cls, **{
        field.name: _field_strategy(hints[field.name])
        for field in dataclasses.fields(cls)
    })


@pytest.mark.parametrize(
    "cls", sorted(events.EVENT_TYPES.values(), key=lambda c: c.type),
    ids=lambda c: c.type,
)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_event_round_trips_through_json(cls, data):
    original = data.draw(_event_strategy(cls))
    record = events.to_record(original)
    assert record["type"] == cls.type
    wire = json.loads(json.dumps(record))
    assert events.from_record(wire) == original


def test_from_record_tolerates_unknown_type_and_extra_fields():
    generic = events.from_record({"type": "future.event", "x": 1})
    assert isinstance(generic, events.GenericEvent)
    assert generic.payload == {"x": 1}
    # Extra fields on a *known* type (written by a newer build) drop.
    evt = events.from_record({
        "type": "phase.end", "name": "sim", "seconds": 0.5,
        "events": 3, "added_in_v9": True,
    })
    assert evt == events.PhaseEnd(name="sim", seconds=0.5, events=3)


# -- every event type through the offline readers ----------------------------


def _one_of_each():
    """A plausible instance of every registered event type."""
    return [
        events.SimRunStart(label="dmp", trace_length=100, dmp_enabled=True),
        events.DpredEpisodeStart(
            branch_pc=40, kind="hammock", cycle=10,
            mispredicted=True, wrong_path_insts=4,
        ),
        events.DpredEpisodeMerge(
            branch_pc=40, cycle=15, duration_cycles=5, select_uops=2,
        ),
        events.DpredEpisodeStart(
            branch_pc=60, kind="loop", cycle=20,
            mispredicted=False, wrong_path_insts=0, select_uops=3,
        ),
        events.DpredEpisodeExtend(branch_pc=60, cycle=24, extra_insts=6),
        events.DpredEpisodeEnd(
            branch_pc=60, cycle=30, duration_cycles=10,
            reason="resolved-unmerged",
        ),
        events.DpredEpisodeStart(
            branch_pc=80, kind="hammock", cycle=35,
            mispredicted=False, wrong_path_insts=2,
        ),
        events.DpredEpisodeFlush(
            branch_pc=80, cycle=40, duration_cycles=5,
            flushed_by_pc=82, source="branch-mispredict",
        ),
        events.PipelineFlush(pc=82, cycle=40, source="branch-mispredict"),
        events.CacheMiss(level="icache", pc=82, cycle=41, stall_cycles=12),
        events.BranchSelected(
            branch_pc=40, kind="hammock", source="cost-model",
            always_predicate=False, num_cfm_points=1, num_select_uops=2,
            dpred_cost=-3.5, dpred_overhead=1.0, merge_prob_total=0.9,
        ),
        events.BranchRejected(
            branch_pc=90, reason="cost-model", dpred_cost=4.0,
            dpred_overhead=2.0, merge_prob_total=0.4,
        ),
        events.CompilePassStart(pipeline="p", pass_name="cost", index=0),
        events.CompilePassEnd(
            pipeline="p", pass_name="cost", index=0, seconds=0.01,
            candidates=3, selected=1,
        ),
        events.SimRunEnd(
            label="dmp", cycles=100, retired_instructions=90,
            pipeline_flushes=1, dpred_episodes=3,
            dpred_episodes_merged=1, mispredictions=2,
            dpred_flushes_avoided=2, dpred_wrong_path_insts=12,
            dpred_select_uops=5,
        ),
        events.CampaignCellStart(
            campaign="c", cell_id="abc", label="gzip", attempt=1,
        ),
        events.CampaignCellEnd(
            campaign="c", cell_id="abc", attempt=1, seconds=0.2,
        ),
        events.CampaignCellFail(
            campaign="c", cell_id="def", attempt=1,
            kind="timeout", error="budget",
        ),
        events.CampaignCellQuarantined(
            campaign="c", cell_id="def", attempts=3,
        ),
        events.PhaseEnd(name="simulate", seconds=0.1, events=100),
        events.SpanEnd(
            name="fetch", path="simulate/fetch", depth=2,
            seconds=0.06, self_seconds=0.06, events=90,
        ),
        events.SpanEnd(
            name="simulate", path="simulate", depth=1,
            seconds=0.1, self_seconds=0.04, events=90,
        ),
    ]


def test_one_of_each_covers_the_registry():
    emitted = {evt.type for evt in _one_of_each()}
    assert emitted == set(events.EVENT_TYPES)


def test_summarize_trace_accepts_every_event_type(tmp_path):
    path = str(tmp_path / "all_events.jsonl")
    tracer = Tracer(JsonlSink(path))
    for evt in _one_of_each():
        tracer.emit(evt)
    tracer.close()

    summary = summarize_trace(path)
    assert summary["total_events"] == len(_one_of_each())
    assert set(summary["by_type"]) == set(events.EVENT_TYPES)
    assert summary["corrupt_lines"] == 0
    # Episode accounting fed from the stream above: 3 starts (one per
    # branch), 1 merge, 2 covered mispredictions (start + extend).
    assert summary["reconciliation"]["episode_starts"] == 3
    assert summary["reconciliation"]["episode_merges"] == 1
    assert summary["reconciliation"]["consistent"]
    assert summary["branches"][60]["flushes_avoided"] == 1
    assert summary["branches"][60]["wrong_path_insts"] == 6
    # And the renderer accepts the whole summary.
    assert "trace report" in format_trace_report(summary)


# -- OpenMetrics exposition ---------------------------------------------------


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("sim_cycles_total").inc(1234)
    registry.counter("sim_flushes_total").inc(7)
    registry.gauge("campaign_cells_pending").set(42)
    hist = registry.histogram(
        "phase_seconds", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 2.0, 20.0):
        hist.observe(value)
    return registry


def test_openmetrics_round_trips_into_equal_snapshot():
    registry = _populated_registry()
    text = registry.render_openmetrics()
    assert text.endswith("# EOF\n")
    snapshot = parse_openmetrics(text)

    merged = MetricsRegistry()
    merged.merge_snapshot(snapshot)
    assert merged.as_dict() == registry.as_dict()


def test_openmetrics_counter_names_use_total_suffix():
    text = _populated_registry().render_openmetrics()
    assert "# TYPE sim_cycles counter" in text
    assert "sim_cycles_total 1234" in text
    # Histogram exposition: cumulative buckets, +Inf, count and sum.
    assert 'phase_seconds_bucket{le="+Inf"} 4' in text
    assert "phase_seconds_count 4" in text


# -- output paths create their parent directories ----------------------------


def test_ensure_parent_creates_missing_directories(tmp_path):
    target = tmp_path / "a" / "b" / "c.json"
    assert ensure_parent(str(target)) == str(target)
    assert os.path.isdir(tmp_path / "a" / "b")
    # Bare filenames (no directory component) are a no-op.
    assert ensure_parent("plain.json") == "plain.json"


def test_jsonl_sink_creates_parent_directories(tmp_path):
    path = str(tmp_path / "deep" / "traces" / "out.jsonl")
    tracer = Tracer(JsonlSink(path))
    tracer.emit(events.PhaseEnd(name="x", seconds=0.0, events=0))
    tracer.close()
    assert os.path.getsize(path) > 0


def test_metrics_writers_create_parent_directories(tmp_path):
    registry = _populated_registry()
    json_path = str(tmp_path / "m" / "metrics.json")
    registry.write_json(json_path)
    assert json.load(open(json_path, encoding="utf-8"))
    om_path = str(tmp_path / "om" / "metrics.txt")
    registry.write_openmetrics(om_path)
    assert open(om_path, encoding="utf-8").read().endswith("# EOF\n")
