"""Campaign execution backends: the local pool extraction, shard
partitioning, shard journals, ``campaign merge``, and engine
resolution inside forked workers."""

import json
import os

import pytest

from repro import __main__ as repro_main
from repro.campaign import (
    Axis,
    CampaignSpec,
    Journal,
    LocalPoolBackend,
    Scheduler,
    ShardedBackend,
    find_shard_journals,
    make_backend,
    merge_shard_journals,
    replay,
    shard_of,
)
from repro.campaign.backends import shard_journal_name
from repro.obs import MetricsRegistry, PhaseProfile, telemetry

SCALE = 0.1


# -- cell functions (module-level: workers import them by path) --------


def fake_cell(params):
    from repro.campaign.spec import content_hash

    value = int(content_hash(params), 16) % 1000 / 1000.0
    return {
        "speedup": value,
        "baseline": {"ipc": 1.0},
        "stats": {"ipc": 1.0 + value},
    }


def engine_cell(params):
    """Reports the engine a forked worker would resolve to."""
    from repro.uarch.engine import get_default_engine

    return {"engine": get_default_engine(), "speedup": 1.0,
            "baseline": {}, "stats": {}}


def _spec(name="shards", benchmarks=("gzip", "twolf"),
          cell="tests.test_campaign_backends:fake_cell"):
    return CampaignSpec(
        name=name,
        benchmarks=benchmarks,
        scale=SCALE,
        selection="exact-freq",
        axes=(Axis("max_instr", (10, 30, 50)),),
        cell=cell,
    )


def _run_scheduler(spec, journal_path, backend=None, sim_engine=None):
    state = replay(journal_path)
    with telemetry(metrics=MetricsRegistry(), phases=PhaseProfile()):
        with Journal(journal_path) as journal:
            journal.campaign_start(spec.name, spec.spec_hash, 1)
            scheduler = Scheduler(
                spec, journal, backoff=0.0, backend=backend,
                sim_engine=sim_engine,
            )
            return scheduler.run(state)


class TestShardPartition:
    def test_partition_is_disjoint_and_complete(self):
        cells = _spec().cells()
        shards = 3
        owned = [
            {c.cell_id for c in cells
             if shard_of(c.cell_id, shards) == index}
            for index in range(shards)
        ]
        union = set().union(*owned)
        assert union == {c.cell_id for c in cells}
        assert sum(len(part) for part in owned) == len(cells)

    def test_shard_of_is_a_pure_function_of_the_id(self):
        assert shard_of("00f", 4) == shard_of("00f", 4)
        assert shard_of("00f", 1) == 0
        with pytest.raises(ValueError):
            shard_of("00f", 0)

    def test_sharded_backend_validates(self):
        with pytest.raises(ValueError):
            ShardedBackend(0, 0)
        with pytest.raises(ValueError):
            ShardedBackend(2, 2)
        with pytest.raises(ValueError):
            ShardedBackend(2, -1)

    def test_make_backend(self):
        assert isinstance(make_backend("local"), LocalPoolBackend)
        backend = make_backend("sharded", shards=2, shard_index=1)
        assert isinstance(backend, ShardedBackend)
        assert backend.journal_name() == "journal.shard-1-of-2.jsonl"
        with pytest.raises(ValueError):
            make_backend("sharded")
        with pytest.raises(ValueError):
            make_backend("slurm")

    def test_local_backend_owns_everything(self):
        backend = LocalPoolBackend()
        assert all(backend.owns(c) for c in _spec().cells())
        assert backend.journal_name() == "journal.jsonl"


class TestShardJournals:
    def test_find_sorts_by_index(self, tmp_path):
        for index in (2, 0, 1):
            (tmp_path / shard_journal_name(index, 3)).write_text("")
        found = find_shard_journals(tmp_path)
        assert [(i, n) for i, n, _ in found] \
            == [(0, 3), (1, 3), (2, 3)]

    def test_find_rejects_mixed_shard_counts(self, tmp_path):
        (tmp_path / shard_journal_name(0, 2)).write_text("")
        (tmp_path / shard_journal_name(1, 3)).write_text("")
        with pytest.raises(ValueError, match="disagree"):
            find_shard_journals(tmp_path)

    def test_merge_needs_shard_journals(self, tmp_path):
        with pytest.raises(ValueError, match="no shard journals"):
            merge_shard_journals(tmp_path)

    def test_merge_refuses_existing_journal_without_force(
            self, tmp_path):
        (tmp_path / shard_journal_name(0, 1)).write_text(
            '{"type":"campaign.start","spec_hash":"x"}\n'
        )
        (tmp_path / "journal.jsonl").write_text("{}\n")
        with pytest.raises(ValueError, match="--force"):
            merge_shard_journals(tmp_path)
        summary = merge_shard_journals(tmp_path, force=True)
        assert summary["records"] == 1
        assert summary["spec_hash"] == "x"

    def test_merge_refuses_mixed_spec_hashes(self, tmp_path):
        (tmp_path / shard_journal_name(0, 2)).write_text(
            '{"type":"campaign.start","spec_hash":"a"}\n'
        )
        (tmp_path / shard_journal_name(1, 2)).write_text(
            '{"type":"campaign.start","spec_hash":"b"}\n'
        )
        with pytest.raises(ValueError, match="mix spec hashes"):
            merge_shard_journals(tmp_path)

    def test_merge_skips_torn_tail_lines(self, tmp_path):
        (tmp_path / shard_journal_name(0, 1)).write_text(
            '{"type":"campaign.start","spec_hash":"x"}\n'
            '{"type":"cell.fini'  # torn write
        )
        summary = merge_shard_journals(tmp_path)
        assert summary["records"] == 1
        assert summary["corrupt_lines"] == 1


class TestShardedExecution:
    def test_sharded_schedulers_cover_the_spec_exactly_once(
            self, tmp_path):
        spec = _spec()
        all_results = {}
        for index in range(2):
            backend = ShardedBackend(2, index)
            journal_path = str(tmp_path / backend.journal_name())
            summary = _run_scheduler(spec, journal_path,
                                     backend=backend)
            assert not summary["interrupted"]
            overlap = set(summary["results"]) & set(all_results)
            assert not overlap
            all_results.update(summary["results"])
        assert set(all_results) == {c.cell_id for c in spec.cells()}

    def test_merged_report_is_byte_identical_to_unsharded(
            self, tmp_path, capsys):
        sharded = str(tmp_path / "sharded")
        unsharded = str(tmp_path / "unsharded")
        spec_file = tmp_path / "shards.json"
        spec_file.write_text(json.dumps(_spec().as_dict()) + "\n")
        for index in range(2):
            assert repro_main.main(
                ["campaign", "run", str(spec_file),
                 "--results-dir", sharded,
                 "--shards", "2", "--shard-index", str(index)]
            ) == 0
        assert repro_main.main(
            ["campaign", "run", str(spec_file),
             "--results-dir", unsharded]
        ) == 0
        capsys.readouterr()

        # Before the merge, report warns about unmerged shards.
        assert repro_main.main(
            ["campaign", "report", "shards", "--results-dir", sharded]
        ) == 0
        captured = capsys.readouterr()
        assert "unmerged shard journal" in captured.err

        assert repro_main.main(
            ["campaign", "merge", "shards", "--results-dir", sharded]
        ) == 0
        capsys.readouterr()
        assert repro_main.main(
            ["campaign", "report", "shards", "--results-dir", sharded]
        ) == 0
        merged_report = capsys.readouterr().out
        assert repro_main.main(
            ["campaign", "report", "shards", "--results-dir", unsharded]
        ) == 0
        clean_report = capsys.readouterr().out
        assert merged_report == clean_report
        assert merged_report.strip()

    def test_shard_run_resumes_with_the_same_flags(self, tmp_path,
                                                   capsys):
        results = str(tmp_path / "campaigns")
        spec_file = tmp_path / "shards.json"
        spec_file.write_text(json.dumps(_spec().as_dict()) + "\n")
        shard_args = ["--shards", "1", "--shard-index", "0"]
        assert repro_main.main(
            ["campaign", "run", str(spec_file), "--results-dir",
             results, "--max-cells", "2"] + shard_args
        ) == 3
        assert repro_main.main(
            ["campaign", "resume", "shards", "--results-dir", results]
            + shard_args
        ) == 0
        journal = os.path.join(
            results, "shards", shard_journal_name(0, 1)
        )
        state = replay(journal)
        assert len(state.results) == len(_spec().cells())

    def test_shards_flag_needs_shard_index(self, tmp_path):
        spec_file = tmp_path / "shards.json"
        spec_file.write_text(json.dumps(_spec().as_dict()) + "\n")
        with pytest.raises(SystemExit):
            repro_main.main(
                ["campaign", "run", str(spec_file), "--results-dir",
                 str(tmp_path), "--shards", "2"]
            )


class TestWorkerEngineResolution:
    """Engine precedence holds inside forked shard/pool workers."""

    ENGINE_SPEC = dict(
        name="engines", benchmarks=("gzip",),
        cell="tests.test_campaign_backends:engine_cell",
    )

    def _engines(self, summary):
        return {r["engine"] for r in summary["results"].values()}

    def test_explicit_sim_engine_wins_in_workers(self, tmp_path):
        spec = _spec(**self.ENGINE_SPEC)
        summary = _run_scheduler(
            spec, str(tmp_path / "journal.jsonl"), sim_engine="scalar"
        )
        assert self._engines(summary) == {"scalar"}

    def test_env_engine_reaches_forked_workers(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setattr("repro.uarch.engine._default_engine", None)
        monkeypatch.setenv("REPRO_SIM_ENGINE", "vectorized")
        spec = _spec(**self.ENGINE_SPEC)
        summary = _run_scheduler(spec, str(tmp_path / "journal.jsonl"))
        assert self._engines(summary) == {"vectorized"}

    def test_default_is_auto(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.uarch.engine._default_engine", None)
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        spec = _spec(**self.ENGINE_SPEC)
        summary = _run_scheduler(spec, str(tmp_path / "journal.jsonl"))
        assert self._engines(summary) == {"auto"}
