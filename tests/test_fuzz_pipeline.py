"""Fuzz tests: the whole pipeline on randomly composed workloads.

Hypothesis draws random region mixes and behaviour parameters, builds a
program through the workload generator, and checks end-to-end
invariants: functional execution halts, selection emits structurally
valid annotations, and the timing simulator terminates with sane
results under every selection configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.core import SelectionConfig, select_diverge_branches
from repro.core.annotation_io import validate_against_program
from repro.emulator import execute
from repro.profiling import Profiler
from repro.uarch import simulate
from repro.workloads.generator import (
    BenchmarkSpec,
    Region,
    build_program,
    fill_memory,
)

_REGION_KINDS = st.sampled_from(
    [
        "simple_hammock",
        "nested_hammock",
        "freq_hammock",
        "short_hammock",
        "split",
        "ret_hammock",
        "diverge_loop",
        "long_loop",
        "compute",
        "memory",
    ]
)


@st.composite
def random_region(draw):
    kind = draw(_REGION_KINDS)
    return Region(
        kind,
        behavior=draw(st.sampled_from(["biased", "markov", "pattern",
                                       "bursty"])),
        p=draw(st.floats(0.03, 0.6)),
        side_insts=draw(st.integers(2, 20)),
        rare_prob=draw(st.floats(0.01, 0.2)),
        cold_insts=draw(st.integers(10, 80)),
        body_insts=draw(st.integers(2, 12)),
        mean_iters=draw(st.floats(1.5, 8.0)),
        trip_kind=draw(st.sampled_from(["geometric", "uniform",
                                        "constant", "jittery"])),
        loads=draw(st.integers(1, 2)),
        region_words=1024,
        count=draw(st.integers(1, 2)),
        gate_prob=draw(st.sampled_from([1.0, 0.25])),
    )


@st.composite
def random_workload(draw):
    regions = draw(st.lists(random_region(), min_size=1, max_size=4))
    seed = draw(st.integers(0, 2**31))
    spec = BenchmarkSpec(
        name="fuzz", regions=tuple(regions), iterations=24
    )
    program, segments = build_program(spec)
    memory = fill_memory(spec, segments, seed=seed)
    return program, memory


@given(random_workload())
@settings(max_examples=20, deadline=None)
def test_fuzzed_workload_runs_and_halts(workload):
    program, memory = workload
    trace, result = execute(program, memory=memory,
                            max_instructions=300_000)
    assert result.halted
    assert len(trace) == result.instruction_count


@given(random_workload(), st.sampled_from(["heur", "cost", "exact"]))
@settings(max_examples=15, deadline=None)
def test_fuzzed_selection_is_structurally_valid(workload, mode):
    program, memory = workload
    profile = Profiler().profile(program, memory=memory,
                                 max_instructions=300_000)
    config = {
        "heur": SelectionConfig.all_best_heur(),
        "cost": SelectionConfig.all_best_cost(),
        "exact": SelectionConfig(enable_freq=False),
    }[mode]
    annotation = select_diverge_branches(program, profile, config)
    assert validate_against_program(annotation, program) == []
    # selected pcs are unique and sorted iteration works
    pcs = [b.branch_pc for b in annotation]
    assert pcs == sorted(set(pcs))


@given(random_workload())
@settings(max_examples=10, deadline=None)
def test_fuzzed_simulation_invariants(workload):
    program, memory = workload
    trace, result = execute(program, memory=memory,
                            max_instructions=300_000)
    assert result.halted
    profile = Profiler().profile(program, memory=memory,
                                 max_instructions=300_000)
    annotation = select_diverge_branches(
        program, profile, SelectionConfig.all_best_heur()
    )
    baseline = simulate(program, trace)
    dmp = simulate(program, trace, annotation=annotation)
    for stats in (baseline, dmp):
        assert stats.retired_instructions == len(trace)
        assert stats.cycles > 0
        assert stats.pipeline_flushes <= stats.mispredictions
    # DMP never mispredicts differently and stays within a sane
    # envelope of the baseline's run time.
    assert dmp.mispredictions == baseline.mispredictions
    assert dmp.cycles <= baseline.cycles * 3
    assert dmp.cycles >= baseline.cycles // 5
