"""Tests for wrong-path synthesis and the bias table."""

from repro.isa import assemble
from repro.uarch.wrongpath import BiasTable, WrongPathWalker, walk_wrong_path


class TestBiasTable:
    def test_defaults_to_taken(self):
        assert BiasTable().predict(5) is True

    def test_learns_direction(self):
        bias = BiasTable()
        for _ in range(3):
            bias.record(5, False)
        assert bias.predict(5) is False
        for _ in range(4):
            bias.record(5, True)
        assert bias.predict(5) is True

    def test_saturates(self):
        bias = BiasTable()
        for _ in range(100):
            bias.record(5, False)
        bias.record(5, True)
        bias.record(5, True)
        # 2-bit hysteresis: two updates take it back to weakly taken
        assert bias.predict(5) is True


def _program():
    return assemble(
        """
        .func main
            movi r1, 1
            bnez r1, side      ; diverge branch at pc 1
            addi r2, r2, 1
            addi r2, r2, 2
            jmp merge
        side:
            addi r3, r3, 1
        merge:
            addi r4, r4, 1
            halt
        .endfunc
        """
    )


class TestWalker:
    def test_walk_reaches_cfm(self):
        program = _program()
        insts, merged = walk_wrong_path(
            program, BiasTable(), start_pc=2, cfm_pcs={6},
            return_cfm=False, max_insts=50,
        )
        assert merged
        assert insts == 3  # two adds + jmp

    def test_walk_capped(self):
        program = _program()
        insts, merged = walk_wrong_path(
            program, BiasTable(), start_pc=2, cfm_pcs={6},
            return_cfm=False, max_insts=2,
        )
        assert not merged
        assert insts == 2

    def test_walk_follows_bias_at_branches(self):
        program = assemble(
            """
            .func main
                movi r1, 1
                bnez r1, out     ; walk starts after this
                movi r2, 1
                bnez r2, far
                addi r3, r3, 1
            cfm:
                halt
            far:
                jmp far2
            far2:
                jmp cfm
            out:
                halt
            .endfunc
            """
        )
        bias = BiasTable()
        cfm = 5
        # bias says not-taken at the inner branch: short route
        for _ in range(3):
            bias.record(3, False)
        short, merged_short = walk_wrong_path(
            program, bias, 2, {cfm}, False, 50
        )
        # bias says taken: the long route via far/far2
        for _ in range(6):
            bias.record(3, True)
        long, merged_long = walk_wrong_path(
            program, bias, 2, {cfm}, False, 50
        )
        assert merged_short and merged_long
        assert long > short

    def test_walk_through_call_and_back(self):
        program = assemble(
            """
            .func main
                call helper
            cfm:
                halt
            .endfunc
            .func helper
                addi r1, r1, 1
                ret
            .endfunc
            """
        )
        insts, merged = walk_wrong_path(
            program, BiasTable(), 0, {1}, False, 50
        )
        assert merged
        assert insts == 3  # call, addi, ret

    def test_return_cfm_merges_at_ret(self):
        program = assemble(
            """
            .func main
                call helper
                halt
            .endfunc
            .func helper
                movi r1, 1
                bnez r1, other
                addi r2, r2, 1
                ret
            other:
                addi r3, r3, 1
                ret
            .endfunc
            """
        )
        # walk the not-taken side of the helper branch, merging at RET
        insts, merged = walk_wrong_path(
            program, BiasTable(), 4, set(), True, 50
        )
        assert merged
        assert insts == 2  # addi + ret

    def test_ret_without_return_cfm_ends_unmerged(self):
        program = _program()
        walker = WrongPathWalker(program, BiasTable())
        # Walk from the halt-terminated merge block looking for a pc
        # that is never reached.
        insts, merged = walker.walk(6, {999}, False, 50)
        assert not merged

    def test_out_of_range_start(self):
        program = _program()
        insts, merged = walk_wrong_path(
            program, BiasTable(), 10_000, {1}, False, 50
        )
        assert (insts, merged) == (0, False)
