"""Tests for the §4/§5.1 analytical cost-benefit model.

The numeric cases are hand-computed from the paper's equations.
"""

import pytest

from repro.core.cost_model import (
    CostModelParams,
    LoopCaseProbabilities,
    dpred_cost,
    estimate_side_insts,
    evaluate_hammock,
    hammock_overhead,
    loop_dpred_cost,
    loop_late_exit_overhead,
    loop_select_overhead,
    useless_insts_for_cfm,
)
from repro.core.alg_exact import find_exact_candidates
from repro.core.alg_freq import find_freq_candidates
from repro.core.analysis import ProgramAnalysis
from repro.core.thresholds import COST_MODEL
from repro.isa import assemble
from repro.profiling import Profiler

PARAMS = CostModelParams(fetch_width=8, misp_penalty=25.0, acc_conf=0.40)


class TestEquationOne:
    def test_dpred_cost_formula(self):
        # cost = o*(1-a) + (o-p)*a  with o=4, p=25, a=0.4
        # = 4*0.6 + (4-25)*0.4 = 2.4 - 8.4 = -6.0
        assert dpred_cost(4.0, PARAMS) == pytest.approx(-6.0)

    def test_break_even_overhead(self):
        # cost = 0  <=>  o = p*a = 10 fetch cycles
        assert dpred_cost(10.0, PARAMS) == pytest.approx(0.0)
        assert dpred_cost(10.1, PARAMS) > 0
        assert dpred_cost(9.9, PARAMS) < 0

    def test_higher_acc_conf_lowers_cost(self):
        eager = CostModelParams(acc_conf=0.5)
        shy = CostModelParams(acc_conf=0.2)
        assert dpred_cost(5.0, eager) < dpred_cost(5.0, shy)


class _FakePathSet:
    """Hand-built path set facade for equation-level tests."""

    def __init__(self, longest, expected):
        self._longest = longest
        self._expected = expected

    def longest_insts_to(self, direction, cfm_pc):
        return self._longest[direction]

    def expected_insts_to(self, direction, cfm_pc):
        return self._expected[direction]


class TestSizeEstimation:
    def setup_method(self):
        self.paths = _FakePathSet(
            longest={"taken": 12, "nottaken": 20},
            expected={"taken": 10.0, "nottaken": 14.0},
        )

    def test_method_selection(self):
        assert estimate_side_insts(self.paths, "taken", 0, "long") == 12
        assert estimate_side_insts(self.paths, "taken", 0, "edge") == 10.0
        with pytest.raises(ValueError):
            estimate_side_insts(self.paths, "taken", 0, "psychic")

    def test_useless_insts_equation_13(self):
        # N_dpred = 10+14 = 24; useful = 0.5*10 + 0.5*14 = 12; useless 12
        useless = useless_insts_for_cfm(self.paths, 0, 0.5, "edge")
        assert useless == pytest.approx(12.0)

    def test_useless_with_biased_direction(self):
        # p_taken=1.0: the whole not-taken side is useless
        useless = useless_insts_for_cfm(self.paths, 0, 1.0, "edge")
        assert useless == pytest.approx(14.0)


class _FakeCandidate:
    def __init__(self, cfm_points, path_set):
        self.cfm_points = cfm_points
        self.path_set = path_set
        self.branch_pc = 0


class _FakeCFM:
    def __init__(self, pc, merge_prob):
        self.pc = pc
        self.merge_prob = merge_prob


class TestFrequentlyHammockOverhead:
    def test_equation_16_blend(self):
        paths = _FakePathSet(
            longest={"taken": 8, "nottaken": 8},
            expected={"taken": 8.0, "nottaken": 8.0},
        )
        candidate = _FakeCandidate([_FakeCFM(5, 0.8)], paths)
        overhead, useless, merged = hammock_overhead(
            candidate, 0.5, PARAMS, "edge"
        )
        # useless = 8 (per eq 13 with p=.5); merged mass 0.8
        # overhead = 0.8*8/8 + 0.2*(25/2) = 0.8 + 2.5 = 3.3
        assert merged == pytest.approx(0.8)
        assert overhead == pytest.approx(3.3)

    def test_exact_cfm_degenerates_to_simple_formula(self):
        paths = _FakePathSet(
            longest={"taken": 8, "nottaken": 8},
            expected={"taken": 8.0, "nottaken": 8.0},
        )
        candidate = _FakeCandidate([_FakeCFM(5, 1.0)], paths)
        overhead, _, merged = hammock_overhead(
            candidate, 0.5, PARAMS, "edge"
        )
        assert merged == 1.0
        assert overhead == pytest.approx(1.0)  # 8/8

    def test_equation_17_multiple_cfms(self):
        paths = _FakePathSet(
            longest={"taken": 8, "nottaken": 8},
            expected={"taken": 8.0, "nottaken": 8.0},
        )
        candidate = _FakeCandidate(
            [_FakeCFM(5, 0.6), _FakeCFM(9, 0.3)], paths
        )
        overhead, _, merged = hammock_overhead(
            candidate, 0.5, PARAMS, "edge"
        )
        assert merged == pytest.approx(0.9)
        # 0.6*1 + 0.3*1 + 0.1*12.5 = 2.15
        assert overhead == pytest.approx(2.15)


class TestLoopModel:
    def test_equation_18(self):
        # 4 selects * 6 iterations / 8-wide = 3 cycles
        assert loop_select_overhead(4, 6, PARAMS) == pytest.approx(3.0)

    def test_equation_19(self):
        # body 16 * 2 extra / 8 + selects(4*6/8) = 4 + 3 = 7
        overhead = loop_late_exit_overhead(16, 2, 4, 6, PARAMS)
        assert overhead == pytest.approx(7.0)

    def test_equation_20_only_late_exit_benefits(self):
        probs = LoopCaseProbabilities(
            correct=0.5, early_exit=0.1, late_exit=0.3, no_exit=0.1
        )
        cost = loop_dpred_cost(
            loop_body_size=16,
            n_select_uops=4,
            dpred_iter=6,
            dpred_extra_iter=2,
            case_probs=probs,
            params=PARAMS,
        )
        # overhead_sel=3; overhead_late=7
        # = (0.5+0.1+0.1)*3 + 0.3*(7-25) = 2.1 - 5.4 = -3.3
        assert cost == pytest.approx(-3.3)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            LoopCaseProbabilities(0.5, 0.5, 0.5, 0.5)


class TestEndToEndEvaluation:
    def _candidate(self, side_insts):
        side = "\n".join(
            "    addi r6, r6, 1" for _ in range(side_insts)
        )
        program = assemble(
            f"""
            .func main
                movi r1, 0
                movi r2, 120
            loop:
                cmpge r4, r1, r2
                bnez r4, done
                ld r3, 0(r1)
                bnez r3, then
{side}
                jmp merge
            then:
                addi r7, r7, 1
            merge:
                addi r1, r1, 1
                jmp loop
            done:
                halt
            .endfunc
            """
        )
        memory = {i: i % 2 for i in range(150)}
        profile = Profiler().profile(program, memory=memory)
        analysis = ProgramAnalysis(program, profile)
        candidates = {
            c.branch_pc: c
            for c in find_exact_candidates(analysis, COST_MODEL)
        }
        return candidates[5], profile

    def test_small_hammock_selected(self):
        candidate, profile = self._candidate(side_insts=6)
        report = evaluate_hammock(candidate, profile, PARAMS, "edge")
        assert report.selected
        assert report.dpred_cost < 0

    def test_huge_hammock_rejected(self):
        candidate, profile = self._candidate(side_insts=170)
        report = evaluate_hammock(candidate, profile, PARAMS, "edge")
        assert not report.selected

    def test_long_method_at_least_as_pessimistic(self):
        candidate, profile = self._candidate(side_insts=40)
        edge = evaluate_hammock(candidate, profile, PARAMS, "edge")
        long = evaluate_hammock(candidate, profile, PARAMS, "long")
        assert long.dpred_overhead >= edge.dpred_overhead - 1e-9
