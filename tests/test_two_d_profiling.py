"""Tests for the 2D-profiling extension (§8.3 future work)."""

import random

import pytest

from repro.core import SelectionConfig, select_diverge_branches
from repro.isa import assemble
from repro.profiling import Profiler, TwoDProfiler
from repro.profiling.two_d import BranchPhaseStats


def phased_program():
    """Two hammocks: one always easy, one with phased difficulty."""
    return assemble(
        """
        .func main
            movi r1, 0
            movi r2, 600
        loop:
            cmpge r4, r1, r2
            bnez r4, done
            ld r3, 0(r1)
            and r5, r3, 1
            bnez r5, easy_then      ; pc 7: always-easy branch
            addi r6, r6, 1
            jmp easy_merge
        easy_then:
            addi r7, r7, 1
        easy_merge:
            and r5, r3, 2
            bnez r5, hard_then      ; pc 13: phased branch
            addi r8, r8, 1
            jmp hard_merge
        hard_then:
            addi r9, r9, 1
        hard_merge:
            addi r1, r1, 1
            jmp loop
        done:
            halt
        .endfunc
        """
    )


EASY_PC = 6
PHASED_PC = 11


def phased_memory(n=600, seed=3):
    """bit0 constant (easy); bit1 random in the middle third only."""
    rng = random.Random(seed)
    memory = {}
    for i in range(n):
        hard_phase = n // 3 <= i < 2 * n // 3
        bit1 = rng.randrange(2) if hard_phase else 0
        memory[i] = 0 | (bit1 << 1)
    return memory


@pytest.fixture(scope="module")
def two_d():
    program = phased_program()
    return program, TwoDProfiler().profile(
        program, memory=phased_memory()
    )


class TestDetection:
    def test_phased_branch_flagged_input_dependent(self, two_d):
        _, profile = two_d
        assert profile.is_input_dependent(PHASED_PC)

    def test_easy_branch_flagged_always_easy(self, two_d):
        _, profile = two_d
        assert profile.is_always_easy(EASY_PC)
        assert not profile.is_input_dependent(EASY_PC)

    def test_keep_branch_rule(self, two_d):
        _, profile = two_d
        assert profile.keep_branch(PHASED_PC)
        assert not profile.keep_branch(EASY_PC)

    def test_listings_consistent(self, two_d):
        _, profile = two_d
        assert PHASED_PC in profile.input_dependent_branches()
        assert EASY_PC in profile.always_easy_branches()

    def test_rarely_executed_branch_kept_conservatively(self, two_d):
        _, profile = two_d
        # an unknown pc has no evidence → conservatively kept
        assert profile.keep_branch(99999)

    def test_phase_stddev_math(self):
        stats = BranchPhaseStats(
            pc=1, executions=100, mispredictions=10,
            slice_rates=[0.0, 0.0, 0.5, 0.5],
        )
        assert stats.misprediction_rate == pytest.approx(0.10)
        assert stats.phase_stddev == pytest.approx(0.2887, abs=1e-3)

    def test_single_slice_has_zero_stddev(self):
        stats = BranchPhaseStats(1, 10, 1, [0.3])
        assert stats.phase_stddev == 0.0


class TestSelectionIntegration:
    def test_filter_drops_easy_branch_only(self, two_d):
        program, profile2d = two_d
        profile = Profiler().profile(program, memory=phased_memory())
        unfiltered = select_diverge_branches(
            program, profile, SelectionConfig()
        )
        filtered = select_diverge_branches(
            program,
            profile,
            SelectionConfig(),
            two_d_profile=profile2d,
        )
        assert unfiltered.is_diverge(EASY_PC)
        assert not filtered.is_diverge(EASY_PC)
        assert filtered.is_diverge(PHASED_PC)

    def test_filtered_is_subset(self, two_d):
        program, profile2d = two_d
        profile = Profiler().profile(program, memory=phased_memory())
        unfiltered = select_diverge_branches(
            program, profile, SelectionConfig()
        )
        filtered = select_diverge_branches(
            program, profile, SelectionConfig(), two_d_profile=profile2d
        )
        assert {b.branch_pc for b in filtered} <= {
            b.branch_pc for b in unfiltered
        }
