"""Profiling tests: edge, branch, loop profiles, and the Profiler."""

import pytest

from repro.branchpred import BimodalPredictor
from repro.profiling import (
    BranchProfile,
    EdgeProfile,
    LoopProfile,
    Profiler,
)


class TestEdgeProfile:
    def test_counts_and_probability(self):
        profile = EdgeProfile()
        for _ in range(3):
            profile.record(10, True)
        profile.record(10, False)
        assert profile.exec_count(10) == 4
        assert profile.taken_prob(10) == pytest.approx(0.75)
        assert profile.edge_prob(10, False) == pytest.approx(0.25)

    def test_unexecuted_branch_default(self):
        profile = EdgeProfile()
        assert profile.taken_prob(99) == 0.5
        assert profile.taken_prob(99, default=0.9) == 0.9
        assert profile.exec_count(99) == 0

    def test_executed_branch_pcs_sorted(self):
        profile = EdgeProfile()
        profile.record(9, True)
        profile.record(2, False)
        assert profile.executed_branch_pcs() == [2, 9]


class TestBranchProfile:
    def test_misprediction_rate(self):
        profile = BranchProfile()
        for i in range(10):
            profile.record(4, mispredicted=i < 3)
        assert profile.exec_count(4) == 10
        assert profile.misprediction_rate(4) == pytest.approx(0.3)

    def test_branches_above_rate(self):
        profile = BranchProfile()
        for i in range(10):
            profile.record(1, mispredicted=i < 1)   # 10%
            profile.record(2, mispredicted=i < 5)   # 50%
        assert profile.branches_above_rate(0.2) == [2]

    def test_totals(self):
        profile = BranchProfile()
        profile.record(1, True)
        profile.record(2, False)
        assert profile.total_executed() == 2
        assert profile.total_mispredictions() == 1

    def test_never_executed(self):
        assert BranchProfile().misprediction_rate(7) == 0.0


class TestLoopProfile:
    def test_average_run_length(self):
        profile = LoopProfile()
        # two "taken" runs of lengths 3 and 1, separated by not-takens
        for taken in (True, True, True, False, True, False):
            profile.record(5, taken)
        profile.finish()
        assert profile.average_run_length(5, True) == pytest.approx(2.0)
        assert profile.average_run_length(5, False) == pytest.approx(1.0)

    def test_average_iterations_is_run_plus_one(self):
        profile = LoopProfile()
        # a do-while executing 4 iterations: taken,taken,taken,not-taken
        for _ in range(5):
            for taken in (True, True, True, False):
                profile.record(8, taken)
        profile.finish()
        assert profile.average_iterations(8, True) == pytest.approx(4.0)

    def test_unseen_branch(self):
        profile = LoopProfile()
        profile.finish()
        assert profile.average_iterations(3, True) == 1.0

    def test_finish_flushes_open_run(self):
        profile = LoopProfile()
        profile.record(1, True)
        profile.record(1, True)
        profile.finish()
        assert profile.average_run_length(1, True) == pytest.approx(2.0)


class TestProfiler:
    def test_end_to_end(self, simple_hammock_program, alternating_memory):
        data = Profiler().profile(
            simple_hammock_program, memory=alternating_memory
        )
        assert data.halted
        assert data.total_instructions > 500
        assert data.total_branches > 100
        hammock_pc = 6
        assert data.edge_profile.taken_prob(hammock_pc) == pytest.approx(
            0.5, abs=0.05
        )
        assert 0 <= data.measured_acc_conf <= 1

    def test_mpki_consistency(self, simple_hammock_program,
                              alternating_memory):
        data = Profiler().profile(
            simple_hammock_program, memory=alternating_memory
        )
        expected = 1000 * data.total_mispredictions / data.total_instructions
        assert data.mpki == pytest.approx(expected)

    def test_custom_predictor(self, simple_hammock_program,
                              alternating_memory):
        data = Profiler(predictor=BimodalPredictor()).profile(
            simple_hammock_program, memory=alternating_memory
        )
        # bimodal cannot learn the alternating hammock: ~50% misp there
        hammock_pc = 6
        assert data.branch_profile.misprediction_rate(hammock_pc) > 0.3

    def test_loop_trip_counts_profiled(self, loop_program):
        memory = {i: (i % 3) + 1 for i in range(100)}  # trips 1..3
        data = Profiler().profile(loop_program, memory=memory)
        latch_pc = next(
            pc
            for pc in loop_program.conditional_branch_pcs()
            if loop_program[pc].target <= pc
        )
        average = data.loop_profile.average_iterations(latch_pc, True)
        # Trip counts cycle 1,2,3.  Single-trip instances produce no
        # "taken" run at the latch, so run-length profiling sees only
        # the trips ≥ 2: average run (1+2)/2 = 1.5 → 2.5 iterations.
        # This over-estimate for tiny trips is a documented property.
        assert average == pytest.approx(2.5, abs=0.1)

    def test_edge_prob_passthrough(self, simple_hammock_program,
                                   alternating_memory):
        data = Profiler().profile(
            simple_hammock_program, memory=alternating_memory
        )
        assert data.edge_prob(6, True) == data.edge_profile.edge_prob(6, True)
