"""Vectorized batch-replay engine: bit-identity and engine selection.

The contract under test (see ``repro.uarch.vectorized``): the
vectorized engine produces *bit-identical* ``SimStats`` — including
per-branch counters, runtime-ledger rows, and the tracer event stream
— to the scalar engine for every supported (program, config,
annotation) triple, at every window size.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SelectionConfig, select_diverge_branches
from repro.emulator import execute
from repro.errors import SimulationError
from repro.isa import assemble
from repro.obs.ledger import RuntimeLedger
from repro.obs.tracer import ListSink, Tracer
from repro.profiling import Profiler
from repro.uarch import (
    ProcessorConfig,
    TimingSimulator,
    VectorizedTimingSimulator,
    engine_override,
    get_default_engine,
    make_simulator,
    resolve_engine,
    set_default_engine,
    vectorized_support,
)
from repro.uarch.engine import ENV_SIM_ENGINE
from repro.workloads import load_benchmark
from repro.workloads.generator import (
    BenchmarkSpec,
    Region,
    build_program,
    fill_memory,
)
from repro.workloads.suite import BENCHMARK_SPECS

from tests.test_simulator_dmp import hammock_annotation, hammock_setup


def _trace_of(workload):
    trace, _ = execute(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
        compact=True,
    )
    return trace


def _profiled_trace(program, memory, max_instructions=200_000):
    """Emulate once, returning ``(trace, branch profile)``."""
    profiler = Profiler()
    collector = profiler.collector()
    trace, result = execute(
        program, memory=memory, max_instructions=max_instructions,
        on_branch=collector.on_branch, compact=True,
    )
    return trace, collector.finish(result)


def _run_pair(program, trace, annotation=None, config=None,
              window_size=None, label="run"):
    """Scalar and vectorized stats dicts + ledger rows for one input."""
    out = []
    for cls in (TimingSimulator, VectorizedTimingSimulator):
        kwargs = {}
        if cls is VectorizedTimingSimulator and window_size is not None:
            kwargs["window_size"] = window_size
        ledger = RuntimeLedger()
        stats = cls(
            program, config=config, annotation=annotation,
            collect_per_branch=True, ledger=ledger, **kwargs
        ).run(trace, label=label)
        out.append((stats.as_dict(per_branch=True), ledger._branches))
    return out


class TestSuiteBitIdentity:
    """Every workload, baseline + both selection presets."""

    @pytest.mark.parametrize("name", sorted(BENCHMARK_SPECS))
    def test_workload(self, name):
        workload = load_benchmark(name, scale=0.05)
        trace, profile = _profiled_trace(
            workload.program, workload.memory,
            workload.max_instructions,
        )
        annotations = [None]
        for config in (SelectionConfig.all_best_heur(),
                       SelectionConfig.all_best_cost()):
            annotations.append(select_diverge_branches(
                workload.program, profile, config
            ))
        for annotation in annotations:
            (scalar, scalar_led), (vec, vec_led) = _run_pair(
                workload.program, trace, annotation, label=name
            )
            assert scalar == vec
            assert scalar_led == vec_led


class TestEventStreamIdentity:
    @pytest.mark.parametrize("name", ["twolf", "gzip"])
    def test_tracer_events_identical(self, name):
        workload = load_benchmark(name, scale=0.05)
        trace, profile = _profiled_trace(
            workload.program, workload.memory,
            workload.max_instructions,
        )
        annotation = select_diverge_branches(
            workload.program, profile, SelectionConfig.all_best_heur()
        )
        streams = []
        for cls in (TimingSimulator, VectorizedTimingSimulator):
            sink = ListSink()
            cls(workload.program, annotation=annotation,
                tracer=Tracer(sink)).run(trace, label=name)
            streams.append(json.dumps(sink.records, sort_keys=True))
        assert streams[0] == streams[1]


class TestWindowBoundaries:
    def test_window_sweep_with_episodes(self):
        """Tiny windows force episode entries/flushes onto boundaries."""
        program, trace = hammock_setup()
        annotation = hammock_annotation()
        reference = TimingSimulator(
            program, annotation=annotation
        ).run(trace).as_dict()
        assert reference["dpred_episodes"] > 0
        for window_size in (1, 2, 3, 5, 7, 16, 64, 1000):
            got = VectorizedTimingSimulator(
                program, annotation=annotation, window_size=window_size
            ).run(trace).as_dict()
            assert got == reference, f"window_size={window_size}"

    def test_episode_entry_pinned_on_window_edge(self):
        """Windows cut exactly at the first diverge-branch row."""
        from repro.emulator import trace_rows
        from tests.test_simulator_dmp import HAMMOCK_BRANCH

        program, trace = hammock_setup()
        annotation = hammock_annotation(always=True)
        first = next(
            i for i, (pc, _, _) in enumerate(trace_rows(trace))
            if pc == HAMMOCK_BRANCH
        )
        reference = TimingSimulator(
            program, annotation=annotation
        ).run(trace).as_dict()
        assert reference["dpred_episodes"] > 0
        for window_size in (first, first + 1, max(1, first - 1)):
            got = VectorizedTimingSimulator(
                program, annotation=annotation, window_size=window_size
            ).run(trace).as_dict()
            assert got == reference, f"window_size={window_size}"

    def test_object_trace(self):
        workload = load_benchmark("gzip", scale=0.05)
        trace, _ = execute(
            workload.program, memory=workload.memory,
            max_instructions=workload.max_instructions, compact=False,
        )
        assert TimingSimulator(workload.program).run(trace).as_dict() \
            == VectorizedTimingSimulator(
                workload.program).run(trace).as_dict()

    def test_window_size_validated(self):
        workload = load_benchmark("gzip", scale=0.05)
        with pytest.raises(SimulationError):
            VectorizedTimingSimulator(workload.program, window_size=0)


REGION_KINDS = (
    "simple_hammock", "nested_hammock", "freq_hammock",
    "short_hammock", "split", "ret_hammock", "diverge_loop",
    "long_loop", "compute", "memory",
)


@st.composite
def random_workloads(draw):
    regions = tuple(
        Region(
            kind=draw(st.sampled_from(REGION_KINDS)),
            behavior=draw(st.sampled_from(("biased", "markov",
                                           "pattern"))),
            p=draw(st.floats(min_value=0.05, max_value=0.95)),
            side_insts=draw(st.integers(min_value=1, max_value=10)),
            body_insts=draw(st.integers(min_value=1, max_value=8)),
            mean_iters=draw(st.floats(min_value=1.0, max_value=6.0)),
            trip_kind=draw(st.sampled_from(("geometric", "jittery",
                                            "uniform"))),
        )
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    return (
        regions,
        draw(st.integers(min_value=16, max_value=60)),   # iterations
        draw(st.integers(min_value=0, max_value=2**31)),  # memory seed
        draw(st.sampled_from((1, 3, 7, 64, 1 << 15))),    # window
        draw(st.booleans()),                              # annotate?
    )


class TestPropertyBitIdentity:
    @given(random_workloads())
    @settings(max_examples=25, deadline=None)
    def test_random_programs(self, params):
        regions, iterations, seed, window_size, annotate = params
        spec = BenchmarkSpec(
            name="prop", regions=regions, iterations=iterations
        )
        program, segments = build_program(spec)
        memory = fill_memory(spec, segments, seed)
        trace, profile = _profiled_trace(program, memory)
        annotation = None
        if annotate:
            annotation = select_diverge_branches(
                program, profile, SelectionConfig.all_best_heur()
            )
        (scalar, scalar_led), (vec, vec_led) = _run_pair(
            program, trace, annotation, window_size=window_size
        )
        assert scalar == vec
        assert scalar_led == vec_led


class TestEngineSelection:
    def teardown_method(self):
        set_default_engine(None)

    def test_auto_picks_vectorized_when_supported(self):
        workload = load_benchmark("gzip", scale=0.05)
        assert resolve_engine(workload.program) == "vectorized"
        assert isinstance(make_simulator(workload.program),
                          VectorizedTimingSimulator)

    def test_auto_falls_back_on_unsupported_program(self):
        """A tiny I-cache breaks residency → auto quietly uses scalar."""
        workload = load_benchmark("gzip", scale=0.05)
        tiny = ProcessorConfig(icache_kb=1, icache_assoc=1)
        ok, reason = vectorized_support(workload.program, tiny)
        assert not ok and "residency" in reason
        assert resolve_engine(workload.program, tiny) == "scalar"
        simulator = make_simulator(workload.program, config=tiny)
        assert type(simulator) is TimingSimulator

    def test_explicit_vectorized_on_unsupported_raises(self):
        workload = load_benchmark("gzip", scale=0.05)
        tiny = ProcessorConfig(icache_kb=1, icache_assoc=1)
        with pytest.raises(SimulationError):
            resolve_engine(workload.program, tiny, engine="vectorized")
        with pytest.raises(SimulationError):
            VectorizedTimingSimulator(workload.program, config=tiny)

    def test_precedence_explicit_beats_config_beats_default(self):
        workload = load_benchmark("gzip", scale=0.05)
        scalar_cfg = ProcessorConfig(sim_engine="scalar")
        set_default_engine("vectorized")
        assert resolve_engine(workload.program, scalar_cfg) == "scalar"
        assert resolve_engine(
            workload.program, scalar_cfg, engine="vectorized"
        ) == "vectorized"
        # auto in the config defers to the process default.
        auto_cfg = ProcessorConfig(sim_engine="auto")
        set_default_engine("scalar")
        assert resolve_engine(workload.program, auto_cfg) == "scalar"

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv(ENV_SIM_ENGINE, "scalar")
        assert get_default_engine() == "scalar"
        monkeypatch.setenv(ENV_SIM_ENGINE, "bogus")
        assert get_default_engine() == "auto"

    def test_engine_override_restores(self):
        with engine_override("scalar"):
            assert get_default_engine() == "scalar"
        assert get_default_engine() == "auto"

    def test_set_default_engine_validates(self):
        with pytest.raises(ValueError):
            set_default_engine("hyperspeed")

    def test_config_validate_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            ProcessorConfig(sim_engine="bogus").validate()

    def test_unknown_engine_name_raises(self):
        workload = load_benchmark("gzip", scale=0.05)
        with pytest.raises(SimulationError):
            resolve_engine(workload.program, engine="warp")


class TestProfileCliEngine:
    def test_profile_json_validates_with_vectorized(self, tmp_path,
                                                    capsys):
        from repro.obs.profile_cli import main, validate_profile

        out = tmp_path / "profile.json"
        assert main(["gzip", "--scale", "0.1", "--json",
                     "--sim-engine", "vectorized",
                     "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["engine"] == "vectorized"
        assert validate_profile(data) == []

    def test_profile_engine_scalar_reported(self):
        from repro.obs.profile_cli import build_profile

        data = build_profile(
            "gzip", SelectionConfig.all_best_cost(), scale=0.1,
            engine="scalar",
        )
        assert data["engine"] == "scalar"
