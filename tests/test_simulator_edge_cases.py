"""Edge-case tests for the DMP timing simulator."""

import random

import pytest

from repro.core import (
    BinaryAnnotation,
    CFMKind,
    CFMPoint,
    DivergeBranch,
    DivergeKind,
)
from repro.emulator import execute
from repro.isa import assemble
from repro.uarch import ProcessorConfig, TimingSimulator, simulate


def hammock_program(iterations=300):
    return assemble(
        f"""
        .func main
            movi r1, 0
            movi r2, {iterations}
        loop:
            cmpge r4, r1, r2
            bnez r4, done
            ld r3, 0(r1)
            bnez r3, then
            addi r6, r6, 1
            jmp merge
        then:
            addi r7, r7, 1
        merge:
            addi r8, r8, 1
            addi r1, r1, 1
            jmp loop
        done:
            halt
        .endfunc
        """
    )


BRANCH_PC = 5
MERGE_PC = 9


def random_memory(n=300, seed=11):
    rng = random.Random(seed)
    return {i: rng.randrange(2) for i in range(n)}


def mark(cfm_pc, **kwargs):
    points = ()
    if cfm_pc is not None:
        points = (CFMPoint(pc=cfm_pc, kind=CFMKind.EXACT),)
    return BinaryAnnotation(
        "t",
        [
            DivergeBranch(
                branch_pc=BRANCH_PC,
                kind=DivergeKind.SIMPLE_HAMMOCK,
                cfm_points=points,
                select_registers=frozenset({6, 7}),
                **kwargs,
            )
        ],
    )


class TestCFMPlacement:
    def test_unreachable_cfm_degrades_to_dual_path(self):
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        # CFM that the true path never visits: the halt instruction.
        halt_pc = len(program) - 1
        stats = simulate(program, trace, annotation=mark(halt_pc))
        assert stats.dpred_episodes > 0
        assert stats.dpred_episodes_merged == 0

    def test_correct_cfm_merges(self):
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        stats = simulate(program, trace, annotation=mark(MERGE_PC))
        assert stats.dpred_episodes_merged > 0
        assert stats.merge_rate > 0.9


class TestEpisodeInterruption:
    def test_inner_misprediction_squashes_episode(self):
        # Mark the outer loop-exit branch: episodes opened there get
        # squashed whenever the hammock branch inside mispredicts.
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        annotation = BinaryAnnotation(
            "t",
            [
                DivergeBranch(
                    branch_pc=3,  # outer bnez r4, done
                    kind=DivergeKind.NESTED_HAMMOCK,
                    cfm_points=(
                        CFMPoint(pc=len(program) - 1, kind=CFMKind.EXACT),
                    ),
                    always_predicate=True,
                )
            ],
        )
        stats = simulate(program, trace, annotation=annotation)
        # the inner hammock still flushes normally
        assert stats.pipeline_flushes > 0

    def test_one_episode_at_a_time(self):
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        annotation = mark(MERGE_PC, always_predicate=True)
        stats = simulate(program, trace, annotation=annotation)
        executions = sum(
            1 for d in trace if d.pc == BRANCH_PC
        )
        assert stats.dpred_episodes <= executions


class TestConfigurationKnobs:
    def test_narrow_fetch_is_slower(self):
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        wide = simulate(program, trace, config=ProcessorConfig())
        narrow = simulate(
            program, trace, config=ProcessorConfig(fetch_width=2)
        )
        assert narrow.cycles > wide.cycles

    def test_higher_penalty_hurts_baseline_more_than_dmp(self):
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        config = ProcessorConfig(redirect_penalty=30)
        base = simulate(program, trace, config=config)
        dmp = simulate(program, trace, config=config,
                       annotation=mark(MERGE_PC))
        cheap = ProcessorConfig(redirect_penalty=1)
        base_cheap = simulate(program, trace, config=cheap)
        dmp_cheap = simulate(program, trace, config=cheap,
                             annotation=mark(MERGE_PC))
        gain_expensive = base.cycles - dmp.cycles
        gain_cheap = base_cheap.cycles - dmp_cheap.cycles
        assert gain_expensive > gain_cheap

    def test_confidence_threshold_gates_episodes(self):
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        eager = simulate(
            program,
            trace,
            config=ProcessorConfig(confidence_threshold=15),
            annotation=mark(MERGE_PC),
        )
        shy = simulate(
            program,
            trace,
            config=ProcessorConfig(confidence_threshold=1),
            annotation=mark(MERGE_PC),
        )
        assert eager.dpred_episodes > shy.dpred_episodes

    def test_tournament_predictor_config(self):
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        stats = simulate(
            program,
            trace,
            config=ProcessorConfig(predictor_kind="tournament"),
        )
        assert stats.retired_instructions == len(trace)


class TestWarmICache:
    def test_static_code_does_not_pay_cold_memory_latency(self):
        program = hammock_program(iterations=20)
        trace, _ = execute(program, memory=random_memory(20))
        stats = simulate(program, trace)
        # warming leaves no I-cache misses at all on this tiny footprint
        assert stats.icache_misses == 0
        # and the run is nowhere near the ~312-cycles-per-line regime
        # (flushes and a few cold D-misses dominate instead)
        assert stats.cycles < 10 * len(trace)


class TestResourceConstraints:
    def test_cfm_registers_cap_episode_cfms(self):
        program = hammock_program()
        memory = random_memory()
        trace, _ = execute(program, memory=memory)
        # hand-written annotation with more CFM points than registers
        points = tuple(
            CFMPoint(pc=pc, kind=CFMKind.APPROXIMATE, merge_prob=0.5)
            for pc in (MERGE_PC, MERGE_PC + 1, MERGE_PC + 2,
                       len(program) - 1)
        )
        annotation = BinaryAnnotation(
            "t",
            [
                DivergeBranch(
                    branch_pc=BRANCH_PC,
                    kind=DivergeKind.FREQUENTLY_HAMMOCK,
                    cfm_points=points,
                )
            ],
        )
        stats = simulate(program, trace, annotation=annotation)
        # still runs and merges at one of the tracked points
        assert stats.dpred_episodes > 0

    def test_predicate_registers_bound_loop_depth(self):
        loop_text = """
        .func main
            movi r1, 0
            movi r2, 120
        outer:
            cmpge r4, r1, r2
            bnez r4, done
            ld r3, 0(r1)
        inner:
            addi r5, r5, 1
            addi r3, r3, -1
            bnez r3, inner
            addi r1, r1, 1
            jmp outer
        done:
            halt
        .endfunc
        """
        program = assemble(loop_text)
        rng = random.Random(5)
        memory = {i: rng.randrange(1, 9) for i in range(120)}
        trace, _ = execute(program, memory=memory)
        annotation = BinaryAnnotation(
            "l",
            [
                DivergeBranch(
                    branch_pc=7,
                    kind=DivergeKind.LOOP,
                    cfm_points=(
                        CFMPoint(pc=8, kind=CFMKind.LOOP_EXIT),
                    ),
                    select_registers=frozenset({3, 5}),
                    loop_direction=True,
                    loop_body_size=3,
                )
            ],
        )
        few = simulate(
            program, trace,
            config=ProcessorConfig(num_predicate_registers=1),
            annotation=annotation,
        )
        many = simulate(
            program, trace,
            config=ProcessorConfig(num_predicate_registers=32),
            annotation=annotation,
        )
        # fewer predicate registers => fewer select-µops per episode
        assert few.dpred_select_uops <= many.dpred_select_uops
