"""Cache and memory-hierarchy tests."""

import pytest

from repro.errors import SimulationError
from repro.memory import Cache, MemoryHierarchy


class TestCache:
    def test_first_access_misses_then_hits(self):
        cache = Cache("t", num_sets=4, associativity=2, words_per_line=8)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(7)  # same line
        assert not cache.access(8)  # next line

    def test_lru_eviction(self):
        cache = Cache("t", num_sets=1, associativity=2, words_per_line=1)
        cache.access(0)
        cache.access(1)
        cache.access(0)      # 0 is now MRU
        cache.access(2)      # evicts 1
        assert cache.access(0)
        assert not cache.access(1)

    def test_associativity_respected(self):
        cache = Cache("t", num_sets=1, associativity=4, words_per_line=1)
        for address in range(4):
            cache.access(address)
        assert all(cache.access(a) for a in range(4))

    def test_set_mapping(self):
        cache = Cache("t", num_sets=2, associativity=1, words_per_line=1)
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.access(0) and cache.access(1)

    def test_from_kilobytes_geometry(self):
        cache = Cache.from_kilobytes("l1", 64, 4)
        # 64KB / 64B lines = 1024 lines; 4-way => 256 sets
        assert cache.num_sets == 256
        assert cache.associativity == 4
        assert cache.words_per_line == 8

    def test_contains_does_not_mutate(self):
        cache = Cache("t", num_sets=2, associativity=1, words_per_line=1)
        assert not cache.contains(3)
        assert cache.misses == 0

    def test_stats(self):
        cache = Cache("t", num_sets=4, associativity=2)
        cache.access(0)
        cache.access(0)
        assert cache.accesses == 2
        assert cache.miss_rate == pytest.approx(0.5)
        cache.reset()
        assert cache.accesses == 0

    def test_bad_geometry(self):
        with pytest.raises(SimulationError):
            Cache("t", num_sets=0, associativity=1)


class TestHierarchy:
    def test_data_latency_levels(self):
        mem = MemoryHierarchy(prefetch_next_line=False)
        cold = mem.data_latency(0)
        warm = mem.data_latency(0)
        assert cold == (mem.dcache_latency + mem.l2_latency
                        + mem.memory_latency)
        assert warm == mem.dcache_latency

    def test_l2_hit_after_l1_eviction(self):
        mem = MemoryHierarchy(prefetch_next_line=False)
        mem.data_latency(0)
        # Evict line 0 from the (64KB, 4-way) L1 by touching 5 aliases.
        l1_span = mem.dcache.num_sets * mem.dcache.words_per_line
        for i in range(1, 6):
            mem.data_latency(i * l1_span)
        latency = mem.data_latency(0)
        assert latency == mem.dcache_latency + mem.l2_latency

    def test_instruction_latency_levels(self):
        mem = MemoryHierarchy()
        cold = mem.instruction_latency(0)
        warm = mem.instruction_latency(0)
        assert cold > warm == mem.icache_latency

    def test_next_line_prefetch_hides_sequential_stream(self):
        mem = MemoryHierarchy(prefetch_next_line=True)
        mem.data_latency(0)  # miss, prefetches line 1
        latency = mem.data_latency(8)  # line 1: prefetched
        assert latency == mem.dcache_latency

    def test_prefetch_does_not_help_random_chase(self):
        mem = MemoryHierarchy(prefetch_next_line=True)
        mem.data_latency(0)
        # A far-away line was not prefetched.
        assert mem.data_latency(10_000) > mem.dcache_latency

    def test_code_and_data_do_not_collide_in_l2(self):
        mem = MemoryHierarchy()
        mem.instruction_latency(0)
        # data address 0 still misses L2 (code went to a distinct range)
        latency = mem.data_latency(0)
        assert latency >= mem.dcache_latency + mem.l2_latency

    def test_reset(self):
        mem = MemoryHierarchy()
        mem.data_latency(0)
        mem.reset()
        assert mem.dcache.accesses == 0
        assert mem.data_latency(0) > mem.dcache_latency
