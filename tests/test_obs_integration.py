"""End-to-end telemetry: trace events reconcile with SimStats, CLI flags,
trace-report, the runner's keyed caches, and SimStats helpers."""

import json

import pytest

from repro.__main__ import main
from repro.core import SelectionConfig, select_diverge_branches
from repro.emulator import execute
from repro.experiments import runner
from repro.obs import (
    ListSink,
    MetricsRegistry,
    Tracer,
    format_trace_report,
    read_manifest,
    summarize_trace,
    telemetry,
)
from repro.profiling import Profiler
from repro.uarch import SimStats, TimingSimulator
from repro.workloads import load_benchmark


def _dmp_run(tracer, metrics, name="gzip", scale=0.1):
    """Profile → select → simulate one benchmark under telemetry."""
    workload = load_benchmark(name, scale=scale)
    trace, result = execute(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    assert result.halted
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    with telemetry(tracer=tracer, metrics=metrics):
        annotation = select_diverge_branches(
            workload.program, profile, SelectionConfig.all_best_heur()
        )
        simulator = TimingSimulator(
            workload.program, annotation=annotation
        )
        stats = simulator.run(trace, label=f"{name}/dmp")
    return stats, annotation


class TestTraceReconciliation:
    """Acceptance criterion: aggregate event counts equal SimStats."""

    @pytest.fixture(scope="class")
    def run(self):
        sink = ListSink()
        stats, annotation = _dmp_run(Tracer(sink), MetricsRegistry())
        return sink, stats, annotation

    def _count(self, sink, type_name):
        return sum(1 for r in sink.records if r["type"] == type_name)

    def test_episode_starts_equal_dpred_episodes(self, run):
        sink, stats, _ = run
        assert stats.dpred_episodes > 0
        assert self._count(sink, "dpred.episode.start") \
            == stats.dpred_episodes

    def test_episode_merges_equal_dpred_episodes_merged(self, run):
        sink, stats, _ = run
        assert stats.dpred_episodes_merged > 0
        assert self._count(sink, "dpred.episode.merge") \
            == stats.dpred_episodes_merged

    def test_flush_events_equal_pipeline_flushes(self, run):
        sink, stats, _ = run
        assert self._count(sink, "uarch.pipeline.flush") \
            == stats.pipeline_flushes

    def test_flushes_avoided_match_mispredicted_episode_starts(self, run):
        sink, stats, _ = run
        avoided_starts = sum(
            1 for r in sink.records
            if r["type"] == "dpred.episode.start" and r["mispredicted"]
        )
        # Loop episodes can cover *additional* late-exit mispredictions
        # after the start, so the start events are a lower bound.
        assert avoided_starts <= stats.dpred_flushes_avoided

    def test_every_episode_start_names_an_annotated_branch(self, run):
        sink, _, annotation = run
        for record in sink.records:
            if record["type"] == "dpred.episode.start":
                assert annotation.is_diverge(record["branch_pc"])

    def test_selection_events_match_annotation_size(self, run):
        sink, _, annotation = run
        assert self._count(sink, "select.branch.selected") \
            == len(annotation)

    def test_icache_miss_events_match_stats(self, run):
        sink, stats, _ = run
        assert self._count(sink, "uarch.cache.miss") \
            == stats.icache_misses

    def test_run_end_totals_match(self, run):
        sink, stats, _ = run
        (end,) = [r for r in sink.records if r["type"] == "sim.run.end"]
        assert end["retired_instructions"] == stats.retired_instructions
        assert end["cycles"] == stats.cycles
        assert end["dpred_episodes"] == stats.dpred_episodes


class TestRunMetrics:
    def test_registry_totals_match_stats(self):
        registry = MetricsRegistry()
        sink = ListSink()
        stats, _ = _dmp_run(Tracer(sink), registry)
        assert registry.counter("sim_runs_total").value == 1
        assert registry.counter("sim_instructions_total").value \
            == stats.retired_instructions
        assert registry.counter("sim_dpred_episodes_total").value \
            == stats.dpred_episodes
        assert registry.counter("sim_pipeline_flushes_total").value \
            == stats.pipeline_flushes
        hist = registry.get("dpred_episode_cycles")
        assert hist is not None
        # Squashed episodes may not be observed at end-of-trace, but
        # merged + unmerged ones all are.
        assert hist.total >= stats.dpred_episodes_merged
        assert registry.counter("wrongpath_walks_total").value > 0
        assert registry.gauge("confidence_pvn").value \
            == pytest.approx(stats.measured_acc_conf)


class TestCli:
    def test_trace_metrics_manifest_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        manifest_path = tmp_path / "mf.json"
        status = main([
            "fig5", "--scale", "0.05", "--benchmarks", "gzip",
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
            "--manifest", str(manifest_path),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "phase timings" in out

        # The trace is parseable JSONL with the core event families.
        types = {
            json.loads(line)["type"]
            for line in trace_path.read_text().splitlines()
        }
        assert "dpred.episode.start" in types
        assert "sim.run.end" in types
        assert "select.branch.selected" in types

        metrics = json.loads(metrics_path.read_text())
        assert metrics["sim_runs_total"]["value"] > 0
        assert "cache_artifacts_hits_total" in metrics

        manifest = read_manifest(str(manifest_path))
        assert manifest["schema"].startswith("dmp-repro/")
        assert "simulate" in manifest["phases"]
        assert manifest["scale"] == 0.05

        # And trace-report summarizes it without error.
        status = main(["trace-report", str(trace_path)])
        assert status == 0
        report = capsys.readouterr().out
        assert "reconciliation vs sim.run.end totals: OK" in report
        assert "selection decisions" in report

    def test_trace_report_requires_path(self):
        with pytest.raises(SystemExit):
            main(["trace-report"])

    def test_stray_path_rejected_for_other_artifacts(self):
        with pytest.raises(SystemExit):
            main(["fig5", "extra.jsonl"])


class TestTraceReportSummary:
    def test_summarize_counts_and_formats(self, tmp_path):
        from repro.obs import jsonl_tracer

        path = str(tmp_path / "t.jsonl")
        tracer = jsonl_tracer(path)
        stats, _ = _dmp_run(tracer, MetricsRegistry(), scale=0.05)
        tracer.close()
        summary = summarize_trace(path)
        assert summary["reconciliation"]["consistent"]
        assert summary["reconciliation"]["episode_starts"] \
            == stats.dpred_episodes
        assert sum(
            entry["episodes"] for entry in summary["branches"].values()
        ) == stats.dpred_episodes
        text = format_trace_report(summary)
        assert "per-branch dpred episode outcomes" in text


class TestKeyedCache:
    def test_hit_miss_eviction_counters(self):
        registry = MetricsRegistry()
        with telemetry(metrics=registry):
            cache = runner.KeyedCache("probe", max_entries=2)
            assert cache.get("a") is None
            cache.put("a", 1)
            cache.put("b", 2)
            assert cache.get("a") == 1
            cache.put("c", 3)          # evicts "b" (LRU)
            assert "b" not in cache
            assert "a" in cache
            assert len(cache) == 2
        assert registry.counter("cache_probe_misses_total").value == 1
        assert registry.counter("cache_probe_hits_total").value == 1
        assert registry.counter("cache_probe_evictions_total").value == 1

    def test_bounded_growth(self):
        cache = runner.KeyedCache("bound", max_entries=4)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 4

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            runner.KeyedCache("bad", max_entries=0)

    def test_runner_caches_record_hits(self):
        registry = MetricsRegistry()
        with telemetry(metrics=registry):
            runner.clear_cache()
            first = runner.get_artifacts("gzip", scale=0.05)
            second = runner.get_artifacts("gzip", scale=0.05)
        assert first is second
        assert registry.counter("cache_artifacts_hits_total").value == 1
        assert registry.counter("cache_artifacts_misses_total").value == 1
        runner.clear_cache()


class TestSimStatsHelpers:
    def test_as_dict_has_counters_and_derived(self):
        stats = SimStats(label="x", cycles=100, retired_instructions=200,
                         mispredictions=4)
        snapshot = stats.as_dict()
        assert snapshot["label"] == "x"
        assert snapshot["cycles"] == 100
        assert snapshot["ipc"] == pytest.approx(2.0)
        assert snapshot["mpki"] == pytest.approx(20.0)
        assert "per_branch" not in snapshot
        assert "ipc" not in stats.as_dict(derived=False)

    def test_as_dict_per_branch(self):
        stats = SimStats(per_branch={3: {"executions": 5}})
        snapshot = stats.as_dict(per_branch=True)
        assert snapshot["per_branch"] == {"3": {"executions": 5}}

    def test_derived_safe_at_zero_instructions(self):
        stats = SimStats(cycles=10)
        assert stats.ipc == 0.0
        assert stats.mpki == 0.0
        assert stats.flushes_per_kilo_inst == 0.0
        assert stats.measured_acc_conf == 0.0
        assert stats.merge_rate == 0.0
        # All derived values survive the json snapshot too.
        json.dumps(stats.as_dict())

    def test_merge_sums_counters(self):
        a = SimStats(label="a", cycles=10, retired_instructions=100,
                     dpred_episodes=2,
                     per_branch={1: {"executions": 3}})
        b = SimStats(label="b", cycles=20, retired_instructions=50,
                     dpred_episodes=1,
                     per_branch={1: {"executions": 2},
                                 2: {"executions": 7}})
        merged = a.merge(b, label="a+b")
        assert merged.label == "a+b"
        assert merged.cycles == 30
        assert merged.retired_instructions == 150
        assert merged.dpred_episodes == 3
        assert merged.ipc == pytest.approx(5.0)
        assert merged.per_branch == {
            1: {"executions": 5},
            2: {"executions": 7},
        }

    def test_merge_keeps_first_label_by_default(self):
        assert SimStats(label="a").merge(SimStats(label="b")).label == "a"
