"""Tracer, sinks, event round-trips, timers, context, manifests."""

import dataclasses
import json

import pytest

from repro.obs import (
    JsonlSink,
    ListSink,
    MetricsRegistry,
    NULL_TRACER,
    PhaseProfile,
    Tracer,
    build_manifest,
    events,
    get_metrics,
    get_tracer,
    iter_records,
    jsonl_tracer,
    phase,
    read_events,
    read_manifest,
    telemetry,
    write_manifest,
)

SAMPLE_EVENTS = [
    events.DpredEpisodeStart(branch_pc=7, kind="hammock", cycle=100,
                             mispredicted=True, wrong_path_insts=12),
    events.DpredEpisodeMerge(branch_pc=7, cycle=130, duration_cycles=30,
                             select_uops=3),
    events.DpredEpisodeEnd(branch_pc=9, cycle=10, duration_cycles=4,
                           reason="resolved-unmerged"),
    events.DpredEpisodeFlush(branch_pc=9, cycle=50, duration_cycles=2,
                             flushed_by_pc=11,
                             source="branch-mispredict"),
    events.BranchSelected(branch_pc=3, kind="simple", source="exact",
                          always_predicate=False, num_cfm_points=1,
                          num_select_uops=2, dpred_cost=-1.5,
                          dpred_overhead=2.5, merge_prob_total=1.0),
    events.BranchRejected(branch_pc=4, reason="cost-model",
                          dpred_cost=0.7),
    events.PipelineFlush(pc=5, cycle=60, source="return-mispredict"),
    events.CacheMiss(level="icache", pc=6, cycle=70, stall_cycles=9),
    events.SimRunStart(label="gzip/dmp", trace_length=1000,
                       dmp_enabled=True),
    events.SimRunEnd(label="gzip/dmp", cycles=500,
                     retired_instructions=1000, pipeline_flushes=2,
                     dpred_episodes=3, dpred_episodes_merged=2),
    events.PhaseEnd(name="simulate", seconds=0.5, events=1000),
]


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(SAMPLE_EVENTS[0])  # no-op, no error
        NULL_TRACER.close()

    def test_null_tracer_adds_zero_events_in_a_run(self,
                                                   simple_hammock_program,
                                                   alternating_memory):
        from repro.emulator import execute
        from repro.uarch import TimingSimulator

        trace, _ = execute(simple_hammock_program,
                           memory=dict(alternating_memory))
        sink = ListSink()
        with telemetry(tracer=NULL_TRACER):
            simulator = TimingSimulator(simple_hammock_program)
            simulator.run(trace, label="null")
        assert sink.records == []


class TestRoundTrip:
    def test_every_event_survives_jsonl(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = jsonl_tracer(path)
        for event in SAMPLE_EVENTS:
            tracer.emit(event)
        tracer.close()
        assert read_events(path) == SAMPLE_EVENTS

    def test_records_carry_type_and_seq(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = jsonl_tracer(path)
        for event in SAMPLE_EVENTS:
            tracer.emit(event)
        tracer.close()
        records = list(iter_records(path))
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert records[0]["type"] == "dpred.episode.start"

    def test_list_sink_round_trip(self):
        sink = ListSink()
        tracer = Tracer(sink)
        for event in SAMPLE_EVENTS:
            tracer.emit(event)
        assert sink.events() == SAMPLE_EVENTS
        tracer.close()
        assert sink.closed

    def test_unknown_event_type_reads_as_generic(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(
            {"type": "future.event", "seq": 0, "detail": 42}) + "\n")
        (event,) = read_events(str(path))
        assert event.type == "future.event"
        assert event.payload == {"detail": 42}

    def test_bad_json_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_events(str(path))

    def test_all_registered_events_are_dataclasses(self):
        for cls in events.EVENT_TYPES.values():
            assert dataclasses.is_dataclass(cls)
            assert cls.type in events.EVENT_TYPES


class TestJsonlSink:
    def test_accepts_open_file_object(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as handle:
            sink = JsonlSink(handle)
            sink.write({"type": "x"})
            sink.close()  # does not close a borrowed handle
            assert not handle.closed
        assert json.loads(path.read_text()) == {"type": "x"}


class TestPhaseTimers:
    def test_phase_records_profile_metrics_and_event(self):
        profile = PhaseProfile()
        registry = MetricsRegistry()
        sink = ListSink()
        tracer = Tracer(sink)
        with phase("simulate", profile=profile, metrics=registry,
                   tracer=tracer) as handle:
            handle.events = 500
        assert "simulate" in profile
        assert profile.seconds("simulate") > 0
        snapshot = profile.as_dict()["simulate"]
        assert snapshot["events"] == 500
        assert snapshot["calls"] == 1
        assert snapshot["events_per_sec"] > 0
        assert registry.counter("phase_simulate_calls_total").value == 1
        assert registry.counter("phase_simulate_events_total").value == 500
        (event,) = sink.events()
        assert event.name == "simulate"
        assert event.events == 500

    def test_phase_records_even_on_exception(self):
        profile = PhaseProfile()
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with phase("boom", profile=profile, metrics=registry,
                       tracer=NULL_TRACER):
                raise RuntimeError("boom")
        assert profile.as_dict()["boom"]["calls"] == 1

    def test_report_mentions_phases(self):
        profile = PhaseProfile()
        profile.record("trace", 0.5, events=1000)
        profile.record("trace", 0.5, events=1000)
        text = profile.report()
        assert "trace" in text
        assert "x2" in text
        assert "2000 events" in text
        assert PhaseProfile().report() == "no phases recorded"


class TestTelemetryContext:
    def test_defaults_are_null_tracer_and_shared_registry(self):
        assert get_tracer().enabled is False
        assert get_metrics() is get_metrics()

    def test_nested_contexts_restore(self):
        outer_metrics = get_metrics()
        sink = ListSink()
        tracer = Tracer(sink)
        with telemetry(tracer=tracer) as bundle:
            assert get_tracer() is tracer
            # Unspecified pieces inherit from the surrounding context.
            assert bundle.metrics is outer_metrics
            fresh = MetricsRegistry()
            with telemetry(metrics=fresh):
                assert get_metrics() is fresh
                assert get_tracer() is tracer
            assert get_metrics() is outer_metrics
        assert get_tracer().enabled is False


class TestManifest:
    def test_build_and_round_trip(self, tmp_path):
        profile = PhaseProfile()
        profile.record("simulate", 1.0, events=100)
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        manifest = build_manifest(
            "python -m repro fig5",
            args={"scale": 0.5},
            benchmarks=["gzip"],
            scale=0.5,
            phases=profile,
            metrics=registry,
            stats={"gzip/dmp": {"ipc": 1.5}},
        )
        assert manifest["schema"].startswith("dmp-repro/")
        assert manifest["args"] == {"scale": 0.5}
        assert manifest["phases"]["simulate"]["events"] == 100
        assert manifest["metrics"]["runs"]["value"] == 1
        assert manifest["stats"]["gzip/dmp"]["ipc"] == 1.5
        path = str(tmp_path / "sub" / "manifest.json")
        write_manifest(path, manifest)
        assert read_manifest(path) == manifest
