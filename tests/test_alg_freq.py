"""Tests for Algorithm 2 (Alg-freq) and the chain reduction."""

import pytest

from repro.core.alg_exact import find_exact_candidates
from repro.core.alg_freq import find_freq_candidates
from repro.core.analysis import ProgramAnalysis
from repro.core.marks import CFMKind, DivergeKind
from repro.core.thresholds import SelectionThresholds
from repro.isa import assemble
from repro.profiling import Profiler


def analyze(program, memory):
    profile = Profiler().profile(program, memory=memory)
    return ProgramAnalysis(program, profile)


def freq_hammock_program(cold_insts=60):
    """A hammock whose taken side rarely escapes to a long cold block."""
    cold = "\n".join("    addi r9, r9, 1" for _ in range(cold_insts))
    return assemble(
        f"""
        .func main
            movi r1, 0
            movi r2, 200
        loop:
            cmpge r4, r1, r2
            bnez r4, done
            ld r3, 0(r1)
            and r5, r3, 1
            bnez r5, then        ; the frequently-hammock branch
            addi r6, r6, 1
            addi r6, r6, 2
            jmp merge
        then:
            addi r7, r7, 1
            and r5, r3, 2
            beqz r5, merge       ; rare escape guard
{cold}
        merge:
            addi r8, r8, 1
            addi r1, r1, 1
            jmp loop
        done:
            halt
        .endfunc
        """,
        name="freq-hammock",
    )


def freq_memory(n=300, rare_period=37):
    # bit0 alternates (hard-ish); bit1 set rarely (escape).
    return {
        i: (i % 2) | (2 if i % rare_period == 0 else 0) for i in range(n)
    }


BRANCH_PC = 6  # `bnez r5, then`


class TestFreqSelection:
    def test_rejected_by_exact_found_by_freq(self):
        program = freq_hammock_program()
        analysis = analyze(program, freq_memory())
        thresholds = SelectionThresholds()
        exact = {c.branch_pc
                 for c in find_exact_candidates(analysis, thresholds)}
        assert BRANCH_PC not in exact
        freq = {
            c.branch_pc: c
            for c in find_freq_candidates(analysis, thresholds, exact)
        }
        assert BRANCH_PC in freq
        candidate = freq[BRANCH_PC]
        assert candidate.kind is DivergeKind.FREQUENTLY_HAMMOCK
        assert all(
            p.kind is CFMKind.APPROXIMATE for p in candidate.cfm_points
        )

    def test_merge_probability_reflects_rare_escape(self):
        program = freq_hammock_program()
        analysis = analyze(program, freq_memory(rare_period=21))
        candidate = {
            c.branch_pc: c
            for c in find_freq_candidates(
                analysis, SelectionThresholds(), frozenset()
            )
        }[BRANCH_PC]
        best = max(p.merge_prob for p in candidate.cfm_points)
        # odd multiples of 21 escape: ~7% of taken-side executions,
        # so the merge probability lands well below 1.0
        assert 0.7 <= best <= 0.999

    def test_min_merge_prob_filters(self):
        program = freq_hammock_program()
        analysis = analyze(program, freq_memory())
        strict = SelectionThresholds().with_overrides(min_merge_prob=0.999)
        candidates = {
            c.branch_pc
            for c in find_freq_candidates(analysis, strict, frozenset())
        }
        assert BRANCH_PC not in candidates

    def test_max_cfm_respected(self):
        program = freq_hammock_program()
        analysis = analyze(program, freq_memory())
        thresholds = SelectionThresholds().with_overrides(max_cfm=1)
        for candidate in find_freq_candidates(
            analysis, thresholds, frozenset()
        ):
            assert len(candidate.cfm_points) <= 1


class TestChainReduction:
    def test_chained_candidates_collapse(self):
        # C is always on the path to D on the not-taken side: the chain
        # rule must keep only one of them (paper §3.3.1, Figure 4).
        program = assemble(
            """
            .func main
                movi r1, 0
                movi r2, 120
            loop:
                cmpge r4, r1, r2
                bnez r4, done
                ld r3, 0(r1)
                bnez r3, taken_side
                addi r5, r5, 1
            point_c:
                addi r6, r6, 1
            point_d:
                addi r7, r7, 1
                jmp next
            taken_side:
                and r8, r3, 2
                bnez r8, to_d
                jmp point_c
            to_d:
                jmp point_d
            next:
                addi r1, r1, 1
                jmp loop
            done:
                halt
            .endfunc
            """
        )
        memory = {i: (i % 2) | (2 if i % 3 == 0 else 0) for i in range(150)}
        analysis = analyze(program, memory)
        candidates = find_freq_candidates(
            analysis, SelectionThresholds(), frozenset()
        )
        branch = {c.branch_pc: c for c in candidates}.get(5)
        assert branch is not None
        cfm_pcs = branch.cfm_pcs
        c_pc = 7   # point_c block entry
        d_pc = 8   # point_d block entry
        # Only one of the chained points survives.
        assert not ({c_pc, d_pc} <= cfm_pcs)


def test_freq_excludes_already_selected(simple_hammock_program,
                                        alternating_memory):
    analysis = analyze(simple_hammock_program, alternating_memory)
    thresholds = SelectionThresholds()
    exact_pcs = {
        c.branch_pc for c in find_exact_candidates(analysis, thresholds)
    }
    freq = find_freq_candidates(analysis, thresholds, exact_pcs)
    assert not (exact_pcs & {c.branch_pc for c in freq})
