"""Tests for the prior-work mark generators."""

import pytest

from repro.core.marks import DivergeKind
from repro.core.simple_algorithms import (
    select_dual_path,
    select_dynamic_hammock,
    select_if_else,
)
from repro.profiling import Profiler
from repro.workloads import load_benchmark


@pytest.fixture(scope="module")
def artifacts():
    workload = load_benchmark("li", scale=0.2)
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    return workload.program, profile


class TestDualPath:
    def test_marks_every_branch_without_cfm(self, artifacts):
        program, profile = artifacts
        annotation = select_dual_path(program, profile)
        executed = set(profile.edge_profile.executed_branch_pcs())
        assert {b.branch_pc for b in annotation} == executed
        assert all(not b.cfm_points for b in annotation)

    def test_source_label(self, artifacts):
        program, profile = artifacts
        annotation = select_dual_path(program, profile)
        assert all(b.source == "dual-path" for b in annotation)


class TestDynamicHammock:
    def test_only_simple_hammocks(self, artifacts):
        program, profile = artifacts
        annotation = select_dynamic_hammock(program, profile)
        assert len(annotation) > 0
        assert all(
            b.kind is DivergeKind.SIMPLE_HAMMOCK for b in annotation
        )

    def test_size_bound_respected(self, artifacts):
        program, profile = artifacts
        tight = select_dynamic_hammock(program, profile,
                                       max_hammock_insts=2)
        loose = select_dynamic_hammock(program, profile,
                                       max_hammock_insts=32)
        assert len(tight) <= len(loose)

    def test_subset_of_if_else(self, artifacts):
        program, profile = artifacts
        hammock = {
            b.branch_pc
            for b in select_dynamic_hammock(program, profile,
                                            max_hammock_insts=16)
        }
        ifelse = {b.branch_pc for b in select_if_else(program, profile)}
        # With the default 50-inst bound, if-else is a superset of the
        # 16-inst Klauser-style selection.
        assert hammock <= ifelse
