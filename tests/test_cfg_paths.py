"""Bounded path enumeration tests (Alg-freq's working list)."""

import pytest

from repro.cfg import build_cfgs, enumerate_paths
from repro.cfg.dominators import compute_postdominators, immediate_postdominator_pc
from repro.isa import assemble


def setup(text, func="main"):
    program = assemble(text)
    return build_cfgs(program)[func]


DIAMOND = """
.func main
    movi r1, 1
    bnez r1, right
    addi r2, r2, 1
    addi r2, r2, 2
    jmp join
right:
    addi r3, r3, 1
join:
    halt
.endfunc
"""


def uniform(pc, taken):
    return 0.5


class TestBasicEnumeration:
    def test_diamond_paths_stop_at_iposdom(self):
        cfg = setup(DIAMOND)
        iposdom = immediate_postdominator_pc(
            cfg, compute_postdominators(cfg), 1
        )
        ps = enumerate_paths(cfg, 1, uniform, max_instr=50, max_cbr=5,
                             stop_pcs={iposdom})
        assert len(ps.taken_paths) == 1
        assert len(ps.nottaken_paths) == 1
        assert all(p.reason == "stop" for p in ps.taken_paths)
        assert ps.taken_paths[0].insts == 1
        assert ps.nottaken_paths[0].insts == 3

    def test_path_probabilities_are_conditional_on_direction(self):
        cfg = setup(DIAMOND)
        ps = enumerate_paths(cfg, 1, uniform, max_instr=50, max_cbr=5)
        assert ps.taken_paths[0].prob == pytest.approx(1.0)

    def test_max_instr_limit(self):
        cfg = setup(DIAMOND)
        ps = enumerate_paths(cfg, 1, uniform, max_instr=2, max_cbr=5)
        # The not-taken side needs 3 instructions before the jmp block
        # runs out of budget.
        assert any(p.reason == "limit" for p in ps.nottaken_paths)

    def test_reach_prob_sums_per_block(self):
        cfg = setup(DIAMOND)
        ps = enumerate_paths(cfg, 1, uniform, max_instr=50, max_cbr=5)
        reach_taken = ps.reach_prob("taken")
        join_pc = 6
        assert reach_taken[join_pc] == pytest.approx(1.0)

    def test_bad_direction_raises(self):
        cfg = setup(DIAMOND)
        ps = enumerate_paths(cfg, 1, uniform, max_instr=50, max_cbr=5)
        with pytest.raises(ValueError):
            ps.paths("sideways")


INNER_BRANCH = """
.func main
    movi r1, 1
    bnez r1, side
    addi r2, r2, 1
    jmp join
side:
    movi r3, 1
    bnez r3, sub
    addi r4, r4, 1
    jmp join
sub:
    addi r5, r5, 1
join:
    halt
.endfunc
"""


class TestBranchingPaths:
    def test_taken_side_splits_into_two_paths(self):
        cfg = setup(INNER_BRANCH)
        ps = enumerate_paths(cfg, 1, uniform, max_instr=50, max_cbr=5)
        assert len(ps.taken_paths) == 2
        probs = sorted(p.prob for p in ps.taken_paths)
        assert probs == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_max_cbr_limit(self):
        cfg = setup(INNER_BRANCH)
        ps = enumerate_paths(cfg, 1, uniform, max_instr=50, max_cbr=0)
        assert all(p.reason == "limit" for p in ps.taken_paths)

    def test_min_exec_prob_prunes_directions(self):
        cfg = setup(INNER_BRANCH)

        def biased(pc, taken):
            # the inner branch (pc 5) almost never goes to `sub`
            if pc == 5:
                return 0.0001 if taken else 0.9999
            return 0.5

        ps = enumerate_paths(
            cfg, 1, biased, max_instr=50, max_cbr=5, min_exec_prob=0.001
        )
        # only one surviving path on the taken side
        assert len(ps.taken_paths) == 1

    def test_first_reach_prob_orders_chain(self):
        cfg = setup(INNER_BRANCH)
        ps = enumerate_paths(cfg, 1, uniform, max_instr=50, max_cbr=5)
        join_pc = 9
        sub_pc = 8
        first = ps.first_reach_prob("taken", [sub_pc, join_pc])
        # sub is reached first on half the taken paths; join first on
        # the other half.
        assert first[sub_pc] == pytest.approx(0.5)
        assert first[join_pc] == pytest.approx(0.5)


RETURNS = """
.func main
    call f
    halt
.endfunc
.func f
    movi r1, 1
    bnez r1, other
    addi r2, r2, 1
    ret
other:
    addi r3, r3, 1
    ret
.endfunc
"""


class TestReturnPaths:
    def test_both_directions_end_in_returns(self):
        cfg = setup(RETURNS, func="f")
        ps = enumerate_paths(cfg, 3, uniform, max_instr=50, max_cbr=5)
        assert ps.return_prob("taken") == pytest.approx(1.0)
        assert ps.return_prob("nottaken") == pytest.approx(1.0)


class TestSizeEstimates:
    def test_longest_and_expected_insts(self):
        cfg = setup(INNER_BRANCH)
        ps = enumerate_paths(cfg, 1, uniform, max_instr=50, max_cbr=5)
        join_pc = 9
        longest = ps.longest_insts_to("taken", join_pc)
        expected = ps.expected_insts_to("taken", join_pc)
        assert longest >= expected > 0

    def test_loop_paths_bounded_by_max_instr(self, loop_program):
        cfg = build_cfgs(loop_program)["main"]
        latch_pc = next(
            pc
            for pc in loop_program.conditional_branch_pcs()
            if loop_program[pc].target <= pc
        )
        ps = enumerate_paths(
            cfg, latch_pc, uniform, max_instr=30, max_cbr=5
        )
        assert all(p.insts <= 30 + 10 for p in
                   ps.taken_paths + ps.nottaken_paths)
