"""The ``repro.compiler`` pass-manager pipeline.

The heart of this module is the equivalence matrix: for every
registered :class:`SelectionConfig` preset and every workload in the
suite, the pipeline must emit a :class:`BinaryAnnotation` that is
byte-identical (as an :mod:`annotation_io` document) to the frozen
pre-pipeline selector in :mod:`tests._legacy_selector`.  Around it sit
the unit layers: the analysis manager's content-keyed cache, the spec
grammar, the preset registry, the threshold-unification regression,
and the ``python -m repro compile`` CLI.
"""

import json

import pytest

from repro.compiler import (
    AnalysisManager,
    Pipeline,
    PipelineBuilder,
    context_for_config,
    format_spec,
    parse_spec,
    registry,
    reset_shared_manager,
    run_selection_pipeline,
    shared_manager,
)
from repro.core import (
    DivergeSelector,
    SelectionConfig,
    annotation_io,
    select_diverge_branches,
)
from repro.core.thresholds import COST_MODEL_BOUNDS, SelectionThresholds
from repro.obs import MetricsRegistry, jsonl_tracer, telemetry
from repro.obs.tracer import iter_records
from repro.profiling import Profiler
from repro.workloads import BENCHMARK_NAMES, load_benchmark

from tests._legacy_selector import legacy_select

#: Trace-length multiplier for the equivalence matrix.  Small enough
#: that profiling all 17 workloads stays cheap, large enough that the
#: heuristics actually fire (short hammocks, return CFMs, loops).
EQUIV_SCALE = 0.2


@pytest.fixture(scope="module")
def suite_artifacts():
    """(program, profile) for every benchmark, profiled once."""
    artifacts = {}
    profiler = Profiler()
    for name in BENCHMARK_NAMES:
        workload = load_benchmark(name, scale=EQUIV_SCALE)
        profile = profiler.profile(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        )
        artifacts[name] = (workload.program, profile)
    return artifacts


@pytest.fixture(scope="module")
def twolf(suite_artifacts):
    return suite_artifacts["twolf"]


# --------------------------------------------------------------------
# The tentpole contract: pipeline ≡ legacy, for every preset × workload.
# --------------------------------------------------------------------


class TestPipelineEquivalence:
    # Transform presets (meld=...) rewrite the program, which the
    # annotation-only legacy oracle by definition never did; the
    # annotation-only presets must stay byte-identical to it.
    @pytest.mark.parametrize("preset", [
        n for n in registry.names()
        if registry.resolve(n).meld is None
    ])
    def test_preset_matches_legacy_on_every_workload(
        self, preset, suite_artifacts
    ):
        config = registry.resolve(preset)
        manager = AnalysisManager()
        for name, (program, profile) in suite_artifacts.items():
            expected, legacy_costs, legacy_loops = legacy_select(
                program, profile, config
            )
            state = run_selection_pipeline(
                program, profile, config, manager=manager
            )
            assert annotation_io.dumps(state.annotation) == (
                annotation_io.dumps(expected)
            ), f"preset {preset!r} diverges from legacy on {name!r}"
            assert [r.as_dict() for r in state.cost_reports] == [
                r.as_dict() for r in legacy_costs
            ], f"cost reports differ for {preset!r} on {name!r}"
            assert len(state.loop_reports) == len(legacy_loops)

    def test_selector_shim_matches_pipeline(self, twolf):
        """``DivergeSelector`` is now a facade over the same pipeline."""
        program, profile = twolf
        config = SelectionConfig.all_best_heur()
        via_shim = DivergeSelector(program, profile, config).select()
        state = run_selection_pipeline(program, profile, config)
        assert annotation_io.dumps(via_shim) == (
            annotation_io.dumps(state.annotation)
        )

    def test_select_diverge_branches_matches_legacy(self, twolf):
        program, profile = twolf
        config = SelectionConfig.all_best_cost()
        annotation = select_diverge_branches(program, profile, config)
        expected, _, _ = legacy_select(program, profile, config)
        assert annotation_io.dumps(annotation) == (
            annotation_io.dumps(expected)
        )

    def test_cost_reports_order_hammocks_before_returns(self, twolf):
        """Figure 5 consumes ``cost_reports`` positionally: hammock
        candidates first (exact+freq order), then return-CFM ones."""
        program, profile = twolf
        selector = DivergeSelector(
            program, profile, SelectionConfig.all_best_cost()
        )
        selector.select()
        # Return-CFM reports key their merge point on None (see
        # HammockCostReport.as_dict); hammock reports never do.
        is_ret = [
            None in report.useless_by_cfm
            for report in selector.cost_reports
        ]
        first_ret = is_ret.index(True) if True in is_ret else len(is_ret)
        assert not any(is_ret[:first_ret])
        assert all(is_ret[first_ret:])
        assert is_ret, "cost mode must produce cost reports"


# --------------------------------------------------------------------
# Satellite (a): one thresholds source of truth, bounds as overrides.
# --------------------------------------------------------------------


class TestThresholdUnification:
    def test_cost_mode_pins_footnote4_bounds(self):
        effective = SelectionConfig.all_best_cost().effective_thresholds
        assert effective.max_instr == 200
        assert effective.max_cbr == 20
        assert effective.min_merge_prob == 0.0

    def test_cost_mode_preserves_custom_non_bound_thresholds(self):
        """Regression: the legacy selector silently replaced *all*
        thresholds with the COST_MODEL constant in cost mode, so custom
        short-hammock/loop settings were lost there.  Now only the
        three footnote-4 bounds are overridden."""
        custom = SelectionThresholds(
            short_hammock_max_insts=4,
            loop_iter=99,
            min_exec_prob=0.025,
        )
        config = SelectionConfig.all_best_cost(thresholds=custom)
        effective = config.effective_thresholds
        assert effective.short_hammock_max_insts == 4
        assert effective.loop_iter == 99
        assert effective.min_exec_prob == 0.025
        for name, value in COST_MODEL_BOUNDS.items():
            assert getattr(effective, name) == value

    def test_heuristic_mode_passes_thresholds_through(self):
        custom = SelectionThresholds(max_instr=77)
        config = SelectionConfig.all_best_heur(thresholds=custom)
        assert config.effective_thresholds is custom

    def test_short_hammocks_see_effective_thresholds(self, twolf):
        """Both the short partition and its finisher read the same
        thresholds object, so an impossible short-hammock bar removes
        every short-hammock branch — in cost mode too."""
        program, profile = twolf
        strict = SelectionThresholds(short_hammock_min_misp_rate=1.1)
        config = SelectionConfig.all_best_cost(thresholds=strict)
        annotation = select_diverge_branches(program, profile, config)
        assert not [b for b in annotation if b.source == "short-hammock"]


# --------------------------------------------------------------------
# The analysis manager: content keys, LRU, partial invalidation.
# --------------------------------------------------------------------


class TestAnalysisManager:
    def test_same_content_hits(self, twolf):
        program, profile = twolf
        manager = AnalysisManager()
        first = manager.analysis(program, profile)
        assert manager.analysis(program, profile) is first
        assert len(manager) == 1

    def test_hit_and_miss_metrics(self, twolf):
        program, profile = twolf
        registry_ = MetricsRegistry()
        with telemetry(metrics=registry_):
            manager = AnalysisManager()
            manager.analysis(program, profile)
            manager.analysis(program, profile)
        snapshot = registry_.as_dict()
        assert snapshot["analysis_cache_misses_total"]["value"] == 1
        assert snapshot["analysis_cache_hits_total"]["value"] == 1

    def test_configs_share_one_analysis(self, twolf):
        """The cross-config reuse the sweeps depend on: the key is
        (program, profile) content, never the SelectionConfig."""
        program, profile = twolf
        manager = AnalysisManager()
        for preset in ("exact", "all-best-heur", "all-best-cost"):
            run_selection_pipeline(
                program, profile, registry.resolve(preset),
                manager=manager,
            )
        assert len(manager) == 1

    def test_different_profile_misses(self, twolf, suite_artifacts):
        program, profile = twolf
        other_program, other_profile = suite_artifacts["gzip"]
        manager = AnalysisManager()
        manager.analysis(program, profile)
        manager.analysis(other_program, other_profile)
        assert len(manager) == 2
        assert AnalysisManager.key_for(program, profile) != (
            AnalysisManager.key_for(other_program, other_profile)
        )

    def test_lru_eviction(self, suite_artifacts):
        manager = AnalysisManager(capacity=2)
        names = list(BENCHMARK_NAMES)[:3]
        for name in names:
            manager.analysis(*suite_artifacts[name])
        assert len(manager) == 2
        oldest = AnalysisManager.key_for(*suite_artifacts[names[0]])
        assert oldest not in manager

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AnalysisManager(capacity=0)

    def test_threshold_sweep_reuses_structural_analyses(self, twolf):
        """A threshold mutation keys new *path sets*; the dominators
        and loops (program-derived) are never rebuilt."""
        program, profile = twolf
        manager = AnalysisManager()
        analysis = manager.analysis(program, profile)
        for max_instr in (30, 50, 80):
            swept = SelectionConfig.all_best_heur(
                thresholds=SelectionThresholds(max_instr=max_instr)
            )
            run_selection_pipeline(
                program, profile, swept, manager=manager
            )
            assert manager.analysis(program, profile) is analysis
        assert analysis.path_cache_size() > 0

    def test_invalidate_paths_keeps_structure(self, twolf):
        program, profile = twolf
        manager = AnalysisManager()
        analysis = manager.analysis(program, profile)
        run_selection_pipeline(
            program, profile, SelectionConfig.all_best_heur(),
            manager=manager,
        )
        assert analysis.path_cache_size() > 0
        cfgs_before = analysis.cfgs
        manager.invalidate_paths(program, profile)
        assert analysis.path_cache_size() == 0
        assert manager.analysis(program, profile) is analysis
        assert manager.analysis(program, profile).cfgs is cfgs_before

    def test_invalidate_drops_entry(self, twolf):
        program, profile = twolf
        manager = AnalysisManager()
        first = manager.analysis(program, profile)
        manager.invalidate(program, profile)
        assert manager.analysis(program, profile) is not first

    def test_shared_manager_is_process_global(self, twolf):
        program, profile = twolf
        reset_shared_manager()
        try:
            assert shared_manager() is shared_manager()
            one = DivergeSelector(program, profile)
            two = DivergeSelector(program, profile)
            assert one.analysis is two.analysis
        finally:
            reset_shared_manager()

    def test_explicit_manager_overrides_shared(self, twolf):
        program, profile = twolf
        manager = AnalysisManager()
        selector = DivergeSelector(
            program, profile, analysis_manager=manager
        )
        assert manager.analysis(program, profile) is selector.analysis
        assert len(manager) == 1


class TestContentKeys:
    def test_program_fingerprint_is_stable(self, twolf):
        program, _ = twolf
        assert program.fingerprint == program.fingerprint
        reloaded = load_benchmark("twolf", scale=EQUIV_SCALE).program
        assert reloaded.fingerprint == program.fingerprint

    def test_fingerprints_differ_across_programs(self, suite_artifacts):
        fingerprints = {
            program.fingerprint
            for program, _ in suite_artifacts.values()
        }
        assert len(fingerprints) == len(suite_artifacts)

    def test_profile_cache_key_tracks_content(self, twolf):
        _, profile = twolf
        assert profile.cache_key() == profile.cache_key()
        longer = Profiler().profile(
            load_benchmark("twolf", scale=0.3).program,
            memory=load_benchmark("twolf", scale=0.3).memory,
            max_instructions=load_benchmark(
                "twolf", scale=0.3
            ).max_instructions,
        )
        assert longer.cache_key() != profile.cache_key()


# --------------------------------------------------------------------
# The declarative spec grammar and the pipeline builder.
# --------------------------------------------------------------------


class TestSpecGrammar:
    def test_round_trip_canonicalizes(self):
        config = parse_spec("loop,cost:edge,ret,short,freq,exact")
        assert format_spec(config) == "exact,freq,short,ret,loop,cost:edge"

    @pytest.mark.parametrize("name", [
        n for n in registry.names() if n != "exact-freq"
    ])
    def test_every_preset_spec_round_trips(self, name):
        config = registry.resolve(name)
        spec = format_spec(config)
        assert format_spec(parse_spec(spec)) == spec

    def test_preset_and_spec_spellings_agree(self, twolf):
        """The CI smoke job's contract, asserted in-process."""
        program, profile = twolf
        pairs = [
            ("all-best-heur", "exact,freq,short,ret,loop"),
            ("all-best-cost", "exact,freq,short,ret,loop,cost:edge"),
        ]
        for preset, spec in pairs:
            by_name = run_selection_pipeline(
                program, profile, registry.resolve(preset)
            )
            by_spec = run_selection_pipeline(
                program, profile, parse_spec(spec)
            )
            assert annotation_io.dumps(by_name.annotation) == (
                annotation_io.dumps(by_spec.annotation)
            )

    def test_cost_method_tokens(self):
        assert parse_spec("exact,cost").cost_model == "edge"
        assert parse_spec("exact,cost:edge").cost_model == "edge"
        assert parse_spec("exact,cost:long").cost_model == "long"

    def test_minmisp_token_sets_filter_rate(self):
        config = parse_spec("exact,freq,minmisp:0.02")
        assert config.min_misp_rate == pytest.approx(0.02)
        assert "minmisp:0.02" in format_spec(config)

    @pytest.mark.parametrize("bad", [
        "", "  ", "exact,bogus", "exact,exact", "cost,cost:long",
        "cost:fancy", "minmisp:high", "minmisp",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_spec_names_default_to_spec_string(self):
        assert parse_spec("exact,freq").name == "exact,freq"
        assert parse_spec("exact", name="solo").name == "solo"

    def test_custom_thresholds_flow_through(self):
        custom = SelectionThresholds(max_instr=64)
        config = parse_spec("exact,freq", thresholds=custom)
        assert config.thresholds.max_instr == 64


class TestPipelineBuilder:
    def test_canonical_schedule(self):
        pipeline = PipelineBuilder.from_config(
            registry.resolve("all-best-cost")
        ).build()
        assert pipeline.pass_names() == [
            "exact", "freq", "2d", "short", "cost", "finish",
            "ret", "loop",
        ]

    def test_minmisp_scheduled_only_when_configured(self):
        with_filter = PipelineBuilder.from_config(
            SelectionConfig(min_misp_rate=0.01)
        ).build()
        without = PipelineBuilder.from_config(SelectionConfig()).build()
        assert "minmisp" in with_filter.pass_names()
        assert "minmisp" not in without.pass_names()

    def test_pipeline_repr_names_passes(self):
        pipeline = PipelineBuilder.from_spec("exact,freq").build()
        assert "exact" in repr(pipeline) and "freq" in repr(pipeline)

    def test_pass_telemetry(self, twolf, tmp_path):
        """Each pass emits start/end events, phase timers, and counts."""
        program, profile = twolf
        trace_path = tmp_path / "trace.jsonl"
        registry_ = MetricsRegistry()
        tracer = jsonl_tracer(str(trace_path))
        config = registry.resolve("all-best-heur")
        with telemetry(tracer=tracer, metrics=registry_):
            pipeline = PipelineBuilder.from_config(config).build()
            ctx = context_for_config(
                program, profile, config, tracer=tracer,
                manager=AnalysisManager(),
            )
            pipeline.run(ctx)
        tracer.close()
        events = list(iter_records(str(trace_path)))
        starts = [e for e in events if e["type"] == "compile.pass.start"]
        ends = [e for e in events if e["type"] == "compile.pass.end"]
        assert [e["pass_name"] for e in starts] == pipeline.pass_names()
        assert [e["pass_name"] for e in ends] == pipeline.pass_names()
        assert all(e["seconds"] >= 0 for e in ends)
        snapshot = registry_.as_dict()
        assert snapshot["pipeline_pass_runs_total"]["value"] == len(
            pipeline.pass_names()
        )
        assert snapshot["selection_runs_total"]["value"] == 1
        assert "phase_compile.exact_seconds_total" in snapshot

    def test_empty_pipeline_yields_empty_annotation(self, twolf):
        program, profile = twolf
        ctx = context_for_config(
            program, profile, SelectionConfig(
                enable_exact=False, enable_freq=False
            ),
            manager=AnalysisManager(),
        )
        state = Pipeline([]).run(ctx)
        assert len(state.annotation) == 0


# --------------------------------------------------------------------
# The preset registry.
# --------------------------------------------------------------------


class TestRegistry:
    def test_names_cover_the_figure_presets(self):
        names = registry.names()
        for expected in (
            "exact", "exact+freq", "exact+freq+short",
            "exact+freq+short+ret", "all-best-heur", "cost-long",
            "cost-edge", "cost-edge+short", "cost-edge+short+ret",
            "all-best-cost", "exact-freq",
        ):
            assert expected in names

    def test_resolve_returns_fresh_configs(self):
        assert registry.resolve("exact") is not registry.resolve("exact")

    def test_resolve_applies_thresholds(self):
        custom = SelectionThresholds(max_instr=31)
        config = registry.resolve("all-best-heur", thresholds=custom)
        assert config.thresholds.max_instr == 31

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="all-best-heur"):
            registry.resolve("no-such-config")

    def test_register_rejects_collisions(self):
        with pytest.raises(ValueError):
            registry.register("exact", lambda thresholds=None: None)

    def test_experiment_configs_resolve_through_registry(self):
        from repro.experiments.configs import (
            COST_CONFIGS,
            CUMULATIVE_HEURISTICS,
            named_config,
        )

        for name, config in CUMULATIVE_HEURISTICS + COST_CONFIGS:
            assert config.name == registry.resolve(name).name
        assert named_config("all-best-cost").cost_model == "edge"


# --------------------------------------------------------------------
# The ``python -m repro compile`` CLI.
# --------------------------------------------------------------------


class TestCompileCLI:
    def _main(self, argv):
        from repro.compiler.cli import main

        return main(argv)

    def test_list_prints_presets(self, capsys):
        assert self._main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "all-best-heur" in out
        assert "exact,freq,short,ret,loop,cost:edge" in out

    def test_config_and_pipeline_spellings_diff_clean(self, tmp_path,
                                                      capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert self._main([
            "--benchmark", "gzip", "--scale", "0.1",
            "--config", "all-best-heur", "-o", str(a),
        ]) == 0
        assert self._main([
            "--benchmark", "gzip", "--scale", "0.1",
            "--pipeline", "exact,freq,short,ret,loop", "-o", str(b),
        ]) == 0
        assert a.read_text() == b.read_text()
        assert "diverge branches" in capsys.readouterr().out

    def test_stdout_emits_annotation_document(self, capsys):
        assert self._main([
            "--benchmark", "gzip", "--scale", "0.1",
            "--config", "exact",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["program"] == "gzip"

    def test_unknown_config_fails_with_choices(self, capsys):
        assert self._main([
            "--benchmark", "gzip", "--config", "nope",
        ]) == 2
        assert "all-best-heur" in capsys.readouterr().err

    def test_bad_spec_fails(self, capsys):
        assert self._main([
            "--benchmark", "gzip", "--pipeline", "exact,bogus",
        ]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_unknown_benchmark_fails(self, capsys):
        assert self._main([
            "--benchmark", "no-such-workload", "--config", "exact",
        ]) == 1

    def test_dispatch_through_repro_main(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "--list"]) == 0
        assert "all-best-cost" in capsys.readouterr().out
