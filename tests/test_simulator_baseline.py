"""Baseline timing-simulator tests."""

import pytest

from repro.emulator import execute
from repro.errors import SimulationError
from repro.isa import ProgramBuilder, assemble
from repro.uarch import ProcessorConfig, TimingSimulator, simulate


def straightline(n, ilp=True):
    builder = ProgramBuilder("straight")
    builder.begin_function("main")
    for i in range(n):
        builder.addi(1 + (i % 8 if ilp else 0), 1 + (i % 8 if ilp else 0),
                     1)
    builder.halt()
    builder.end_function()
    return builder.build()


class TestFetchAndRetire:
    def test_ilp_code_approaches_fetch_width(self):
        program = straightline(4000, ilp=True)
        trace, _ = execute(program)
        stats = simulate(program, trace)
        assert stats.ipc > 5.0  # 8-wide minus start-up effects

    def test_serial_chain_is_one_ipc(self):
        program = straightline(4000, ilp=False)
        trace, _ = execute(program)
        stats = simulate(program, trace)
        assert stats.ipc == pytest.approx(1.0, abs=0.1)

    def test_retired_instructions_match_trace(self):
        program = straightline(100)
        trace, _ = execute(program)
        stats = simulate(program, trace)
        assert stats.retired_instructions == len(trace)

    def test_empty_trace_rejected(self):
        program = straightline(4)
        with pytest.raises(SimulationError):
            simulate(program, [])

    def test_taken_branches_break_fetch(self):
        # A tight loop of 2 instructions: the taken backedge limits
        # fetch to one iteration per cycle.
        program = assemble(
            """
            .func main
                movi r1, 2000
            top:
                addi r1, r1, -1
                bnez r1, top
                halt
            .endfunc
            """
        )
        trace, _ = execute(program)
        stats = simulate(program, trace)
        assert stats.ipc < 2.5


class TestBranchHandling:
    def _random_branch_program(self):
        return assemble(
            """
            .func main
                movi r1, 0
                movi r2, 400
            loop:
                cmpge r4, r1, r2
                bnez r4, done
                ld r3, 0(r1)
                bnez r3, then
                addi r6, r6, 1
                jmp merge
            then:
                addi r7, r7, 1
            merge:
                addi r1, r1, 1
                jmp loop
            done:
                halt
            .endfunc
            """
        )

    def test_mispredictions_cause_flushes_and_slowdown(self):
        import random

        program = self._random_branch_program()
        rng = random.Random(9)
        hard = {i: rng.randrange(2) for i in range(400)}
        easy = {i: 0 for i in range(400)}
        trace_hard, _ = execute(program, memory=hard)
        trace_easy, _ = execute(program, memory=easy)
        stats_hard = simulate(program, trace_hard)
        stats_easy = simulate(program, trace_easy)
        assert stats_hard.pipeline_flushes > 100
        assert stats_easy.pipeline_flushes < 20
        assert stats_easy.ipc > stats_hard.ipc * 1.5

    def test_flush_costs_at_least_min_penalty(self):
        import random

        program = self._random_branch_program()
        rng = random.Random(9)
        hard = {i: rng.randrange(2) for i in range(400)}
        trace, _ = execute(program, memory=hard)
        base = simulate(program, trace)
        config = ProcessorConfig(redirect_penalty=40)
        slow = simulate(program, trace, config=config)
        extra = slow.cycles - base.cycles
        assert extra >= base.pipeline_flushes * 30  # 35 extra per flush

    def test_mpki_and_flush_stats_consistent(self):
        import random

        program = self._random_branch_program()
        rng = random.Random(9)
        memory = {i: rng.randrange(2) for i in range(400)}
        trace, _ = execute(program, memory=memory)
        stats = simulate(program, trace)
        # without DMP every misprediction flushes
        assert stats.pipeline_flushes == stats.mispredictions
        assert stats.conditional_branches > 0


class TestMemoryEffects:
    def test_pointer_chase_is_slow(self):
        program = assemble(
            """
            .func main
                movi r1, 0
                movi r2, 3000
                movi r5, 0
            loop:
                cmpge r4, r1, r2
                bnez r4, done
                ld r5, 0(r5)
                addi r1, r1, 1
                jmp loop
            done:
                halt
            .endfunc
            """
        )
        import random

        # random cyclic permutation over 200k words (past the L2)
        n = 200_000
        idx = list(range(n))
        random.Random(4).shuffle(idx)
        memory = {idx[i]: idx[(i + 1) % n] for i in range(n)}
        trace, _ = execute(program, memory=memory)
        stats = simulate(program, trace)
        assert stats.ipc < 0.5

    def test_rob_limits_memory_parallelism(self):
        # Same chase with a tiny ROB is slower (fewer overlapped misses
        # behind the chain and less fetch-ahead).
        program = straightline(2000, ilp=True)
        trace, _ = execute(program)
        big = simulate(program, trace, config=ProcessorConfig(rob_size=512))
        small = simulate(program, trace,
                         config=ProcessorConfig(rob_size=16))
        assert small.cycles >= big.cycles


class TestCallsAndReturns:
    def test_ras_predicts_returns(self, call_program, alternating_memory):
        trace, _ = execute(call_program, memory=alternating_memory)
        simulator = TimingSimulator(call_program)
        stats = simulator.run(trace)
        assert simulator.ras.predictions > 0
        assert simulator.ras.mispredictions == 0

    def test_stats_report_renders(self, call_program, alternating_memory):
        trace, _ = execute(call_program, memory=alternating_memory)
        stats = simulate(call_program, trace, label="call-test")
        text = stats.report()
        assert "call-test" in text
        assert "IPC" in text
