"""Hierarchical spans, the simulator cost profiler, and the profile CLI.

Covers the observability tentpole: span nesting/unwinding semantics,
the PhaseProfile-as-view byte compatibility, deterministic simulator
cost attribution (``profiler=None`` changes nothing), structural
bit-identity of span trees under parallel execution, the ``repro
profile`` CLI with its schema, torn-tail-tolerant profile logs, and
the campaign ``--resources`` annotation path.
"""

import json
import time

import pytest

from repro.experiments import fig6, runner
from repro.obs import MetricsRegistry, PhaseProfile, SpanTree, span
from repro.obs.context import telemetry
from repro.obs.spans import PATH_SEP
from repro.obs.timers import phase
from repro.uarch import SimProfiler, TimingSimulator
from repro.uarch.profiler import COMPONENTS, NUM_COMPONENTS


class TestSpanTree:
    def test_nested_spans_record_paths_and_self_time(self):
        tree = SpanTree()
        registry = MetricsRegistry()
        with telemetry(metrics=registry, phases=PhaseProfile(tree)):
            with span("outer"):
                time.sleep(0.01)
                with span("inner"):
                    time.sleep(0.01)
        assert ("outer",) in tree
        assert ("outer", "inner") in tree
        outer = tree.get(("outer",))
        inner = tree.get(("outer", "inner"))
        # Cumulative covers the child; self-time excludes it exactly.
        assert outer["seconds"] >= inner["seconds"]
        assert outer["self_seconds"] == pytest.approx(
            outer["seconds"] - inner["seconds"]
        )
        assert inner["self_seconds"] == pytest.approx(inner["seconds"])
        assert outer["calls"] == inner["calls"] == 1
        # Metrics mirror with dotted path names.
        assert registry.counter(
            "span_outer.inner_seconds_total").value > 0

    def test_span_stack_unwinds_on_exception(self):
        tree = SpanTree()
        bundle = telemetry(
            metrics=MetricsRegistry(), phases=PhaseProfile(tree)
        )
        with bundle:
            with pytest.raises(RuntimeError):
                with span("outer"):
                    with span("inner"):
                        raise RuntimeError("boom")
            # Both spans recorded despite the raise; stack is empty.
            assert tree.current_path() == ()
            assert tree.get(("outer",))["calls"] == 1
            assert tree.get(("outer", "inner"))["calls"] == 1
            # A subsequent span is a root again, not a child of outer.
            with span("after"):
                pass
            assert ("after",) in tree

    def test_snapshot_merge_is_per_path_addition(self):
        a, b = SpanTree(), SpanTree()
        a.record(("x",), 1.0, 0.5, events=2)
        a.record(("x", "y"), 0.5, 0.5, events=1)
        b.record(("x",), 2.0, 1.0, events=3)
        b.record(("z",), 1.0)
        a.merge_snapshot(b.as_dict())
        assert a.seconds(("x",)) == pytest.approx(3.0)
        assert a.self_seconds(("x",)) == pytest.approx(1.5)
        assert a.get(("x",))["events"] == 5
        assert a.seconds(("z",)) == pytest.approx(1.0)
        assert a.seconds(("x", "y")) == pytest.approx(0.5)

    def test_phase_profile_is_a_depth1_view(self):
        profile = PhaseProfile()
        with telemetry(metrics=MetricsRegistry(), phases=profile):
            with phase("simulate") as ph:
                ph.events = 100
            with span("simulate"):
                pass
        # Phases and depth-1 spans share the same tree path.
        assert profile.spans.get(("simulate",))["calls"] == 2
        snapshot = profile.as_dict()["simulate"]
        # The flat snapshot keeps its historical shape: no
        # self_seconds key leaks into the byte-compatible view.
        assert sorted(snapshot) == [
            "calls", "events", "events_per_sec", "seconds"
        ]
        assert snapshot["events"] == 100

    def test_span_end_event_in_trace(self, tmp_path):
        from repro.obs import jsonl_tracer

        path = tmp_path / "t.jsonl"
        tracer = jsonl_tracer(str(path))
        with telemetry(tracer=tracer, metrics=MetricsRegistry(),
                       phases=PhaseProfile()):
            with span("a"):
                with span("b", events=7):
                    pass
        tracer.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        spans = [r for r in records if r["type"] == "span.end"]
        # Children close first.
        assert [r["path"] for r in spans] == ["a" + PATH_SEP + "b", "a"]
        assert spans[0]["depth"] == 2
        assert spans[0]["events"] == 7
        assert spans[1]["self_seconds"] <= spans[1]["seconds"]


class TestTraceReportSpans:
    def test_top_spans_section(self, tmp_path):
        from repro.obs import format_trace_report, jsonl_tracer
        from repro.obs.trace_report import summarize_trace

        path = tmp_path / "t.jsonl"
        tracer = jsonl_tracer(str(path))
        with telemetry(tracer=tracer, metrics=MetricsRegistry(),
                       phases=PhaseProfile()):
            for _ in range(2):
                with span("outer"):
                    with span("inner"):
                        time.sleep(0.002)
        tracer.close()
        summary = summarize_trace(str(path))
        assert summary["spans"]["outer/inner"]["calls"] == 2
        report = format_trace_report(summary)
        assert "top 10 spans by self-time" in report
        assert "outer/inner" in report

    def test_torn_tail_tolerated(self, tmp_path):
        from repro.obs.trace_report import summarize_trace

        path = tmp_path / "t.jsonl"
        record = {"type": "span.end", "name": "a", "path": "a",
                  "depth": 1, "seconds": 0.5, "self_seconds": 0.5,
                  "events": 0}
        path.write_text(json.dumps(record) + "\n"
                        + '{"type": "span.e')
        summary = summarize_trace(str(path))
        assert summary["corrupt_lines"] == 1
        assert summary["spans"]["a"]["seconds"] == pytest.approx(0.5)


SCALE = 0.1
BENCH = ["gzip", "twolf"]


class TestParallelSpanMerge:
    def test_span_tree_structure_identical_serial_vs_parallel(self):
        """jobs=1 vs jobs=4: same results, same span-tree structure.

        Wall-clock seconds differ between runs by nature; the merged
        tree's *structure* — paths, call counts, event counts — must be
        bit-identical, as must the driver's result.
        """
        from repro.exec import artifact_cache

        def run(jobs):
            phases = PhaseProfile()
            with telemetry(metrics=MetricsRegistry(), phases=phases):
                runner.clear_cache()
                result = fig6.run(scale=SCALE, benchmarks=BENCH,
                                  jobs=jobs)
            runner.clear_cache()
            return result, phases.spans_as_dict()

        # Disable the disk cache so both runs do the same cold work
        # (a warm load skips the trace/profile phases entirely).
        artifact_cache.set_disabled(True)
        try:
            serial_result, serial_spans = run(1)
            parallel_result, parallel_spans = run(4)
        finally:
            artifact_cache.set_disabled(None)
        assert serial_result == parallel_result
        assert sorted(serial_spans) == sorted(parallel_spans)
        for key in serial_spans:
            assert serial_spans[key]["calls"] \
                == parallel_spans[key]["calls"], key
            assert serial_spans[key]["events"] \
                == parallel_spans[key]["events"], key
        # The engine wraps every job in a "cell" span on both paths.
        assert serial_spans["cell"]["calls"] == len(BENCH)


class TestSimProfiler:
    def _artifacts(self):
        art = runner.get_artifacts("gzip", scale=0.2)
        return art.program, art.trace

    def test_profiler_does_not_change_results(self):
        program, trace = self._artifacts()
        baseline = TimingSimulator(program).run(trace, label="x")
        profiled = TimingSimulator(
            program, profiler=SimProfiler()
        ).run(trace, label="x")
        assert baseline == profiled

    def test_event_counts_deterministic_and_buckets_partition(self):
        program, trace = self._artifacts()
        p1, p2 = SimProfiler(), SimProfiler()
        TimingSimulator(program, profiler=p1).run(trace, label="x")
        TimingSimulator(program, profiler=p2).run(trace, label="x")
        assert p1.events == p2.events
        assert sum(p1.events) > 0
        # The stopwatch partition sums to the recorded run total.
        run = p1.runs[0]
        assert sum(run["seconds"].values()) == pytest.approx(
            run["total_seconds"]
        )
        assert p1.total_seconds() == pytest.approx(
            sum(p1.seconds)
        )

    def test_components_rows_are_self_time_ordered(self):
        program, trace = self._artifacts()
        profiler = SimProfiler()
        TimingSimulator(program, profiler=profiler).run(trace)
        rows = profiler.components()
        assert [r["name"] for r in rows] != []
        seconds = [r["seconds"] for r in rows]
        assert seconds == sorted(seconds, reverse=True)
        assert sum(r["fraction"] for r in rows) == pytest.approx(1.0)
        assert {r["name"] for r in rows} == set(COMPONENTS)
        assert len(COMPONENTS) == NUM_COMPONENTS

    def test_folded_output_shape(self):
        program, trace = self._artifacts()
        profiler = SimProfiler()
        TimingSimulator(program, profiler=profiler).run(trace)
        lines = profiler.folded()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack.startswith("repro;simulate;")
            assert int(weight) > 0

    def test_metrics_mirroring(self):
        program, trace = self._artifacts()
        registry = MetricsRegistry()
        profiler = SimProfiler()
        simulator = TimingSimulator(
            program, profiler=profiler, metrics=registry
        )
        simulator.run(trace)
        assert registry.counter(
            "simprof_fetch_seconds_total").value > 0
        assert registry.counter(
            "simprof_fetch_events_total").value \
            == profiler.events[COMPONENTS.index("fetch")]


class TestProfileCli:
    def _build(self):
        from repro.compiler import registry as preset_registry
        from repro.obs.profile_cli import build_profile

        config = preset_registry.resolve("all-best-cost")
        return build_profile("gzip", config, scale=0.2)

    def test_buckets_cover_simulate_self_time(self):
        data = self._build()
        sim = data["simulate"]
        # Acceptance: component buckets sum (within rounding/boundary
        # noise) to the simulate span's self-time.
        assert sim["self_seconds"] > 0
        assert 0.90 <= sim["coverage"] <= 1.001
        assert sim["attributed_seconds"] == pytest.approx(
            data["profiler"]["total_seconds"]
        )
        assert sim["insts_per_sec"] > 0
        assert data["run"]["retired_instructions"] == pytest.approx(
            sim["insts_per_sec"] * sim["self_seconds"]
        )

    def test_json_validates_against_schema(self):
        from repro.obs.profile_cli import validate_profile

        data = self._build()
        assert validate_profile(data) == []
        # Round-trips through JSON unchanged (no non-serializable
        # values sneak in).
        assert validate_profile(json.loads(json.dumps(data))) == []

    def test_schema_rejects_malformed(self):
        from repro.obs.profile_cli import validate_profile

        data = self._build()
        data["profiler"]["components"][0]["name"] = "warp_drive"
        del data["simulate"]["coverage"]
        errors = validate_profile(data)
        assert any("warp_drive" in e for e in errors)
        assert any("coverage" in e for e in errors)

    def test_cli_text_and_folded_and_json(self, tmp_path, capsys):
        from repro.obs.profile_cli import main

        assert main(["gzip", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "simulator hotspots" in out
        assert "span timings" in out
        assert "insts/sec" in out

        out_path = tmp_path / "deep" / "nested" / "p.folded"
        assert main(["gzip", "--scale", "0.2", "--folded",
                     "-o", str(out_path)]) == 0
        folded = out_path.read_text().splitlines()
        assert any(line.startswith("repro;simulate;")
                   for line in folded)

        json_path = tmp_path / "deep" / "p.json"
        assert main(["gzip", "--scale", "0.2", "--json",
                     "-o", str(json_path)]) == 0
        data = json.loads(json_path.read_text())
        assert data["workload"] == "gzip"

    def test_profile_log_torn_tail(self, tmp_path):
        from repro.obs.profile_cli import (
            append_profile_log,
            read_profile_log,
        )

        path = tmp_path / "deep" / "history.jsonl"
        append_profile_log(str(path), {"workload": "gzip", "n": 1})
        append_profile_log(str(path), {"workload": "gzip", "n": 2})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"workload": "torn')
        records, corrupt = read_profile_log(str(path))
        assert [r["n"] for r in records] == [1, 2]
        assert corrupt == 1

    def test_unknown_workload_fails_cleanly(self, capsys):
        from repro.obs.profile_cli import main

        assert main(["no-such-benchmark"]) == 1
        assert "error" in capsys.readouterr().err


class TestCampaignResources:
    def test_cell_usage_shape(self):
        from repro.campaign.scheduler import _cell_usage

        usage = _cell_usage()
        assert usage is not None
        assert set(usage) == {
            "user_seconds", "system_seconds", "max_rss_kb"
        }
        assert usage["max_rss_kb"] > 0

    def test_journal_resources_round_trip(self, tmp_path):
        from repro.campaign.journal import Journal, replay

        path = tmp_path / "journal.jsonl"
        usage = {"user_seconds": 1.5, "system_seconds": 0.25,
                 "max_rss_kb": 51200}
        with Journal(str(path)) as journal:
            journal.campaign_start("c", "hash", 1)
            journal.cell_finish("cell-1", 1, 0.5, {"speedup": 0.1},
                                resources=usage)
            journal.cell_finish("cell-2", 1, 0.5, {"speedup": 0.2})
        state = replay(str(path))
        assert state.resources == {"cell-1": usage}

    def test_report_resources_is_an_annotation(self):
        """Base report stays byte-identical; --resources appends."""
        from repro.campaign.report import render_report
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="c", benchmarks=("gzip",), axes=(),
            selection="all-best-cost", scale=0.1,
        )
        cells = spec.cells()
        results = {
            cells[0].cell_id: {
                "speedup": 0.1,
                "baseline": {"ipc": 1.0},
                "stats": {"ipc": 1.1},
            }
        }
        base = render_report(spec, results)
        with_none = render_report(spec, results, resources=None)
        assert base == with_none
        usage = {"user_seconds": 1.0, "system_seconds": 0.5,
                 "max_rss_kb": 2048}
        annotated = render_report(
            spec, results,
            resources={cells[0].cell_id: usage},
        )
        assert annotated.startswith(base)
        assert "Worker resources" in annotated
        assert "2.0" in annotated  # 2048 kB -> 2.0 MB
        # Cells without journaled usage render as gaps, not errors.
        gap_report = render_report(spec, results, resources={})
        assert "0/1 cells journaled usage" in gap_report
