"""Additional edge-case coverage across small utilities."""

import pytest

from repro.cfg import build_cfgs, enumerate_paths
from repro.emulator import execute
from repro.isa import ProgramBuilder, assemble
from repro.uarch.stats import SimStats
from repro.workloads import load_benchmark
from repro.workloads.generator import fill_memory


class TestSimStats:
    def test_zero_division_guards(self):
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.mpki == 0.0
        assert stats.flushes_per_kilo_inst == 0.0
        assert stats.measured_acc_conf == 0.0
        assert stats.merge_rate == 0.0

    def test_speedup_over(self):
        fast = SimStats(cycles=100, retired_instructions=1000)
        slow = SimStats(cycles=200, retired_instructions=1000)
        assert fast.speedup_over(slow) == pytest.approx(1.0)
        assert slow.speedup_over(fast) == pytest.approx(-0.5)
        empty = SimStats()
        assert fast.speedup_over(empty) == 0.0

    def test_report_without_dpred_has_no_dpred_line(self):
        stats = SimStats(label="x", cycles=10, retired_instructions=10)
        assert "dpred" not in stats.report()


class TestTraceDetails:
    def test_halt_recorded_in_trace(self):
        program = assemble(".func main\n    halt\n.endfunc")
        trace, result = execute(program)
        assert result.halted
        assert trace[-1].pc == 0

    def test_dynamic_instruction_repr(self):
        program = assemble(".func main\n    nop\n    halt\n.endfunc")
        trace, _ = execute(program)
        assert "pc=0" in repr(trace[0])

    def test_collect_trace_false_returns_none(self):
        program = assemble(".func main\n    halt\n.endfunc")
        trace, result = execute(program, collect_trace=False)
        assert trace is None
        assert result.halted


class TestPathEnumerationLimits:
    def test_max_paths_cap(self):
        # A ladder of N independent branches yields 2^N paths; the cap
        # must bound enumeration without raising.
        builder = ProgramBuilder()
        builder.begin_function("main")
        builder.movi(1, 1)
        start = builder.here
        builder.bnez(1, "l0")
        builder.label("l0")
        for i in range(12):
            taken = f"t{i}"
            merge = f"m{i}"
            builder.bnez(1, taken)
            builder.addi(2, 2, 1)
            builder.jmp(merge)
            builder.label(taken)
            builder.addi(3, 3, 1)
            builder.label(merge)
        builder.halt()
        builder.end_function()
        program = builder.build()
        cfg = build_cfgs(program)["main"]
        ps = enumerate_paths(
            cfg,
            start,
            lambda pc, taken: 0.5,
            max_instr=500,
            max_cbr=50,
            max_paths=64,
        )
        assert 0 < len(ps.taken_paths) <= 64

    def test_tiny_probability_inner_directions_pruned(self):
        builder = ProgramBuilder()
        builder.begin_function("main")
        builder.movi(1, 1)
        builder.bnez(1, "side")          # root branch (pc 1)
        builder.addi(2, 2, 1)
        builder.bnez(2, "side")          # inner branch (pc 3)
        builder.addi(2, 2, 2)
        builder.label("side")
        builder.addi(3, 3, 1)
        builder.halt()
        builder.end_function()
        program = builder.build()
        cfg = build_cfgs(program)["main"]
        # The root branch's directions are always explored (the
        # enumeration is *conditional* on them); an inner branch whose
        # every direction is below MIN_EXEC_PROB ends its path as
        # "pruned".
        ps = enumerate_paths(
            cfg, 1, lambda pc, taken: 1e-12, max_instr=50, max_cbr=5,
            min_exec_prob=1e-3,
        )
        assert any(p.reason == "pruned" for p in ps.nottaken_paths)


class TestInputSets:
    def test_train_trip_counts_scale_up(self):
        reduced = load_benchmark("parser", scale=0.3)
        train = load_benchmark("parser", scale=0.3, input_set="train")
        # diverge-loop trip words live in the loop regions' segments;
        # compare total trip mass as a proxy.
        reduced_sum = sum(reduced.memory.values())
        train_sum = sum(train.memory.values())
        assert train_sum != reduced_sum

    def test_fill_memory_rejects_nothing_silently(self):
        # every region kind in the default specs has an input generator
        workload = load_benchmark("go", scale=0.1)
        assert workload.memory  # non-empty image

    def test_memory_images_are_ints(self):
        workload = load_benchmark("mcf", scale=0.1)
        sample = list(workload.memory.items())[:100]
        assert all(
            isinstance(k, int) and isinstance(v, int) for k, v in sample
        )


class TestRunnerCache:
    def test_clear_cache_resets(self):
        from repro.experiments.runner import (
            clear_cache,
            get_artifacts,
        )

        first = get_artifacts("li", scale=0.1)
        clear_cache()
        second = get_artifacts("li", scale=0.1)
        assert first is not second
        # determinism: same content regardless of cache state
        assert len(first.trace) == len(second.trace)
