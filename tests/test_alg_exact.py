"""Tests for Algorithm 1 (Alg-exact)."""

import pytest

from repro.core.alg_exact import find_exact_candidates
from repro.core.analysis import ProgramAnalysis
from repro.core.marks import CFMKind, DivergeKind
from repro.core.thresholds import SelectionThresholds
from repro.isa import assemble
from repro.profiling import Profiler


def analyze(program, memory):
    profile = Profiler().profile(program, memory=memory)
    return ProgramAnalysis(program, profile)


def test_simple_hammock_selected(simple_hammock_program,
                                 alternating_memory):
    analysis = analyze(simple_hammock_program, alternating_memory)
    candidates = find_exact_candidates(analysis, SelectionThresholds())
    hammock = [c for c in candidates if c.branch_pc == 6]
    assert len(hammock) == 1
    candidate = hammock[0]
    assert candidate.kind is DivergeKind.SIMPLE_HAMMOCK
    assert len(candidate.cfm_points) == 1
    cfm = candidate.cfm_points[0]
    assert cfm.kind is CFMKind.EXACT
    assert cfm.merge_prob == 1.0
    # merge label is at pc 10 in the fixture
    assert cfm.pc == 10


def test_nested_hammock_classified_nested(nested_hammock_program,
                                          alternating_memory):
    memory = {i: i % 4 for i in range(200)}
    analysis = analyze(nested_hammock_program, memory)
    candidates = {
        c.branch_pc: c
        for c in find_exact_candidates(analysis, SelectionThresholds())
    }
    outer = candidates[6]
    assert outer.kind is DivergeKind.NESTED_HAMMOCK
    inner = candidates[11]
    assert inner.kind is DivergeKind.SIMPLE_HAMMOCK


def test_max_instr_rejects_large_hammock():
    side = "\n".join("    addi r6, r6, 1" for _ in range(60))
    program = assemble(
        f"""
        .func main
            movi r1, 0
            movi r2, 50
        loop:
            cmpge r4, r1, r2
            bnez r4, done
            ld r3, 0(r1)
            bnez r3, then
{side}
            jmp merge
        then:
            addi r7, r7, 1
        merge:
            addi r1, r1, 1
            jmp loop
        done:
            halt
        .endfunc
        """
    )
    memory = {i: i % 2 for i in range(60)}
    analysis = analyze(program, memory)
    small = find_exact_candidates(
        analysis, SelectionThresholds().with_overrides(max_instr=50)
    )
    large = find_exact_candidates(
        analysis, SelectionThresholds().with_overrides(max_instr=200)
    )
    assert 5 not in {c.branch_pc for c in small}
    assert 5 in {c.branch_pc for c in large}


def test_call_inside_hammock_demotes_to_nested(call_program):
    # the call fixture's main-loop hammock is in the helper; build one
    # with a call inside a hammock side instead.
    program = assemble(
        """
        .func main
            movi r1, 0
            movi r2, 40
        loop:
            cmpge r4, r1, r2
            bnez r4, done
            ld r3, 0(r1)
            bnez r3, then
            addi r6, r6, 1
            jmp merge
        then:
            call helper
        merge:
            addi r1, r1, 1
            jmp loop
        done:
            halt
        .endfunc
        .func helper
            addi r7, r7, 1
            ret
        .endfunc
        """
    )
    memory = {i: i % 2 for i in range(50)}
    analysis = analyze(program, memory)
    candidates = {
        c.branch_pc: c
        for c in find_exact_candidates(analysis, SelectionThresholds())
    }
    assert candidates[5].kind is DivergeKind.NESTED_HAMMOCK


def test_branch_without_iposdom_not_selected(call_program,
                                             alternating_memory):
    analysis = analyze(call_program, alternating_memory)
    candidates = find_exact_candidates(analysis, SelectionThresholds())
    helper_branch = call_program.function_named("helper").start + 1
    assert helper_branch not in {c.branch_pc for c in candidates}


def test_loop_exit_branches_excluded(loop_program):
    memory = {i: (i % 3) + 1 for i in range(100)}
    analysis = analyze(loop_program, memory)
    candidates = find_exact_candidates(analysis, SelectionThresholds())
    latch_pc = next(
        pc
        for pc in loop_program.conditional_branch_pcs()
        if loop_program[pc].target <= pc
    )
    assert latch_pc not in {c.branch_pc for c in candidates}
