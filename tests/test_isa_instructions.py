"""Unit tests for the instruction data model."""

import pytest

from repro.isa import Instruction, Opcode
from repro.isa.instructions import (
    ALU_OPCODES,
    COMPARE_OPCODES,
    COND_BRANCH_OPCODES,
    DEFAULT_LATENCY,
    LATENCIES,
)


class TestValidation:
    def test_alu_requires_exactly_one_second_operand(self):
        with pytest.raises(ValueError):
            Instruction(op=Opcode.ADD, dest=1, src1=2)
        with pytest.raises(ValueError):
            Instruction(op=Opcode.ADD, dest=1, src1=2, src2=3, imm=4)

    def test_alu_register_form(self):
        inst = Instruction(op=Opcode.ADD, dest=1, src1=2, src2=3)
        assert inst.read_registers() == (2, 3)
        assert inst.written_register() == 1

    def test_alu_immediate_form(self):
        inst = Instruction(op=Opcode.SUB, dest=1, src1=2, imm=7)
        assert inst.read_registers() == (2,)
        assert inst.imm == 7

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(op=Opcode.ADD, dest=64, src1=0, imm=0)
        with pytest.raises(ValueError):
            Instruction(op=Opcode.ADD, dest=-1, src1=0, imm=0)

    def test_register_type_checked(self):
        with pytest.raises(TypeError):
            Instruction(op=Opcode.MOV, dest="r1", src1=0)

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(op=Opcode.BEQZ, src1=1)

    def test_load_requires_offset(self):
        with pytest.raises(ValueError):
            Instruction(op=Opcode.LD, dest=1, src1=2)

    def test_store_operands(self):
        inst = Instruction(op=Opcode.ST, src1=2, src2=3, imm=4)
        assert inst.read_registers() == (2, 3)
        assert inst.written_register() is None

    def test_movi_requires_immediate(self):
        with pytest.raises(ValueError):
            Instruction(op=Opcode.MOVI, dest=1)

    def test_nop_ret_halt_take_no_operands(self):
        for op in (Opcode.NOP, Opcode.RET, Opcode.HALT):
            inst = Instruction(op=op)
            assert inst.read_registers() == ()
            assert inst.written_register() is None


class TestClassification:
    def test_conditional_branches(self):
        beqz = Instruction(op=Opcode.BEQZ, src1=1, target=0)
        assert beqz.is_conditional_branch
        assert beqz.is_control
        assert not beqz.is_call

    def test_jump_is_control_not_conditional(self):
        jmp = Instruction(op=Opcode.JMP, target=0)
        assert jmp.is_control
        assert not jmp.is_conditional_branch

    def test_call_return(self):
        call = Instruction(op=Opcode.CALL, target=0)
        ret = Instruction(op=Opcode.RET)
        assert call.is_call and call.is_control
        assert ret.is_return and ret.is_control

    def test_memory_ops(self):
        ld = Instruction(op=Opcode.LD, dest=1, src1=2, imm=0)
        st = Instruction(op=Opcode.ST, src1=2, src2=3, imm=0)
        assert ld.is_load and not ld.is_store
        assert st.is_store and not st.is_load

    def test_compare_opcodes_are_alu(self):
        assert COMPARE_OPCODES <= ALU_OPCODES

    def test_cond_branch_opcode_set(self):
        assert COND_BRANCH_OPCODES == {Opcode.BEQZ, Opcode.BNEZ}


class TestLatency:
    def test_default_latency(self):
        inst = Instruction(op=Opcode.ADD, dest=1, src1=2, imm=0)
        assert inst.latency == DEFAULT_LATENCY

    def test_long_latency_ops(self):
        mul = Instruction(op=Opcode.MUL, dest=1, src1=2, src2=3)
        div = Instruction(op=Opcode.DIV, dest=1, src1=2, src2=3)
        assert mul.latency == LATENCIES[Opcode.MUL]
        assert div.latency > mul.latency


class TestFormatting:
    def test_alu_format(self):
        inst = Instruction(op=Opcode.ADD, dest=1, src1=2, imm=5)
        assert inst.format() == "add r1, r2, 5"

    def test_branch_format(self):
        inst = Instruction(op=Opcode.BNEZ, src1=3, target=17)
        assert inst.format() == "bnez r3, @17"

    def test_memory_format(self):
        ld = Instruction(op=Opcode.LD, dest=1, src1=2, imm=8)
        st = Instruction(op=Opcode.ST, src1=2, src2=4, imm=0)
        assert ld.format() == "ld r1, 8(r2)"
        assert st.format() == "st r4, 0(r2)"

    def test_str_matches_format(self):
        inst = Instruction(op=Opcode.NOP)
        assert str(inst) == inst.format() == "nop"


class TestRetarget:
    def test_retarget_preserves_fields(self):
        inst = Instruction(op=Opcode.BEQZ, src1=4, target=0, label="x")
        moved = inst.retarget(9)
        assert moved.target == 9
        assert moved.src1 == 4
        assert moved.label == "x"
        assert inst.target == 0  # original untouched

    def test_zero_register_writes_reported(self):
        inst = Instruction(op=Opcode.ADD, dest=0, src1=1, imm=1)
        # The encoding reports r0; consumers decide to ignore it.
        assert inst.written_register() == 0
