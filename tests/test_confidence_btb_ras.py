"""Tests for the JRS confidence estimator, BTB, and return address stack."""

import pytest

from repro.branchpred import (
    BranchTargetBuffer,
    JRSConfidenceEstimator,
    ReturnAddressStack,
)


class TestJRS:
    def test_starts_low_confidence(self):
        jrs = JRSConfidenceEstimator(history_bits=0)
        assert jrs.is_low_confidence(10)

    def test_reaches_high_confidence_after_threshold_correct(self):
        jrs = JRSConfidenceEstimator(history_bits=0, threshold=14)
        for _ in range(13):
            jrs.update(10, mispredicted=False)
        assert jrs.is_low_confidence(10)
        jrs.update(10, mispredicted=False)
        assert not jrs.is_low_confidence(10)

    def test_misprediction_resets_counter(self):
        jrs = JRSConfidenceEstimator(history_bits=0)
        for _ in range(15):
            jrs.update(10, mispredicted=False)
        assert not jrs.is_low_confidence(10)
        jrs.update(10, mispredicted=True)
        assert jrs.is_low_confidence(10)

    def test_counter_saturates(self):
        jrs = JRSConfidenceEstimator(history_bits=0)
        for _ in range(100):
            jrs.update(10, mispredicted=False)
        index = jrs._index(10)
        assert jrs._counters[index] == 15

    def test_pvn_measures_low_confidence_accuracy(self):
        jrs = JRSConfidenceEstimator(history_bits=0)
        # 10 low-confidence events, 4 of them mispredictions
        for i in range(10):
            jrs.update(3, mispredicted=i < 4, was_low_confidence=True)
        assert jrs.pvn == pytest.approx(0.4)
        assert jrs.coverage == pytest.approx(1.0)

    def test_enhanced_indexing_uses_history(self):
        jrs = JRSConfidenceEstimator(history_bits=12)
        before = jrs._index(100)
        jrs.update(100, mispredicted=True)
        after = jrs._index(100)
        assert before != after  # history bit changed the mapping

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            JRSConfidenceEstimator(threshold=0)
        with pytest.raises(ValueError):
            JRSConfidenceEstimator(threshold=16)

    def test_reset(self):
        jrs = JRSConfidenceEstimator(history_bits=0)
        for _ in range(20):
            jrs.update(1, mispredicted=False)
        jrs.reset()
        assert jrs.is_low_confidence(1)
        assert jrs.queries == 0


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(num_entries=16)
        assert btb.lookup(5) is None
        btb.insert(5, 99)
        assert btb.lookup(5) == 99
        assert btb.misses == 1 and btb.hits == 1

    def test_aliasing_eviction(self):
        btb = BranchTargetBuffer(num_entries=16)
        btb.insert(5, 99)
        btb.insert(5 + 16, 42)  # same slot
        assert btb.lookup(5) is None

    def test_reset(self):
        btb = BranchTargetBuffer(num_entries=16)
        btb.insert(1, 2)
        btb.reset()
        assert btb.lookup(1) is None
        assert btb.misses == 1  # the post-reset lookup

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(num_entries=0)


class TestRAS:
    def test_matched_push_pop(self):
        ras = ReturnAddressStack(depth=8)
        ras.push(101)
        ras.push(202)
        assert ras.pop_predict(202)
        assert ras.pop_predict(101)
        assert ras.mispredictions == 0

    def test_pop_empty_mispredicts(self):
        ras = ReturnAddressStack(depth=8)
        assert not ras.pop_predict(55)
        assert ras.mispredictions == 1

    def test_overflow_wraps_and_mispredicts_deep_returns(self):
        ras = ReturnAddressStack(depth=4)
        for pc in range(10):
            ras.push(pc)
        assert ras.overflows == 6
        # The newest four predictions are fine...
        for pc in (9, 8, 7, 6):
            assert ras.pop_predict(pc)
        # ...but older frames were overwritten.
        assert not ras.pop_predict(5)

    def test_wrong_target_counts(self):
        ras = ReturnAddressStack(depth=8)
        ras.push(1)
        assert not ras.pop_predict(2)
        assert ras.mispredictions == 1
        assert ras.predictions == 1
