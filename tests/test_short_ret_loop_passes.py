"""Tests for the short-hammock, return-CFM, and diverge-loop passes."""

import pytest

from repro.core.alg_exact import find_exact_candidates
from repro.core.analysis import ProgramAnalysis
from repro.core.loop_selection import select_loop_diverge_branches
from repro.core.marks import CFMKind, DivergeKind
from repro.core.return_cfm import find_return_cfm_candidates
from repro.core.short_hammocks import apply_short_hammock_heuristic
from repro.core.thresholds import SelectionThresholds
from repro.isa import assemble
from repro.profiling import Profiler


def analyze(program, memory):
    profile = Profiler().profile(program, memory=memory)
    return ProgramAnalysis(program, profile), profile


class TestShortHammocks:
    def _candidates(self, memory):
        program = assemble(
            """
            .func main
                movi r1, 0
                movi r2, 150
            loop:
                cmpge r4, r1, r2
                bnez r4, done
                ld r3, 0(r1)
                bnez r3, then
                addi r6, r6, 1
                jmp merge
            then:
                addi r7, r7, 1
            merge:
                addi r1, r1, 1
                jmp loop
            done:
                halt
            .endfunc
            """
        )
        analysis, profile = analyze(program, memory)
        candidates = find_exact_candidates(
            analysis, SelectionThresholds()
        )
        return candidates, profile

    def test_hard_tiny_hammock_qualifies(self):
        # A genuinely unpredictable condition (the alternating fixture
        # is period-2 and the perceptron learns it below the 5% gate).
        import random

        rng = random.Random(5)
        memory = {i: rng.randrange(2) for i in range(200)}
        candidates, profile = self._candidates(memory)
        short, regular = apply_short_hammock_heuristic(
            candidates, profile, SelectionThresholds()
        )
        assert 5 in short  # the bnez r3 hammock
        assert all(c.branch_pc != 5 for c in regular)

    def test_predictable_hammock_does_not_qualify(self):
        # always-0 condition: misprediction rate ~0 < 5%
        memory = {i: 0 for i in range(200)}
        candidates, profile = self._candidates(memory)
        short, regular = apply_short_hammock_heuristic(
            candidates, profile, SelectionThresholds()
        )
        assert 5 not in short

    def test_misp_rate_threshold_honoured(self, alternating_memory):
        candidates, profile = self._candidates(alternating_memory)
        strict = SelectionThresholds().with_overrides(
            short_hammock_min_misp_rate=0.99
        )
        short, _ = apply_short_hammock_heuristic(
            candidates, profile, strict
        )
        assert short == {}

    def test_size_threshold_honoured(self, alternating_memory):
        candidates, profile = self._candidates(alternating_memory)
        tiny = SelectionThresholds().with_overrides(
            short_hammock_max_insts=1
        )
        short, _ = apply_short_hammock_heuristic(candidates, profile, tiny)
        assert short == {}


class TestReturnCFM:
    def test_two_return_hammock_found(self, call_program,
                                      alternating_memory):
        analysis, profile = analyze(call_program, alternating_memory)
        candidates = find_return_cfm_candidates(
            analysis, SelectionThresholds()
        )
        helper_branch = call_program.function_named("helper").start + 1
        match = [c for c in candidates if c.branch_pc == helper_branch]
        assert len(match) == 1
        cfm = match[0].cfm_points[0]
        assert cfm.kind is CFMKind.RETURN
        assert cfm.pc is None
        assert cfm.merge_prob > 0.9

    def test_excluded_branches_skipped(self, call_program,
                                       alternating_memory):
        analysis, _ = analyze(call_program, alternating_memory)
        helper_branch = call_program.function_named("helper").start + 1
        candidates = find_return_cfm_candidates(
            analysis, SelectionThresholds(), exclude_pcs={helper_branch}
        )
        assert helper_branch not in {c.branch_pc for c in candidates}

    def test_normal_hammock_not_a_return_cfm(self, simple_hammock_program,
                                             alternating_memory):
        analysis, _ = analyze(simple_hammock_program, alternating_memory)
        candidates = find_return_cfm_candidates(
            analysis, SelectionThresholds()
        )
        assert 6 not in {c.branch_pc for c in candidates}


class TestLoopSelection:
    def _select(self, loop_program, trips, thresholds=None):
        memory = {i: trips(i) for i in range(100)}
        analysis, _ = analyze(loop_program, memory)
        return select_loop_diverge_branches(
            analysis, thresholds or SelectionThresholds()
        )

    def test_small_loop_selected(self, loop_program):
        selected, reports = self._select(loop_program,
                                         lambda i: (i % 3) + 1)
        latch = next(
            b for b in selected if b.kind is DivergeKind.LOOP
        )
        assert latch.loop_direction is True  # taken continues the loop
        assert latch.loop_body_size > 0
        assert latch.cfm_points[0].kind is CFMKind.LOOP_EXIT
        assert latch.cfm_points[0].pc == latch.branch_pc + 1

    def test_high_iteration_loop_rejected(self, loop_program):
        selected, reports = self._select(loop_program, lambda i: 40)
        assert all(b.kind is not DivergeKind.LOOP or False
                   for b in selected) or not selected
        rejected = [r for r in reports if not r.accepted]
        assert any("iterations" in r.reject_reason
                   or "dynamic" in r.reject_reason for r in rejected)

    def test_dynamic_size_rejection(self, loop_program):
        thresholds = SelectionThresholds().with_overrides(
            dynamic_loop_size=4
        )
        selected, reports = self._select(
            loop_program, lambda i: (i % 3) + 1, thresholds
        )
        assert not selected
        assert any("dynamic" in r.reject_reason for r in reports)

    def test_static_size_rejection(self, loop_program):
        thresholds = SelectionThresholds().with_overrides(
            static_loop_size=1
        )
        selected, reports = self._select(
            loop_program, lambda i: (i % 3) + 1, thresholds
        )
        assert not selected
        assert any("static" in r.reject_reason for r in reports)

    def test_select_registers_cover_loop_body(self, loop_program):
        selected, _ = self._select(loop_program, lambda i: (i % 3) + 1)
        latch = selected[0]
        # body writes r5 (accumulator) and r3 (counter)
        assert 5 in latch.select_registers
        assert 3 in latch.select_registers
