"""Shared fixtures: small hand-written programs with known structure."""

import pytest

from repro.exec import artifact_cache
from repro.isa import ProgramBuilder, assemble


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Point the persistent artifact cache at a per-test directory.

    Keeps the suite hermetic: no test reads artifacts a previous run
    (or the developer's real experiments) left in ``~/.cache``.  The
    in-memory runner caches (artifacts, baselines, shared analyses)
    are cleared on entry for the same reason — the campaign
    scheduler's parent-side warm hook populates them as a side effect
    of any campaign test.
    """
    from repro.experiments import runner

    monkeypatch.delenv(artifact_cache.ENV_CACHE_DISABLE, raising=False)
    monkeypatch.setenv(
        artifact_cache.ENV_CACHE_DIR, str(tmp_path / "artifact-cache")
    )
    runner.clear_cache()
    yield


@pytest.fixture
def simple_hammock_program():
    """An if-else hammock driven by memory word 0, in a counted loop.

    Branch at the ``bnez`` over r3; merge at the xor; loop runs 100
    iterations reading words 0..99.
    """
    return assemble(
        """
        .func main
            movi r1, 0
            movi r2, 100
        loop:
            cmpge r4, r1, r2
            bnez r4, done
            mov r5, r1
            ld r3, 0(r5)
            bnez r3, then      ; the hammock branch
            addi r6, r6, 1
            jmp merge
        then:
            addi r7, r7, 2
        merge:
            xor r8, r8, 3
            addi r1, r1, 1
            jmp loop
        done:
            halt
        .endfunc
        """,
        name="simple-hammock",
    )


@pytest.fixture
def nested_hammock_program():
    """An if-else whose taken side contains another if-else."""
    return assemble(
        """
        .func main
            movi r1, 0
            movi r2, 80
        loop:
            cmpge r4, r1, r2
            bnez r4, done
            ld r3, 0(r1)
            and r5, r3, 1
            bnez r5, outer_then
            addi r6, r6, 1
            addi r6, r6, 1
            jmp outer_merge
        outer_then:
            and r5, r3, 2
            bnez r5, inner_then
            addi r7, r7, 1
            jmp inner_merge
        inner_then:
            addi r7, r7, 2
        inner_merge:
            addi r7, r7, 3
        outer_merge:
            addi r1, r1, 1
            jmp loop
        done:
            halt
        .endfunc
        """,
        name="nested-hammock",
    )


@pytest.fixture
def loop_program():
    """A do-while inner loop with a data-driven trip count."""
    return assemble(
        """
        .func main
            movi r1, 0
            movi r2, 60
        outer:
            cmpge r4, r1, r2
            bnez r4, done
            ld r3, 0(r1)
        inner:
            addi r5, r5, 1
            addi r3, r3, -1
            bnez r3, inner      ; diverge loop latch
            addi r1, r1, 1
            jmp outer
        done:
            halt
        .endfunc
        """,
        name="loop-program",
    )


@pytest.fixture
def call_program():
    """A hammock that merges at different returns inside a helper."""
    return assemble(
        """
        .func main
            movi r1, 0
            movi r2, 50
        loop:
            cmpge r4, r1, r2
            bnez r4, done
            mov r20, r1
            call helper
            addi r1, r1, 1
            jmp loop
        done:
            halt
        .endfunc
        .func helper
            ld r3, 0(r20)
            bnez r3, h_then
            addi r6, r6, 1
            ret
        h_then:
            addi r7, r7, 1
            ret
        .endfunc
        """,
        name="call-program",
    )


@pytest.fixture
def alternating_memory():
    """Input memory where word i = i % 2 (perfectly periodic condition)."""
    return {i: i % 2 for i in range(200)}


@pytest.fixture
def biased_memory():
    """Input memory where every 7th word is 1 (rare-event condition)."""
    return {i: 1 if i % 7 == 0 else 0 for i in range(200)}


def build_straightline(n):
    """A trivial program of n serial adds then halt (helper for tests)."""
    builder = ProgramBuilder("straightline")
    builder.begin_function("main")
    for i in range(n):
        builder.addi(1, 1, i)
    builder.halt()
    builder.end_function()
    return builder.build()
