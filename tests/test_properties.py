"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.branchpred import (
    BimodalPredictor,
    GsharePredictor,
    JRSConfidenceEstimator,
    PerceptronPredictor,
)
from repro.cfg import build_cfgs, enumerate_paths
from repro.emulator import execute
from repro.isa import ProgramBuilder
from repro.memory import Cache
from repro.uarch import simulate
from repro.workloads.behaviors import BehaviorRNG

# -- emulator arithmetic ------------------------------------------------------

_WRAP = 1 << 64
_SIGN = 1 << 63


def _wrap64(v):
    v &= _WRAP - 1
    return v - _WRAP if v & _SIGN else v


@st.composite
def two_operands(draw):
    bound = (1 << 63) - 1
    return (
        draw(st.integers(min_value=-bound, max_value=bound)),
        draw(st.integers(min_value=-bound, max_value=bound)),
    )


@given(two_operands())
@settings(max_examples=60, deadline=None)
def test_emulated_add_matches_wrapped_python(ops):
    a, b = ops
    builder = ProgramBuilder()
    builder.begin_function("main")
    builder.movi(1, a)
    builder.movi(2, b)
    builder.add(3, 1, 2)
    builder.sub(4, 1, 2)
    builder.xor(5, 1, 2)
    builder.halt()
    builder.end_function()
    _, result = execute(builder.build())
    assert result.state.regs[3] == _wrap64(a + b)
    assert result.state.regs[4] == _wrap64(a - b)
    assert result.state.regs[5] == a ^ b


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                max_size=200))
@settings(max_examples=40, deadline=None)
def test_branch_outcomes_follow_data(bits):
    builder = ProgramBuilder()
    builder.begin_function("main")
    builder.movi(1, 0)
    builder.movi(2, len(bits))
    builder.label("loop")
    builder.cmpge(4, 1, 2)
    builder.bnez(4, "done")
    builder.ld(3, 1, 0)
    taken_l = builder.fresh_label("t")
    merge_l = builder.fresh_label("m")
    builder.bnez(3, taken_l)
    builder.addi(6, 6, 1)
    builder.jmp(merge_l)
    builder.label(taken_l)
    builder.addi(7, 7, 1)
    builder.label(merge_l)
    builder.addi(1, 1, 1)
    builder.jmp("loop")
    builder.label("done")
    builder.halt()
    builder.end_function()
    program = builder.build()
    memory = dict(enumerate(bits))
    _, result = execute(program, memory=memory)
    assert result.state.regs[7] == sum(bits)
    assert result.state.regs[6] == len(bits) - sum(bits)


# -- caches -------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=512), min_size=1,
             max_size=300),
    st.sampled_from([1, 2, 4]),
)
@settings(max_examples=40, deadline=None)
def test_cache_agrees_with_reference_lru(addresses, assoc):
    cache = Cache("t", num_sets=4, associativity=assoc, words_per_line=4)
    # reference model: per-set list of line tags in LRU order
    sets = [[] for _ in range(4)]
    for address in addresses:
        line = address // 4
        index = line % 4
        ref = sets[index]
        expect_hit = line in ref
        if expect_hit:
            ref.remove(line)
        ref.append(line)
        if len(ref) > assoc:
            ref.pop(0)
        assert cache.access(address) == expect_hit


@given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1))
@settings(max_examples=30, deadline=None)
def test_cache_stats_invariant(addresses):
    cache = Cache("t", num_sets=8, associativity=2)
    for address in addresses:
        cache.access(address)
    assert cache.hits + cache.misses == len(addresses)
    assert 0.0 <= cache.miss_rate <= 1.0


# -- predictors ---------------------------------------------------------------


@given(
    st.sampled_from(["bimodal", "gshare", "perceptron"]),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
        min_size=1,
        max_size=300,
    ),
)
@settings(max_examples=30, deadline=None)
def test_predictors_always_return_bool_and_stay_deterministic(kind, stream):
    from repro.branchpred import make_predictor

    a = make_predictor(kind)
    b = make_predictor(kind)
    for pc, taken in stream:
        pa = a.predict(pc)
        pb = b.predict(pc)
        assert isinstance(pa, bool) or pa in (True, False)
        assert pa == pb
        a.update(pc, taken)
        b.update(pc, taken)


@given(st.lists(st.booleans(), min_size=1, max_size=400))
@settings(max_examples=30, deadline=None)
def test_jrs_pvn_is_a_probability(outcomes):
    jrs = JRSConfidenceEstimator(history_bits=0)
    rng = random.Random(1)
    for mispredicted in outcomes:
        jrs.update(rng.randrange(32), mispredicted)
    assert 0.0 <= jrs.pvn <= 1.0
    assert 0.0 <= jrs.coverage <= 1.0


# -- path enumeration ---------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**30), st.floats(0.1, 0.9))
@settings(max_examples=25, deadline=None)
def test_path_probabilities_bounded(seed, p_taken):
    rng = random.Random(seed)
    builder = ProgramBuilder()
    builder.begin_function("main")
    builder.movi(1, 1)
    merge = builder.fresh_label("merge")
    side = builder.fresh_label("side")
    builder.bnez(1, side)
    for i in range(rng.randrange(1, 6)):
        builder.addi(2, 2, 1)
    builder.jmp(merge)
    builder.label(side)
    for i in range(rng.randrange(1, 6)):
        builder.addi(3, 3, 1)
    builder.label(merge)
    builder.halt()
    builder.end_function()
    program = builder.build()
    cfg = build_cfgs(program)["main"]
    ps = enumerate_paths(
        cfg, 1, lambda pc, taken: p_taken if taken else 1 - p_taken,
        max_instr=50, max_cbr=5,
    )
    for direction in ("taken", "nottaken"):
        total = sum(p.prob for p in ps.paths(direction))
        assert total <= 1.0 + 1e-9
        for pc, prob in ps.reach_prob(direction).items():
            assert 0.0 <= prob <= 1.0 + 1e-9


# -- behaviors ----------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**30), st.floats(0.05, 0.95))
@settings(max_examples=25, deadline=None)
def test_behavior_streams_are_bits(seed, p):
    rng = BehaviorRNG(seed)
    for stream in (
        rng.biased(200, p),
        rng.markov(200, p_same=p),
        rng.pattern(200, noise=min(0.45, p)),
        rng.bursty(200, hard_fraction=p),
    ):
        assert len(stream) == 200
        assert set(stream) <= {0, 1}


@given(st.integers(min_value=0, max_value=2**30),
       st.floats(1.0, 20.0))
@settings(max_examples=25, deadline=None)
def test_trip_streams_are_positive(seed, mean):
    rng = BehaviorRNG(seed)
    for trips in (
        rng.geometric_trips(100, mean),
        rng.jittery_trips(100, mean),
        rng.uniform_trips(100, max(1, int(mean * 0.5)),
                          max(2, int(mean * 1.5))),
    ):
        assert all(t >= 1 for t in trips)


# -- timing simulator invariants ----------------------------------------------


@given(st.integers(min_value=0, max_value=2**30))
@settings(max_examples=10, deadline=None)
def test_simulator_cycle_count_sane(seed):
    rng = random.Random(seed)
    builder = ProgramBuilder()
    builder.begin_function("main")
    builder.movi(1, 0)
    builder.movi(2, 50)
    builder.label("loop")
    builder.cmpge(4, 1, 2)
    builder.bnez(4, "done")
    builder.ld(3, 1, 0)
    t, m = builder.fresh_label("t"), builder.fresh_label("m")
    builder.bnez(3, t)
    builder.addi(6, 6, 1)
    builder.jmp(m)
    builder.label(t)
    builder.addi(7, 7, 1)
    builder.label(m)
    builder.addi(1, 1, 1)
    builder.jmp("loop")
    builder.label("done")
    builder.halt()
    builder.end_function()
    program = builder.build()
    memory = {i: rng.randrange(2) for i in range(50)}
    trace, _ = execute(program, memory=memory)
    stats = simulate(program, trace)
    # cycles at least trace/fetch_width, at most a generous bound
    assert stats.cycles >= len(trace) // 8
    assert stats.cycles <= len(trace) * 400
    assert stats.retired_instructions == len(trace)


# -- pipeline spec grammar ----------------------------------------------------


@st.composite
def pipeline_specs(draw):
    """A random valid spec string over the full token grammar.

    Tokens are drawn with their bare/explicit spellings (``meld`` vs
    ``meld:short``, ``cost`` vs ``cost:edge``) and shuffled, since the
    grammar is order-insensitive.
    """
    tokens = []
    meld = draw(st.sampled_from(
        [None, "meld", "meld:short", "meld:all"]
    ))
    if meld is not None:
        tokens.append(meld)
    for flag in ("exact", "freq", "short", "ret", "loop"):
        if draw(st.booleans()):
            tokens.append(flag)
    cost = draw(st.sampled_from([None, "cost", "cost:edge", "cost:long"]))
    if cost is not None:
        tokens.append(cost)
    # Four decimal places survive the %g formatting format_spec uses.
    minmisp = draw(st.one_of(
        st.none(),
        st.integers(min_value=1, max_value=5000).map(
            lambda n: n / 10000
        ),
    ))
    if minmisp is not None:
        tokens.append(f"minmisp:{minmisp}")
    if not tokens:
        tokens.append("exact")
    return ",".join(draw(st.permutations(tokens)))


def _spec_fields(config):
    """The semantic payload a spec string determines."""
    return (
        config.enable_exact,
        config.enable_freq,
        config.enable_short,
        config.enable_return_cfm,
        config.enable_loop,
        config.cost_model,
        config.min_misp_rate,
        config.meld,
    )


@given(pipeline_specs())
@settings(max_examples=200, deadline=None)
def test_parse_format_spec_round_trip(spec):
    from repro.compiler.pipeline import format_spec, parse_spec

    config = parse_spec(spec)
    canonical = format_spec(config)
    reparsed = parse_spec(canonical)
    # format ∘ parse loses nothing the grammar expresses...
    assert _spec_fields(reparsed) == _spec_fields(config)
    # ...and is a fixed point (the canonical spelling is stable).
    assert format_spec(reparsed) == canonical
    # Canonical specs schedule the meld token first.
    if config.meld is not None:
        assert canonical.startswith("meld:")
