"""Tests for table rendering and ASCII charts."""

import pytest

from repro.experiments.charts import (
    chart_flush_result,
    chart_speedup_result,
    grouped_series_chart,
    horizontal_bars,
)
from repro.experiments.report import percent, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"],
            [("alpha", 1), ("b", 22)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_float_formatting(self):
        text = render_table(["x"], [(1.23456,)])
        assert "1.23" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_percent(self):
        assert percent(0.204) == "+20.4%"
        assert percent(-0.01) == "-1.0%"


class TestHorizontalBars:
    def test_positive_bars(self):
        text = horizontal_bars([("a", 0.1), ("bb", 0.2)])
        lines = text.splitlines()
        assert len(lines) == 2
        # the larger value has the longer bar
        assert lines[1].count("#") > lines[0].count("#")

    def test_negative_values_extend_left(self):
        text = horizontal_bars([("pos", 0.2), ("neg", -0.1)])
        pos_line, neg_line = text.splitlines()
        assert pos_line.index("|") < pos_line.rindex("#")
        assert neg_line.index("#") < neg_line.index("|")

    def test_title_and_empty(self):
        assert horizontal_bars([], title="T") == "T"
        assert horizontal_bars([("a", 0.0)], title="T").startswith("T")

    def test_custom_format(self):
        text = horizontal_bars([("a", 3.5)], fmt="{:.2f}")
        assert "3.50" in text

    def test_grouped_chart(self):
        values = {"s1": {"b1": 0.1, "b2": 0.2}, "s2": {"b1": 0.0,
                                                       "b2": 0.3}}
        text = grouped_series_chart(["b1", "b2"], ["s1", "s2"], values,
                                    title="G")
        assert "-- b1 --" in text and "-- b2 --" in text


class TestResultCharts:
    RESULT = {
        "series": ["exact", "all-best-heur"],
        "means": {"exact": 0.05, "all-best-heur": 0.20},
    }

    def test_speedup_chart(self):
        text = chart_speedup_result(self.RESULT, "fig5")
        assert "fig5" in text
        assert "+20.0%" in text

    def test_flush_chart(self):
        result = {
            "series": ["baseline", "all-best-heur"],
            "means": {"baseline": 4.2, "all-best-heur": 2.1},
        }
        text = chart_flush_result(result, "fig6")
        assert "4.20" in text
