"""Branch predictor tests."""

import random

import pytest

from repro.branchpred import (
    BimodalPredictor,
    GsharePredictor,
    PerceptronPredictor,
    PredictorStats,
    make_predictor,
)

ALL_PREDICTORS = [BimodalPredictor, GsharePredictor, PerceptronPredictor]


@pytest.mark.parametrize("cls", ALL_PREDICTORS)
class TestCommonBehaviour:
    def test_learns_always_taken(self, cls):
        predictor = cls()
        stats = PredictorStats()
        for _ in range(200):
            stats.record(predictor.predict_and_update(100, True) is True)
        # after warmup the branch is predicted perfectly
        assert predictor.predict(100) is True
        assert stats.misprediction_rate < 0.1

    def test_learns_always_not_taken(self, cls):
        predictor = cls()
        for _ in range(200):
            predictor.update(64, False)
        assert predictor.predict(64) is False

    def test_tracks_majority_of_biased_branch(self, cls):
        predictor = cls()
        rng = random.Random(7)
        wrong = 0
        outcomes = [rng.random() < 0.15 for _ in range(2000)]
        for taken in outcomes:
            if predictor.predict_and_update(5, taken) != taken:
                wrong += 1
        # The steady-state misprediction rate approaches the bias for
        # per-pc predictors.  Gshare spreads one branch over many
        # history-indexed counters, each undertrained on random
        # history, so it only has to beat a coin flip here.
        bound = 0.45 if cls is GsharePredictor else 0.25
        assert wrong / len(outcomes) < bound

    def test_reset_restores_initial_state(self, cls):
        predictor = cls()
        baseline = predictor.predict(42)
        for _ in range(100):
            predictor.update(42, not baseline)
        predictor.reset()
        assert predictor.predict(42) == baseline

    def test_deterministic(self, cls):
        rng = random.Random(3)
        stream = [(rng.randrange(64), rng.random() < 0.5)
                  for _ in range(500)]
        a, b = cls(), cls()
        pa = [a.predict_and_update(pc, t) for pc, t in stream]
        pb = [b.predict_and_update(pc, t) for pc, t in stream]
        assert pa == pb


class TestPerceptron:
    def test_learns_alternating_pattern(self):
        # History-based predictors nail period-2 patterns; bimodal can't.
        perceptron = PerceptronPredictor()
        bimodal = BimodalPredictor()
        wrong_p = wrong_b = 0
        for i in range(2000):
            taken = i % 2 == 0
            if perceptron.predict_and_update(9, taken) != taken:
                wrong_p += 1
            if bimodal.predict_and_update(9, taken) != taken:
                wrong_b += 1
        assert wrong_p < 50
        assert wrong_b > 500

    def test_threshold_formula(self):
        predictor = PerceptronPredictor(history_bits=64)
        assert predictor.threshold == int(1.93 * 64 + 14)

    def test_weights_clamped(self):
        predictor = PerceptronPredictor(num_perceptrons=1, history_bits=4)
        for _ in range(10_000):
            predictor.update(0, True)
        assert int(predictor._weights.max()) <= 127
        assert int(predictor._weights.min()) >= -128

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(num_perceptrons=0)


class TestGshare:
    def test_history_disambiguates_contexts(self):
        # A branch that is taken iff the previous branch was taken.
        predictor = GsharePredictor(table_bits=12, history_bits=8)
        rng = random.Random(11)
        wrong = 0
        last = False
        for i in range(4000):
            lead = rng.random() < 0.5
            predictor.update(3, lead)
            follow = lead
            if predictor.predict_and_update(4, follow) != follow:
                wrong += 1
            last = lead
        assert wrong / 4000 < 0.15

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=0)


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_predictor("perceptron"), PerceptronPredictor)
        assert isinstance(make_predictor("gshare"), GsharePredictor)
        assert isinstance(make_predictor("bimodal"), BimodalPredictor)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("oracle")

    def test_kwargs_forwarded(self):
        predictor = make_predictor("perceptron", history_bits=16)
        assert predictor.history_bits == 16


class TestStats:
    def test_accuracy_and_rate(self):
        stats = PredictorStats()
        for correct in (True, True, False, True):
            stats.record(correct)
        assert stats.predictions == 4
        assert stats.mispredictions == 1
        assert stats.accuracy == pytest.approx(0.75)
        assert stats.misprediction_rate == pytest.approx(0.25)

    def test_empty_stats(self):
        stats = PredictorStats()
        assert stats.accuracy == 1.0
        assert stats.misprediction_rate == 0.0


class TestTournament:
    def test_chooser_picks_the_right_component(self):
        from repro.branchpred import TournamentPredictor

        predictor = TournamentPredictor()
        # alternating pattern: gshare (history) wins over bimodal
        wrong = 0
        for i in range(3000):
            taken = i % 2 == 0
            if predictor.predict_and_update(11, taken) != taken:
                wrong += 1
        assert wrong < 300

    def test_biased_branch_handled(self):
        from repro.branchpred import TournamentPredictor

        predictor = TournamentPredictor()
        for _ in range(300):
            predictor.update(7, True)
        assert predictor.predict(7) is True

    def test_factory_kind(self):
        from repro.branchpred import TournamentPredictor, make_predictor

        assert isinstance(make_predictor("tournament"),
                          TournamentPredictor)

    def test_bad_geometry(self):
        import pytest as _pytest

        from repro.branchpred import TournamentPredictor

        with _pytest.raises(ValueError):
            TournamentPredictor(chooser_size=0)
