"""Natural-loop detection tests."""

from repro.cfg import build_cfgs, find_natural_loops
from repro.isa import assemble


def loops_of(text, func="main"):
    program = assemble(text)
    cfg = build_cfgs(program)[func]
    return cfg, find_natural_loops(cfg)


class TestDoWhile:
    TEXT = """
    .func main
        movi r1, 5
    top:
        addi r2, r2, 1
        addi r1, r1, -1
        bnez r1, top
        halt
    .endfunc
    """

    def test_single_loop_found(self):
        _, loops = loops_of(self.TEXT)
        assert len(loops) == 1

    def test_latch_branch_and_exit(self):
        cfg, loops = loops_of(self.TEXT)
        loop = loops[0]
        assert loop.back_edge_branch_pc == 3
        assert loop.exit_pc == 4
        assert (3, 4) in loop.exit_branches

    def test_static_size(self):
        _, loops = loops_of(self.TEXT)
        assert loops[0].static_size == 3  # the three body instructions


class TestWhileStyle:
    TEXT = """
    .func main
        movi r1, 5
    top:
        beqz r1, done
        addi r2, r2, 1
        addi r1, r1, -1
        jmp top
    done:
        halt
    .endfunc
    """

    def test_header_exit_branch_detected(self):
        cfg, loops = loops_of(self.TEXT)
        assert len(loops) == 1
        loop = loops[0]
        # The exit branch is the header's beqz; exit pc is `done`.
        assert loop.exit_branches == ((1, 5),)
        # Not a latch-style branch, so back_edge_branch_pc is None.
        assert loop.back_edge_branch_pc is None


class TestNestedLoops:
    TEXT = """
    .func main
        movi r1, 3
    outer:
        movi r2, 4
    inner:
        addi r3, r3, 1
        addi r2, r2, -1
        bnez r2, inner
        addi r1, r1, -1
        bnez r1, outer
        halt
    .endfunc
    """

    def test_two_loops_found(self):
        _, loops = loops_of(self.TEXT)
        assert len(loops) == 2

    def test_inner_loop_nested_in_outer(self):
        _, loops = loops_of(self.TEXT)
        inner = min(loops, key=lambda l: len(l.body))
        outer = max(loops, key=lambda l: len(l.body))
        assert inner.body < outer.body

    def test_each_loop_has_its_own_exit_branch(self):
        _, loops = loops_of(self.TEXT)
        exits = {l.back_edge_branch_pc for l in loops}
        assert len(exits) == 2


def test_loop_free_function_has_no_loops():
    _, loops = loops_of(
        ".func main\n    movi r1, 1\n    halt\n.endfunc"
    )
    assert loops == []


def test_fixture_loop_program(loop_program):
    cfg = build_cfgs(loop_program)["main"]
    loops = find_natural_loops(cfg)
    # outer counted loop + inner data-driven loop
    assert len(loops) == 2
    inner = min(loops, key=lambda l: len(l.body))
    assert inner.back_edge_branch_pc is not None
