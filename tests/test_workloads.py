"""Tests for the synthetic workload generator and benchmark suite."""

import pytest

from repro.cfg import build_cfgs, find_natural_loops
from repro.core import DivergeKind, SelectionConfig, select_diverge_branches
from repro.emulator import execute
from repro.errors import WorkloadError
from repro.profiling import Profiler
from repro.workloads import (
    BENCHMARK_NAMES,
    BENCHMARK_SPECS,
    BenchmarkSpec,
    Region,
    build_program,
    load_benchmark,
)
from repro.workloads.behaviors import BehaviorRNG
from repro.workloads.generator import fill_memory


class TestBehaviors:
    def test_biased_rate(self):
        bits = BehaviorRNG(1).biased(10_000, 0.2)
        assert 0.17 < sum(bits) / len(bits) < 0.23

    def test_markov_correlation(self):
        bits = BehaviorRNG(1).markov(10_000, p_same=0.9)
        switches = sum(a != b for a, b in zip(bits, bits[1:]))
        assert 0.07 < switches / len(bits) < 0.13

    def test_pattern_noise(self):
        clean = BehaviorRNG(1).pattern(700, period=7, duty=3, noise=0.0)
        assert clean[:7] == [1, 1, 1, 0, 0, 0, 0]
        noisy = BehaviorRNG(1).pattern(10_000, noise=0.1)
        flips = sum(
            a != b for a, b in zip(noisy, BehaviorRNG(1).pattern(10_000,
                                                                 noise=0.0))
        )
        # not exactly comparable (different rng draws) but nonzero noise
        assert flips > 0

    def test_bursty_rate_and_clustering(self):
        frac = 0.4
        bits = BehaviorRNG(2).bursty(20_000, hard_fraction=frac)
        # long-run switch rate well below an i.i.d. fair coin's 50%
        switches = sum(a != b for a, b in zip(bits, bits[1:]))
        assert switches / len(bits) < 0.35

    def test_geometric_trips_mean(self):
        trips = BehaviorRNG(3).geometric_trips(20_000, mean=4.0)
        assert all(t >= 1 for t in trips)
        mean = sum(trips) / len(trips)
        assert 3.3 < mean < 4.7

    def test_jittery_trips_mostly_constant(self):
        trips = BehaviorRNG(3).jittery_trips(1000, mean=5, deviation_prob=0.2)
        constant = sum(t == 5 for t in trips)
        assert constant > 700

    def test_uniform_and_constant_trips(self):
        rng = BehaviorRNG(4)
        uniform = rng.uniform_trips(1000, 2, 6)
        assert all(2 <= t <= 6 for t in uniform)
        assert rng.constant_trips(5, 3) == [3, 3, 3, 3, 3]

    def test_pointer_chain_is_single_cycle(self):
        chain = BehaviorRNG(5).pointer_chain(64, 64)
        seen = set()
        node = 0
        for _ in range(64):
            assert node not in seen
            seen.add(node)
            node = chain[node]
        assert node == 0
        assert seen == set(range(64))

    def test_determinism(self):
        assert BehaviorRNG(9).biased(100, 0.3) == \
            BehaviorRNG(9).biased(100, 0.3)


class TestGenerator:
    def test_unknown_region_kind_rejected(self):
        with pytest.raises(WorkloadError):
            Region("mystery")

    def test_region_count_validated(self):
        with pytest.raises(WorkloadError):
            Region("compute", count=0)

    def _build(self, region, iterations=40):
        spec = BenchmarkSpec(
            name="t", regions=(region,), iterations=iterations
        )
        program, segments = build_program(spec)
        memory = fill_memory(spec, segments, seed=1)
        return spec, program, memory

    @pytest.mark.parametrize(
        "kind",
        [
            "simple_hammock",
            "nested_hammock",
            "freq_hammock",
            "short_hammock",
            "split",
            "ret_hammock",
            "diverge_loop",
            "long_loop",
            "compute",
            "memory",
        ],
    )
    def test_every_region_kind_runs_to_completion(self, kind):
        spec, program, memory = self._build(Region(kind))
        trace, result = execute(
            program, memory=memory, max_instructions=200_000
        )
        assert result.halted

    def test_freq_region_yields_frequently_hammock(self):
        spec, program, memory = self._build(
            Region("freq_hammock", p=0.4, behavior="bursty"),
            iterations=300,
        )
        profile = Profiler().profile(
            program, memory=memory, max_instructions=500_000
        )
        annotation = select_diverge_branches(
            program, profile, SelectionConfig()
        )
        assert annotation.branches_of_kind(DivergeKind.FREQUENTLY_HAMMOCK)

    def test_diverge_loop_region_yields_loop(self):
        spec, program, memory = self._build(
            Region("diverge_loop", mean_iters=3.0), iterations=300
        )
        profile = Profiler().profile(
            program, memory=memory, max_instructions=500_000
        )
        annotation = select_diverge_branches(
            program, profile, SelectionConfig.all_best_heur()
        )
        assert annotation.branches_of_kind(DivergeKind.LOOP)

    def test_long_loop_region_rejected_by_heuristics(self):
        spec, program, memory = self._build(
            Region("long_loop", mean_iters=18.0, body_insts=3,
                   trip_kind="constant"),
            iterations=200,
        )
        profile = Profiler().profile(
            program, memory=memory, max_instructions=500_000
        )
        annotation = select_diverge_branches(
            program, profile, SelectionConfig.all_best_heur()
        )
        assert not annotation.branches_of_kind(DivergeKind.LOOP)

    def test_ret_region_produces_return_cfm(self):
        spec, program, memory = self._build(
            Region("ret_hammock", p=0.3, behavior="bursty"), iterations=300
        )
        profile = Profiler().profile(
            program, memory=memory, max_instructions=500_000
        )
        annotation = select_diverge_branches(
            program,
            profile,
            SelectionConfig(enable_return_cfm=True),
        )
        assert any(b.has_return_cfm for b in annotation)

    def test_replicas_are_distinct_static_code(self):
        spec, program, _ = self._build(
            Region("simple_hammock", count=3)
        )
        branch_pcs = program.conditional_branch_pcs()
        # outer loop branch + 3 hammock branches
        assert len(branch_pcs) == 4


class TestSuite:
    def test_seventeen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 17
        assert "gcc" in BENCHMARK_NAMES and "m88ksim" in BENCHMARK_NAMES

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            load_benchmark("specfp")

    def test_unknown_input_set_rejected(self):
        with pytest.raises(WorkloadError):
            load_benchmark("gzip", input_set="ref")

    def test_load_is_deterministic(self):
        a = load_benchmark("li", scale=0.2)
        b = load_benchmark("li", scale=0.2)
        assert a.memory == b.memory
        assert len(a.program) == len(b.program)

    def test_input_sets_share_program_but_differ_in_data(self):
        reduced = load_benchmark("li", scale=0.2)
        train = load_benchmark("li", scale=0.2, input_set="train")
        assert reduced.program is train.program
        assert reduced.memory != train.memory

    def test_scale_controls_dynamic_length(self):
        small = load_benchmark("eon", scale=0.2)
        _, result = execute(
            small.program,
            memory=small.memory,
            max_instructions=small.max_instructions,
        )
        assert result.halted
        assert 4_000 < result.instruction_count < 30_000

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_halts(self, name):
        workload = load_benchmark(name, scale=0.1)
        _, result = execute(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        )
        assert result.halted

    def test_specs_have_notes(self):
        assert all(spec.note for spec in BENCHMARK_SPECS.values())
