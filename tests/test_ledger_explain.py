"""The decision ledger and ``explain``: estimate vs. observed, joined.

The tentpole guarantee is *exact* attribution: for every workload and
selection config, the per-branch runtime counters summed over the
ledger must equal the run's :class:`SimStats` totals — otherwise any
per-branch "was the cost model right?" claim would be built on sand.
On top of that: the compile-time ledger records every verdict (tracer
on or off), the trace-driven ledger rebuild matches the live one, the
explain CLI's ``--json`` validates against the checked-in schema, a
known mis-estimated branch stays pinned, and campaigns journal the
per-cell summary that ``report --explain`` renders.
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignSpec,
    Journal,
    Scheduler,
    render_report,
    replay,
)
from repro.campaign.journal import JournalState
from repro.compiler import registry
from repro.obs import jsonl_tracer, telemetry
from repro.obs.explain import (
    build_explain,
    cell_ledger_summary,
    join_ledgers,
    main as explain_main,
    observed_outcome,
    validate_explain,
)
from repro.obs.ledger import (
    RUNTIME_COUNTERS,
    RuntimeLedger,
    SelectionLedger,
)
from repro.experiments.runner import run_selection
from repro.workloads.suite import BENCHMARK_NAMES

SCALE = 0.1

SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "docs", "schemas",
    "explain.schema.json",
)

CONFIGS = ("all-best-heur", "all-best-cost")


def _run_with_ledgers(benchmark, config_name, scale=SCALE):
    config = registry.resolve(config_name)
    selection = SelectionLedger()
    runtime = RuntimeLedger()
    stats, annotation = run_selection(
        benchmark, config, scale=scale,
        selection_ledger=selection, runtime_ledger=runtime,
    )
    return config, selection, runtime, stats, annotation


# -- the compile-time ledger -------------------------------------------------


class _FakeKind:
    def __init__(self, value):
        self.value = value


class _FakeBranch:
    """The subset of DivergeBranch the ledger reads."""

    def __init__(self, pc, kind="hammock", source="frequency"):
        self.branch_pc = pc
        self.kind = _FakeKind(kind)
        self.source = source
        self.always_predicate = False
        self.cfm_points = (pc + 4,)
        self.num_select_uops = 2


def test_selection_ledger_records_and_last_decision_wins():
    ledger = SelectionLedger()
    ledger.record_selected(_FakeBranch(40), "freq")
    ledger.record_rejected(40, "cost", "cost-model", rule="dpred_cost>=0")
    ledger.record_rejected(64, "minmisp", "easy-branch-filter")
    assert len(ledger) == 3
    assert ledger.counts() == {
        "selected": 0, "rejected": 2, "decisions": 3,
    }
    final = ledger.final()
    assert final[40].verdict == "rejected"
    assert final[40].pass_name == "cost"
    assert final[40].rule == "dpred_cost>=0"
    assert [d.pass_name for d in ledger.history(40)] == ["freq", "cost"]
    assert ledger.selected_pcs() == []
    assert ledger.rejected_pcs() == [40, 64]


def test_selection_ledger_round_trips_as_dict():
    ledger = SelectionLedger()
    ledger.record_selected(_FakeBranch(40), "finish")
    ledger.record_rejected(64, "cost", "cost-model")
    clone = SelectionLedger.from_dict(ledger.as_dict())
    assert clone.as_dict() == ledger.as_dict()


def test_ledger_records_verdicts_with_tracer_disabled():
    """The ledger must not depend on tracing being enabled."""
    _, selection, runtime, stats, annotation = _run_with_ledgers(
        "mcf", "all-best-cost"
    )
    counts = selection.counts()
    assert counts["selected"] == len(annotation)
    assert counts["decisions"] >= counts["selected"]
    assert counts["rejected"] > 0  # mcf has cost-model rejections
    assert runtime.reconcile()["consistent"]


# -- exact reconciliation across the whole suite -----------------------------


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("workload", BENCHMARK_NAMES)
def test_runtime_ledger_reconciles_exactly(workload, config_name):
    """Summed per-branch counters == SimStats totals, every workload."""
    _, _, runtime, stats, _ = _run_with_ledgers(workload, config_name)
    totals = runtime.totals()
    assert totals["episodes"] == stats.dpred_episodes
    assert totals["merged"] == stats.dpred_episodes_merged
    assert totals["flushes_avoided"] == stats.dpred_flushes_avoided
    assert totals["flushes"] == stats.pipeline_flushes
    assert totals["wrong_path_insts"] == stats.dpred_wrong_path_insts
    assert totals["select_uops"] == stats.dpred_select_uops
    reconciliation = runtime.reconcile()
    assert reconciliation["consistent"], reconciliation


def test_runtime_ledger_round_trips_as_dict():
    _, _, runtime, _, _ = _run_with_ledgers("gzip", "all-best-heur")
    clone = RuntimeLedger.from_dict(runtime.as_dict())
    assert clone.branches() == runtime.branches()
    assert clone.run_totals() == runtime.run_totals()


# -- trace-driven rebuild matches the live ledger ----------------------------

#: Live-only counters: there is no per-execution trace event, so a
#: trace rebuild cannot reconstruct these two.
_LIVE_ONLY = ("executions", "mispredictions")


def test_from_trace_matches_live_ledger(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    config = registry.resolve("all-best-cost")
    runtime = RuntimeLedger()
    tracer = jsonl_tracer(path)
    with telemetry(tracer=tracer):
        run_selection(
            "mcf", config, scale=SCALE, runtime_ledger=runtime,
        )
    tracer.close()

    rebuilt = RuntimeLedger.from_trace(path)
    assert rebuilt.corrupt_lines == 0
    assert rebuilt.pcs() == runtime.pcs()
    for pc in runtime.pcs():
        live = runtime.branch(pc)
        traced = rebuilt.branch(pc)
        for name in RUNTIME_COUNTERS:
            if name in _LIVE_ONLY:
                continue
            assert traced[name] == live[name], (pc, name)
    assert rebuilt.run_totals() == runtime.run_totals()
    assert rebuilt.reconcile()["consistent"]


def test_from_trace_tolerates_torn_tail(tmp_path):
    """A crash mid-write truncates the last line; readers must cope."""
    path = str(tmp_path / "trace.jsonl")
    config = registry.resolve("all-best-cost")
    tracer = jsonl_tracer(path)
    with telemetry(tracer=tracer):
        run_selection("mcf", config, scale=SCALE)
    tracer.close()

    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        handle.truncate(handle.tell() - 25)  # tear the final line

    ledger = RuntimeLedger.from_trace(path)
    assert ledger.corrupt_lines == 1
    assert ledger.pcs()  # durable prefix still attributed

    from repro.obs.trace_report import (
        format_trace_report,
        summarize_trace,
    )

    summary = summarize_trace(path)
    assert summary["corrupt_lines"] == 1
    assert "WARNING" in format_trace_report(summary)


def test_empty_trace_is_an_empty_ledger(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    ledger = RuntimeLedger.from_trace(str(path))
    assert ledger.corrupt_lines == 0
    assert ledger.pcs() == []
    assert ledger.reconcile()["consistent"]


# -- the join and a pinned mis-estimated branch ------------------------------


def test_join_covers_every_decided_and_observed_pc():
    config, selection, runtime, _, _ = _run_with_ledgers(
        "mcf", "all-best-cost"
    )
    branches, summary = join_ledgers(
        selection, runtime, config.cost_params
    )
    pcs = {entry["branch_pc"] for entry in branches}
    assert set(selection.final()) <= pcs
    assert set(runtime.pcs()) <= pcs
    assert summary["consistent"]
    assert summary["selected"] == len(selection.selected_pcs())
    by_verdict = {entry["verdict"] for entry in branches}
    assert by_verdict <= {"selected", "rejected", "unconsidered"}


def test_observed_outcome_units_follow_equation_one():
    config = registry.resolve("all-best-cost")
    counters = dict.fromkeys(RUNTIME_COUNTERS, 0)
    counters.update(
        episodes=4, flushes_avoided=2,
        wrong_path_insts=24, select_uops=8,
    )
    observed = observed_outcome(counters, config.cost_params)
    width = config.cost_params.fetch_width
    penalty = config.cost_params.misp_penalty
    assert observed["overhead_cycles"] == pytest.approx(32 / width)
    assert observed["benefit_cycles"] == pytest.approx(2 * penalty)
    assert observed["net_cycles"] == pytest.approx(
        2 * penalty - 32 / width
    )
    assert observed["net_per_episode"] == pytest.approx(
        observed["net_cycles"] / 4
    )


def test_mcf_surfaces_a_misestimated_branch():
    """Pinned fixture: the cost model's estimate disagrees in sign
    with the measured outcome for at least one selected mcf branch."""
    data = build_explain("mcf", registry.resolve("all-best-cost"),
                         scale=0.25)
    misestimated = data["summary"]["misestimated"]
    assert misestimated, "expected mcf to surface a mis-estimated branch"
    assert 474 in misestimated  # the worst offender at scale 0.25
    entry = next(
        e for e in data["branches"] if e["branch_pc"] == 474
    )
    assert entry["verdict"] == "selected"
    assert entry["est"]["net_benefit"] >= 0.0  # model said: win
    assert entry["observed"]["net_per_episode"] < 0.0  # it lost
    assert entry["misestimated"]


# -- the explain CLI and its schema ------------------------------------------


def test_explain_json_validates_against_checked_in_schema(tmp_path, capsys):
    out = str(tmp_path / "nested" / "explain.json")
    rc = explain_main([
        "mcf", "--config", "All-best-cost", "--scale", str(SCALE),
        "--json", "-o", out,
    ])
    assert rc == 0
    data = json.load(open(out, encoding="utf-8"))
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        schema = json.load(handle)
    assert validate_explain(data, schema) == []
    assert data["workload"] == "mcf"
    assert data["config"] == "all-best-cost"
    assert data["reconciliation"]["consistent"]


def test_explain_text_reports_exact_reconciliation(capsys):
    rc = explain_main(["gzip", "--config", "all-best-heur",
                       "--scale", str(SCALE)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "ledger reconciliation vs run totals: EXACT" in text
    assert "selected branches" in text


def test_explain_unknown_workload_fails_cleanly(capsys):
    rc = explain_main(["no-such-benchmark"])
    assert rc == 1
    assert "error" in capsys.readouterr().err.lower()


def test_validate_explain_flags_schema_violations():
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        schema = json.load(handle)
    errors = validate_explain({"workload": 3}, schema)
    assert errors  # wrong type and missing required keys
    assert any("workload" in e for e in errors)


# -- campaigns journal and render the summary --------------------------------


def test_campaign_journals_ledger_and_report_explain_renders(tmp_path):
    spec = CampaignSpec(
        name="ledger-smoke", benchmarks=("gzip",), scale=SCALE,
        selection="all-best-cost",
    )
    journal_path = str(tmp_path / "journal.jsonl")
    with Journal(journal_path) as journal:
        journal.campaign_start(spec.name, spec.spec_hash, 1)
        scheduler = Scheduler(spec, journal, jobs=1)
        summary = scheduler.run(JournalState())
    assert not summary["interrupted"]

    # The scheduler pops the ledger off the result, so the journaled
    # (and in-memory) result payload stays byte-identical with or
    # without the annotation...
    (cell,) = spec.cells()
    assert "ledger" not in summary["results"][cell.cell_id]

    # ...while replay surfaces it separately.
    state = replay(journal_path)
    annotation = state.ledger[cell.cell_id]
    assert annotation["consistent"]
    assert annotation["selected"] >= 1
    assert state.results[cell.cell_id]["speedup"] == pytest.approx(
        summary["results"][cell.cell_id]["speedup"]
    )

    base = render_report(spec, state.results,
                         quarantined=state.quarantined)
    explained = render_report(spec, state.results,
                              quarantined=state.quarantined,
                              ledgers=state.ledger)
    assert "Decision ledger" not in base
    assert explained.startswith(base)  # annotation only appends
    assert "Decision ledger (estimate vs observed, per cell)" in explained
    assert "1/1 cells journaled a ledger" in explained


def test_report_explain_renders_gaps_for_unjournaled_cells():
    spec = CampaignSpec(
        name="gaps", benchmarks=("gzip", "twolf"), scale=SCALE,
    )
    cells = spec.cells()
    config = registry.resolve("all-best-cost")
    selection = SelectionLedger()
    runtime = RuntimeLedger()
    run_selection("gzip", config, scale=SCALE,
                  selection_ledger=selection, runtime_ledger=runtime)
    ledgers = {
        cells[0].cell_id: cell_ledger_summary(
            selection, runtime, config.cost_params
        ),
    }
    text = render_report(spec, {}, ledgers=ledgers)
    explain_section = text.split("Decision ledger")[1]
    assert "—" in explain_section  # the unjournaled twolf cell
    assert "1/2 cells journaled a ledger" in text


# -- zero overhead when off ---------------------------------------------------


def test_per_branch_accounting_is_off_by_default():
    """``ledger=None`` + no coverage flag must skip attribution
    entirely (the throughput benchmark bounds the cost when on)."""
    from repro.uarch import TimingSimulator
    from repro.experiments.runner import get_artifacts

    artifacts = get_artifacts("gzip", scale=SCALE)
    simulator = TimingSimulator(artifacts.program)
    assert simulator.ledger is None
    stats = simulator.run(artifacts.trace)
    assert stats.per_branch == {}


# -- meld-aware explain (branches removed by a transform) ---------------------

MELD_SCALE = 0.2
#: Pinned fixture: the vpr hammocks the meld:short transform removes at
#: scale 0.2.  A matcher or selection change that alters this set must
#: update the pin deliberately.
VPR_MELDED_PCS = [8, 16, 24]


def test_explain_reports_melded_branches():
    data = build_explain(
        "vpr", registry.resolve("meld+all-best-heur"), scale=MELD_SCALE
    )
    assert data["melded_branches"] == VPR_MELDED_PCS
    by_pc = {e["branch_pc"]: e for e in data["branches"]}
    for pc in VPR_MELDED_PCS:
        assert by_pc[pc]["verdict"] == "melded"
        assert by_pc[pc]["reason"] == "melded"
    assert data["summary"]["melded"] == len(VPR_MELDED_PCS)
    assert data["reconciliation"]["consistent"]
    # Selected pcs were translated back to original coordinates, so
    # they never collide with the removed hammock branches.
    selected = [
        e["branch_pc"] for e in data["branches"]
        if e["verdict"] == "selected"
    ]
    assert selected
    assert not set(selected) & set(VPR_MELDED_PCS)


def test_explain_meld_json_validates_against_schema(tmp_path):
    out = str(tmp_path / "meld.json")
    rc = explain_main([
        "vpr", "--config", "meld+all-best-heur",
        "--scale", str(MELD_SCALE), "--json", "-o", out,
    ])
    assert rc == 0
    data = json.load(open(out, encoding="utf-8"))
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        schema = json.load(handle)
    assert validate_explain(data, schema) == []
    assert data["melded_branches"] == VPR_MELDED_PCS


def test_explain_text_mentions_melded(capsys):
    rc = explain_main(["vpr", "--config", "meld",
                       "--scale", str(MELD_SCALE)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "melded (statically if-converted)" in text
