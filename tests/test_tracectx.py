"""Distributed tracing: context propagation, span spools, and the
cross-process timeline aggregator (``python -m repro trace``)."""

import json
import os

import pytest

from repro import __main__ as repro_main
from repro.campaign import (
    Axis,
    CampaignSpec,
    Journal,
    LocalPoolBackend,
    Scheduler,
    ShardedBackend,
    replay,
)
from repro.exec import Job, execute
from repro.obs import (
    MetricsRegistry,
    PhaseProfile,
    jsonl_tracer,
    span,
    telemetry,
)
from repro.obs import traceview
from repro.obs.tracectx import (
    SpanSpool,
    TraceContext,
    activate,
    current,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

SCALE = 0.1


# -- identifiers and the traceparent wire format -----------------------


class TestTraceparent:
    def test_ids_are_hex_of_the_right_width(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        text = format_traceparent(trace_id, span_id)
        assert parse_traceparent(text) == (trace_id, span_id)

    def test_zero_parent_span_joins_at_the_root(self):
        trace_id = new_trace_id()
        text = format_traceparent(trace_id, "0" * 16)
        assert parse_traceparent(text) == (trace_id, None)

    @pytest.mark.parametrize("bad", [
        "", "nonsense", "00-abc-def-01",
        "00-" + "g" * 32 + "-" + "1" * 16 + "-01",
        "00-" + "a" * 31 + "-" + "1" * 16 + "-01",
        "00-" + "a" * 32 + "-" + "1" * 15 + "-01",
        "00-" + "a" * 32 + "-" + "1" * 16,
    ])
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError):
            parse_traceparent(bad)

    def test_from_env_round_trip(self, tmp_path):
        ctx = TraceContext.root(service="a", trace_dir=str(tmp_path))
        env = ctx.to_env({})
        rebuilt = TraceContext.from_env(env, service="b")
        assert rebuilt.trace_id == ctx.trace_id
        assert rebuilt.service == "b"
        assert rebuilt.spool.directory == str(tmp_path)

    def test_from_env_without_traceparent_is_none(self):
        assert TraceContext.from_env({}, service="x") is None

    def test_from_propagation_none_payload(self):
        assert TraceContext.from_propagation(None) is None
        assert TraceContext.from_propagation({}) is None


# -- the active-context stack and span hooks ---------------------------


class TestActiveContext:
    def test_activate_restores_previous(self):
        outer = TraceContext.root(service="outer")
        inner = TraceContext.root(service="inner")
        assert current() is None
        with activate(outer):
            assert current() is outer
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_activate_none_is_a_noop(self):
        with activate(None):
            assert current() is None

    def test_span_hook_parents_nested_spans(self, tmp_path):
        ctx = TraceContext.root(service="t", trace_dir=str(tmp_path))
        with telemetry(metrics=MetricsRegistry(), phases=PhaseProfile()):
            with activate(ctx):
                with span("outer"):
                    with span("inner"):
                        pass
        records, files, corrupt = traceview.read_spools(str(tmp_path))
        assert files == 1 and not corrupt
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["trace_id"] == ctx.trace_id

    def test_tracer_events_stamped_with_trace_and_span(self, tmp_path):
        out = tmp_path / "events.jsonl"
        ctx = TraceContext.root(service="t", trace_dir=str(tmp_path))
        tracer = jsonl_tracer(str(out))
        with telemetry(tracer=tracer, metrics=MetricsRegistry(),
                       phases=PhaseProfile()):
            with activate(ctx):
                with span("work"):
                    pass
        tracer.close()
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        ends = [r for r in records if r["type"] == "span.end"]
        assert ends and all(r["trace_id"] == ctx.trace_id for r in ends)
        spooled = traceview.read_spools(str(tmp_path))[0]
        assert ends[0]["span_id"] == spooled[0]["span_id"]

    def test_no_context_means_no_spool(self, tmp_path):
        with telemetry(metrics=MetricsRegistry(), phases=PhaseProfile()):
            with span("untraced"):
                pass
        assert traceview.spool_paths(str(tmp_path)) == []


# -- the per-process spool ---------------------------------------------


class TestSpanSpool:
    def test_path_embeds_the_pid(self, tmp_path):
        spool = SpanSpool(str(tmp_path))
        assert f"spans-{os.getpid()}.jsonl" in spool.path

    def test_write_appends_json_lines(self, tmp_path):
        spool = SpanSpool(str(tmp_path))
        spool.write({"trace_id": "t", "span_id": "s"})
        spool.write({"trace_id": "t", "span_id": "s2"})
        spool.close()
        lines = open(spool.path).read().splitlines()
        assert [json.loads(l)["span_id"] for l in lines] == ["s", "s2"]

    def test_torn_tail_is_skipped_by_the_reader(self, tmp_path):
        spool = SpanSpool(str(tmp_path))
        record = {"trace_id": "t" * 32, "span_id": "s" * 16,
                  "name": "x", "start_ts": 1.0, "seconds": 0.1}
        spool.write(record)
        spool.close()
        with open(spool.path, "a") as handle:
            handle.write('{"trace_id": "tr')  # crash mid-write
        records, _files, corrupt = traceview.read_spools(str(tmp_path))
        assert len(records) == 1
        assert corrupt == 1


# -- the aggregator ----------------------------------------------------


def _spool_record(trace_id, span_id, parent_id, name, start, seconds,
                  service="svc", pid=1, **extra):
    record = {
        "trace_id": trace_id, "span_id": span_id,
        "parent_id": parent_id, "name": name, "path": name,
        "service": service, "pid": pid, "start_ts": start,
        "seconds": seconds, "self_seconds": seconds, "events": 0,
    }
    record.update(extra)
    return record


def _write_spool(directory, pid, records):
    path = os.path.join(str(directory), f"spans-{pid}.jsonl")
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return path


class TestBuildTimeline:
    def test_merges_processes_and_derives_self_time(self, tmp_path):
        tid = "a" * 32
        _write_spool(tmp_path, 1, [
            _spool_record(tid, "r" * 16, None, "root", 0.0, 1.0, pid=1),
        ])
        _write_spool(tmp_path, 2, [
            _spool_record(tid, "c" * 16, "r" * 16, "child", 0.2, 0.6,
                          service="worker", pid=2),
        ])
        data = traceview.build_timeline(str(tmp_path), tid)
        assert data["span_count"] == 2
        assert data["orphans"] == []
        assert len(data["processes"]) == 2
        root = next(s for s in data["spans"] if s["name"] == "root")
        # self time is re-derived from the merged tree: the child ran
        # in another process, so the root's own work is 1.0 - 0.6.
        assert root["derived_self_seconds"] == pytest.approx(0.4)
        assert data["wall_seconds"] == pytest.approx(1.0)

    def test_orphans_are_flagged_not_dropped(self, tmp_path):
        tid = "b" * 32
        _write_spool(tmp_path, 1, [
            _spool_record(tid, "r" * 16, None, "root", 0.0, 1.0),
            _spool_record(tid, "o" * 16, "f" * 16, "lost", 0.1, 0.2),
        ])
        data = traceview.build_timeline(str(tmp_path), tid)
        assert data["orphans"] == ["o" * 16]
        flagged = next(s for s in data["spans"] if s["orphan"])
        assert flagged["span_id"] == "o" * 16
        assert "ORPHAN" in traceview.format_timeline(data)

    def test_unknown_trace_raises(self, tmp_path):
        _write_spool(tmp_path, 1, [])
        with pytest.raises(ValueError):
            traceview.build_timeline(str(tmp_path), "f" * 32)

    def test_timeline_validates_against_pinned_schema(self, tmp_path):
        tid = "c" * 32
        _write_spool(tmp_path, 1, [
            _spool_record(tid, "r" * 16, None, "root", 0.0, 1.0,
                          attrs={"k": "v"}),
        ])
        data = traceview.build_timeline(str(tmp_path), tid)
        assert traceview.validate_timeline(data) == []

    def test_folded_output_weights_by_self_time(self, tmp_path):
        tid = "d" * 32
        _write_spool(tmp_path, 1, [
            _spool_record(tid, "r" * 16, None, "root", 0.0, 1.0),
            _spool_record(tid, "c" * 16, "r" * 16, "child", 0.2, 0.25),
        ])
        data = traceview.build_timeline(str(tmp_path), tid)
        folded = traceview.folded_timeline(data)
        assert "svc;root 750000" in folded
        assert "svc;root;child 250000" in folded

    def test_list_traces_newest_first(self, tmp_path):
        _write_spool(tmp_path, 1, [
            _spool_record("a" * 32, "1" * 16, None, "old", 0.0, 1.0),
            _spool_record("b" * 32, "2" * 16, None, "new", 5.0, 1.0),
        ])
        entries = traceview.list_traces(str(tmp_path))
        assert [e["trace_id"] for e in entries] == ["b" * 32, "a" * 32]
        assert entries[0]["services"] == ["svc"]


class TestTraceCLI:
    def test_show_and_list(self, tmp_path, capsys):
        tid = "e" * 32
        _write_spool(tmp_path, 1, [
            _spool_record(tid, "r" * 16, None, "root", 0.0, 1.0),
        ])
        assert repro_main.main(
            ["trace", "list", "--dir", str(tmp_path)]) == 0
        assert tid in capsys.readouterr().out
        assert repro_main.main(
            ["trace", "show", tid, "--dir", str(tmp_path)]) == 0
        assert "root" in capsys.readouterr().out

    def test_show_json_is_schema_valid(self, tmp_path, capsys):
        tid = "f" * 32
        _write_spool(tmp_path, 1, [
            _spool_record(tid, "r" * 16, None, "root", 0.0, 1.0),
        ])
        assert repro_main.main(
            ["trace", "show", tid, "--dir", str(tmp_path),
             "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert traceview.validate_timeline(data) == []

    def test_show_missing_trace_fails(self, tmp_path, capsys):
        _write_spool(tmp_path, 1, [])
        assert repro_main.main(
            ["trace", "show", "9" * 32, "--dir", str(tmp_path)]) == 1
        capsys.readouterr()


# -- propagation into worker processes ---------------------------------


def _traced_cell(value):
    """Pool workers import this by module path — keep it top-level."""
    with span("inner"):
        return value * 2


class TestExecPropagation:
    def test_pool_workers_join_the_trace(self, tmp_path):
        ctx = TraceContext.root(service="driver",
                                trace_dir=str(tmp_path))
        jobs = [Job(_traced_cell, n, label=f"job{n}")
                for n in range(2)]
        with telemetry(metrics=MetricsRegistry(),
                       phases=PhaseProfile()):
            with activate(ctx):
                with span("driver.run"):
                    results = execute(jobs, jobs=2)
        assert results == [0, 2]
        data = traceview.build_timeline(str(tmp_path), ctx.trace_id)
        assert data["orphans"] == []
        services = {p["service"] for p in data["processes"]}
        assert services == {"driver", "exec-worker"}
        cells = [s for s in data["spans"] if s["name"] == "cell"]
        assert {s["attrs"]["job"] for s in cells} == {"job0", "job1"}
        # nested spans inside the worker parent to the worker's cell
        inners = [s for s in data["spans"] if s["name"] == "inner"]
        cell_ids = {s["span_id"] for s in cells}
        assert inners and all(
            s["parent_id"] in cell_ids for s in inners)

    def test_serial_execute_spans_stay_in_process(self, tmp_path):
        ctx = TraceContext.root(service="driver",
                                trace_dir=str(tmp_path))
        with telemetry(metrics=MetricsRegistry(),
                       phases=PhaseProfile()):
            with activate(ctx):
                results = execute(
                    [Job(_traced_cell, 3, label="one")], jobs=1)
        assert results == [6]
        data = traceview.build_timeline(str(tmp_path), ctx.trace_id)
        assert data["orphans"] == []
        assert {p["service"] for p in data["processes"]} == {"driver"}


class TestCampaignPropagation:
    def test_sharded_run_merges_into_one_trace(self, tmp_path):
        spec = CampaignSpec(
            name="traced", benchmarks=("gzip", "twolf"), scale=SCALE,
            selection="exact-freq", axes=(Axis("max_instr", (10, 30)),),
            cell="tests.test_campaign_backends:fake_cell",
        )
        trace_dir = tmp_path / "trace"
        trace_id = new_trace_id()
        for index in range(2):
            ctx = TraceContext.from_traceparent(
                format_traceparent(trace_id, "0" * 16),
                service=f"campaign-shard{index}",
                trace_dir=str(trace_dir),
            )
            journal_path = str(
                tmp_path / f"journal.shard-{index}-of-2.jsonl")
            backend = ShardedBackend(2, index)
            with telemetry(metrics=MetricsRegistry(),
                           phases=PhaseProfile()):
                with activate(ctx):
                    with span("campaign.run"):
                        with Journal(journal_path) as journal:
                            journal.campaign_start(
                                spec.name, spec.spec_hash, 1)
                            Scheduler(spec, journal, backoff=0.0,
                                      backend=backend).run(
                                          replay(journal_path))
        data = traceview.build_timeline(str(trace_dir), trace_id)
        assert data["orphans"] == []
        services = {p["service"] for p in data["processes"]}
        assert "campaign-shard0" in services
        assert "campaign-shard1" in services
        assert "campaign-worker" in services
        cells = [s for s in data["spans"] if s["name"] == "cell"]
        assert len(cells) == len(spec.cells())
        assert traceview.validate_timeline(data) == []

    def test_untraced_run_writes_no_spools(self, tmp_path):
        spec = CampaignSpec(
            name="plain", benchmarks=("gzip",), scale=SCALE,
            selection="exact-freq", axes=(Axis("max_instr", (10,)),),
            cell="tests.test_campaign_backends:fake_cell",
        )
        journal_path = str(tmp_path / "journal.jsonl")
        with telemetry(metrics=MetricsRegistry(),
                       phases=PhaseProfile()):
            with Journal(journal_path) as journal:
                journal.campaign_start(spec.name, spec.spec_hash, 1)
                Scheduler(spec, journal, backoff=0.0,
                          backend=LocalPoolBackend()).run(
                              replay(journal_path))
        assert traceview.spool_paths(str(tmp_path)) == []
        for record in replay(journal_path).results.values():
            assert "trace_id" not in record


# -- trace-report --trace-id -------------------------------------------


class TestTraceReportFilter:
    def test_filters_to_one_trace(self, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        with open(out, "w") as handle:
            for tid in ("1" * 32, "2" * 32):
                handle.write(json.dumps({
                    "type": "span.end", "name": "work", "path": "work",
                    "seconds": 0.5, "self_seconds": 0.5, "events": 0,
                    "trace_id": tid, "span_id": "a" * 16,
                }) + "\n")
        assert repro_main.main(
            ["trace-report", str(out), "--trace-id", "1" * 32]) == 0
        text = capsys.readouterr().out
        assert "filtered to trace " + "1" * 32 in text
        assert "events: 1" in text
        assert "span-id" in text
        assert "a" * 16 in text

    def test_unfiltered_lists_trace_ids(self, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        with open(out, "w") as handle:
            handle.write(json.dumps({
                "type": "span.end", "name": "w", "path": "w",
                "seconds": 0.1, "trace_id": "3" * 32,
                "span_id": "b" * 16,
            }) + "\n")
        assert repro_main.main(["trace-report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "distributed trace ids: 1" in text
        assert "3" * 32 in text
