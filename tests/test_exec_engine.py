"""The parallel experiment engine: plan-order gathering, telemetry
merging, and bit-identical serial-vs-parallel experiment outputs."""

import pytest

from repro.exec import Job, JobError, default_jobs, execute, \
    execute_starmap, resolve_jobs
from repro.experiments import (
    ablations,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    priorwork,
    runner,
    table2,
)
from repro.experiments.coverage import run_many as coverage_run_many
from repro.obs import MetricsRegistry, PhaseProfile, telemetry
from repro.uarch import ProcessorConfig

SCALE = 0.1
BENCH = ["gzip", "twolf"]


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"job {x} failed")


def _count_one(tag):
    from repro.obs.context import get_metrics, get_phases

    get_metrics().counter("probe_cells_total").inc()
    get_metrics().gauge("probe_last_tag").set(tag)
    get_phases().record("probe", 0.25, events=10)
    return tag


class TestEngineBasics:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_results_in_plan_order(self):
        jobs = [Job(_square, i) for i in range(8)]
        assert execute(jobs, jobs=1) == [i * i for i in range(8)]
        assert execute(jobs, jobs=4) == [i * i for i in range(8)]

    def test_starmap_matches_execute(self):
        args = [(i,) for i in range(5)]
        assert execute_starmap(_square, args, jobs=3) \
            == execute_starmap(_square, args, jobs=1)

    def test_single_job_runs_inline(self):
        # One job never pays pool overhead, whatever ``jobs`` says.
        assert execute([Job(_square, 7)], jobs=8) == [49]

    def test_failing_job_raises_in_parent(self):
        with pytest.raises(RuntimeError, match="job 3 failed"):
            execute([Job(_square, 1), Job(_boom, 3)], jobs=2)
        with pytest.raises(RuntimeError, match="job 3 failed"):
            execute([Job(_square, 1), Job(_boom, 3)], jobs=1)

    def test_pool_failure_carries_the_job_label(self):
        with pytest.raises(JobError) as excinfo:
            execute(
                [Job(_square, 1), Job(_boom, 3, label="cell:gzip")],
                jobs=2,
            )
        assert excinfo.value.label == "cell:gzip"
        assert "cell:gzip" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_job_label(self):
        assert Job(_square, 1).label == "_square"
        assert Job(_square, 1, label="cell").label == "cell"


class TestTelemetryMerging:
    def test_worker_counters_fold_into_parent(self):
        registry = MetricsRegistry()
        phases = PhaseProfile()
        with telemetry(metrics=registry, phases=phases):
            execute([Job(_count_one, i) for i in range(5)], jobs=3)
        assert registry.counter("probe_cells_total").value == 5
        assert phases.seconds("probe") == pytest.approx(5 * 0.25)
        snapshot = phases.as_dict()["probe"]
        assert snapshot["calls"] == 5
        assert snapshot["events"] == 50

    def test_gauges_take_last_job_value(self):
        # Same last-write-wins outcome as the serial path.
        registry = MetricsRegistry()
        with telemetry(metrics=registry):
            execute([Job(_count_one, i) for i in range(5)], jobs=3)
        assert registry.gauge("probe_last_tag").value == 4

    def test_failed_plan_merges_no_worker_telemetry(self):
        # All-or-nothing: a mid-plan failure must not leave the parent
        # registry with a half-gathered snapshot set.
        registry = MetricsRegistry()
        phases = PhaseProfile()
        with telemetry(metrics=registry, phases=phases):
            with pytest.raises(JobError):
                execute(
                    [Job(_count_one, 0), Job(_count_one, 1),
                     Job(_boom, 2), Job(_count_one, 3)],
                    jobs=2,
                )
        assert registry.get("probe_cells_total") is None
        assert "probe" not in phases

    def test_parallel_metrics_match_serial(self):
        from repro.exec import artifact_cache

        # Disable the disk layer so both runs do the same cold work.
        artifact_cache.set_disabled(True)
        try:
            serial = MetricsRegistry()
            with telemetry(metrics=serial, phases=PhaseProfile()):
                runner.clear_cache()
                fig6.run(scale=SCALE, benchmarks=BENCH, jobs=1)
            parallel = MetricsRegistry()
            with telemetry(metrics=parallel, phases=PhaseProfile()):
                runner.clear_cache()
                fig6.run(scale=SCALE, benchmarks=BENCH, jobs=2)
            runner.clear_cache()
        finally:
            artifact_cache.set_disabled(None)
        for name in ("sim_runs_total", "sim_instructions_total",
                     "sim_pipeline_flushes_total", "emulator_runs_total"):
            assert serial.counter(name).value \
                == parallel.counter(name).value, name


class TestDriverDeterminism:
    """Every driver is bit-identical at jobs=1 vs jobs=4."""

    def _compare(self, module, **kwargs):
        runner.clear_cache()
        serial = module.run(scale=SCALE, benchmarks=BENCH, jobs=1,
                            **kwargs)
        runner.clear_cache()
        parallel = module.run(scale=SCALE, benchmarks=BENCH, jobs=4,
                              **kwargs)
        runner.clear_cache()
        assert serial == parallel
        assert module.format_result(serial) \
            == module.format_result(parallel)

    def test_fig5(self):
        self._compare(fig5)

    def test_fig6(self):
        self._compare(fig6)

    def test_fig7(self):
        self._compare(fig7, max_instr_values=(10, 50),
                      min_merge_prob_values=(0.05, 0.60))

    def test_fig8(self):
        self._compare(fig8)

    def test_fig9(self):
        self._compare(fig9)

    def test_fig10(self):
        self._compare(fig10)

    def test_table2(self):
        self._compare(table2)

    def test_priorwork(self):
        self._compare(priorwork)

    def test_ablation_sweep(self):
        runner.clear_cache()
        serial = ablations.run_max_cfm(
            scale=SCALE, benchmarks=BENCH, values=(1, 3), jobs=1
        )
        runner.clear_cache()
        parallel = ablations.run_max_cfm(
            scale=SCALE, benchmarks=BENCH, values=(1, 3), jobs=4
        )
        runner.clear_cache()
        assert serial == parallel

    def test_coverage(self):
        runner.clear_cache()
        serial = coverage_run_many(BENCH, scale=SCALE, jobs=1)
        runner.clear_cache()
        parallel = coverage_run_many(BENCH, scale=SCALE, jobs=2)
        runner.clear_cache()
        assert [r["rows"] for r in serial] == [r["rows"] for r in parallel]
        assert [r["coverage"] for r in serial] \
            == [r["coverage"] for r in parallel]


class TestBaselineConfigKey:
    def test_equal_configs_share_a_cache_entry(self):
        runner.clear_cache()
        first = runner.run_baseline(
            "gzip", scale=SCALE, config=ProcessorConfig(rob_size=128)
        )
        second = runner.run_baseline(
            "gzip", scale=SCALE, config=ProcessorConfig(rob_size=128)
        )
        assert first is second
        runner.clear_cache()

    def test_different_configs_do_not_alias(self):
        runner.clear_cache()
        small = runner.run_baseline(
            "gzip", scale=SCALE, config=ProcessorConfig(rob_size=128)
        )
        large = runner.run_baseline(
            "gzip", scale=SCALE, config=ProcessorConfig(rob_size=512)
        )
        assert small is not large
        assert small.cycles != large.cycles
        runner.clear_cache()
