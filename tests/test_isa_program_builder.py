"""Tests for Program validation and the ProgramBuilder."""

import pytest

from repro.errors import AssemblerError, CFGError
from repro.isa import Instruction, Opcode, Program, ProgramBuilder
from repro.isa.program import Function


def _tiny():
    builder = ProgramBuilder("tiny")
    builder.begin_function("main")
    builder.movi(1, 5)
    builder.halt()
    builder.end_function()
    return builder.build()


class TestBuilder:
    def test_forward_label_reference(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.beqz(1, "skip")
        b.addi(2, 2, 1)
        b.label("skip")
        b.halt()
        b.end_function()
        program = b.build()
        assert program[0].target == 2

    def test_backward_label_reference(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.label("top")
        b.addi(1, 1, -1)
        b.bnez(1, "top")
        b.halt()
        b.end_function()
        program = b.build()
        assert program[1].target == 0

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.jmp("nowhere")
        b.end_function()
        with pytest.raises(AssemblerError, match="nowhere"):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.label("x")
        b.nop()
        with pytest.raises(AssemblerError, match="duplicate"):
            b.label("x")

    def test_call_resolves_to_function_entry(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.call("helper")
        b.halt()
        b.end_function()
        b.begin_function("helper")
        b.ret()
        b.end_function()
        program = b.build()
        assert program[0].target == program.function_named("helper").start

    def test_unclosed_function_raises(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.nop()
        with pytest.raises(AssemblerError, match="never closed"):
            b.build()

    def test_empty_function_raises(self):
        b = ProgramBuilder()
        b.begin_function("main")
        with pytest.raises(AssemblerError, match="empty"):
            b.end_function()

    def test_nested_function_open_raises(self):
        b = ProgramBuilder()
        b.begin_function("main")
        with pytest.raises(AssemblerError, match="still open"):
            b.begin_function("other")

    def test_emit_outside_function_raises(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblerError, match="outside"):
            b.nop()

    def test_fresh_labels_unique(self):
        b = ProgramBuilder()
        names = {b.fresh_label("L") for _ in range(100)}
        assert len(names) == 100

    def test_here_tracks_position(self):
        b = ProgramBuilder()
        b.begin_function("main")
        assert b.here == 0
        b.nop()
        assert b.here == 1


class TestProgram:
    def test_entry_is_first_function_start(self):
        program = _tiny()
        assert program.entry == 0

    def test_function_of(self):
        b = ProgramBuilder()
        b.begin_function("main")
        b.call("f")
        b.halt()
        b.end_function()
        b.begin_function("f")
        b.ret()
        b.end_function()
        program = b.build()
        assert program.function_of(0).name == "main"
        assert program.function_of(2).name == "f"
        with pytest.raises(CFGError):
            program.function_of(99)

    def test_function_named_missing(self):
        with pytest.raises(CFGError, match="no function"):
            _tiny().function_named("ghost")

    def test_branch_may_not_leave_function(self):
        insts = [
            Instruction(op=Opcode.JMP, target=2),
            Instruction(op=Opcode.HALT),
            Instruction(op=Opcode.RET),
        ]
        functions = [Function("main", 0, 2), Function("f", 2, 3)]
        with pytest.raises(CFGError, match="leaves function"):
            Program(insts, functions)

    def test_call_must_target_function_entry(self):
        insts = [
            Instruction(op=Opcode.CALL, target=1),
            Instruction(op=Opcode.HALT),
            Instruction(op=Opcode.RET),
        ]
        functions = [Function("main", 0, 2), Function("f", 2, 3)]
        with pytest.raises(CFGError, match="not a function entry"):
            Program(insts, functions)

    def test_functions_must_tile(self):
        insts = [Instruction(op=Opcode.HALT)] * 3
        with pytest.raises(CFGError):
            Program(insts, [Function("main", 0, 2)])

    def test_duplicate_function_names(self):
        insts = [Instruction(op=Opcode.HALT)] * 2
        with pytest.raises(CFGError, match="duplicate"):
            Program(
                insts, [Function("m", 0, 1), Function("m", 1, 2)]
            )

    def test_conditional_branch_pcs(self, simple_hammock_program):
        pcs = simple_hammock_program.conditional_branch_pcs()
        assert pcs
        assert all(
            simple_hammock_program[pc].is_conditional_branch for pc in pcs
        )

    def test_disassemble_mentions_functions_and_pcs(self):
        text = _tiny().disassemble()
        assert "main:" in text
        assert "movi r1, 5" in text

    def test_len_and_getitem(self):
        program = _tiny()
        assert len(program) == 2
        assert program[1].is_halt
