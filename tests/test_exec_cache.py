"""The persistent artifact cache: keys, invalidation, corruption
tolerance, and the single-pass artifact-build guarantee."""

import os

import pytest

from repro.exec import artifact_cache
from repro.experiments import runner
from repro.obs import MetricsRegistry, telemetry
from repro.profiling import Profiler
from repro.workloads import load_benchmark

SCALE = 0.1


def _key(name="gzip", input_set="reduced", scale=SCALE, profiler=None):
    workload = load_benchmark(name, input_set=input_set, scale=scale)
    profiler = profiler or Profiler()
    return artifact_cache.artifact_key(workload, profiler.fingerprint())


class TestKeys:
    def test_key_is_stable(self):
        assert _key() == _key()

    def test_program_change_misses(self):
        assert _key(name="gzip") != _key(name="twolf")

    def test_input_set_change_misses(self):
        assert _key(input_set="reduced") != _key(input_set="train")

    def test_scale_change_misses(self):
        assert _key(scale=0.1) != _key(scale=0.2)

    def test_profiler_config_change_misses(self):
        from repro.branchpred import PerceptronPredictor

        small = Profiler(
            predictor=PerceptronPredictor(num_perceptrons=16)
        )
        assert _key() != _key(profiler=small)

    def test_fingerprint_reflects_geometry(self):
        from repro.branchpred import PerceptronPredictor

        default = Profiler().fingerprint()
        small = Profiler(
            predictor=PerceptronPredictor(num_perceptrons=16)
        ).fingerprint()
        assert default != small
        assert "PerceptronPredictor" in default
        assert "JRSConfidenceEstimator" in default


class TestRoundtrip:
    def test_store_load_roundtrip(self):
        artifacts = runner.get_artifacts("gzip", scale=SCALE)
        key = _key()
        loaded = artifact_cache.load(key)
        assert loaded is not None
        trace, profile = loaded
        assert list(trace.rows()) == list(artifacts.trace.rows())
        assert profile.total_branches \
            == artifacts.profile.total_branches
        assert profile.measured_acc_conf \
            == artifacts.profile.measured_acc_conf
        runner.clear_cache()

    def test_disk_hit_skips_emulation(self):
        runner.get_artifacts("gzip", scale=SCALE)   # populate disk
        runner.clear_cache()                        # drop in-memory
        registry = MetricsRegistry()
        with telemetry(metrics=registry):
            runner.get_artifacts("gzip", scale=SCALE)
        assert "emulator_runs_total" not in registry
        assert registry.counter("cache_disk_hits_total").value == 1
        runner.clear_cache()

    def test_single_emulation_per_workload(self):
        registry = MetricsRegistry()
        with telemetry(metrics=registry):
            runner.clear_cache()
            runner.get_artifacts("gzip", scale=SCALE)
            runner.get_artifacts("gzip", scale=SCALE)
            runner.run_baseline("gzip", scale=SCALE)
        assert registry.counter("emulator_runs_total").value == 1
        runner.clear_cache()

    def test_disabled_cache_stores_nothing(self):
        artifact_cache.set_disabled(True)
        try:
            key = _key()
            assert artifact_cache.store(key, [], None) is None
            assert artifact_cache.load(key) is None
            assert not os.path.isdir(artifact_cache.cache_dir()) \
                or not os.listdir(artifact_cache.cache_dir())
        finally:
            artifact_cache.set_disabled(None)


class TestCorruption:
    def _entry_paths(self):
        root = artifact_cache.cache_dir()
        return [
            os.path.join(root, name)
            for name in os.listdir(root)
            if name.endswith(artifact_cache.ENTRY_SUFFIX)
        ]

    def _corrupt_and_reload(self, mutate):
        first = runner.get_artifacts("gzip", scale=SCALE)
        runner.clear_cache()
        (path,) = self._entry_paths()
        mutate(path)
        registry = MetricsRegistry()
        with telemetry(metrics=registry):
            rebuilt = runner.get_artifacts("gzip", scale=SCALE)
        runner.clear_cache()
        assert registry.counter("cache_disk_corrupt_total").value == 1
        # The rebuild regenerated identical artifacts.
        assert registry.counter("emulator_runs_total").value == 1
        assert list(rebuilt.trace.rows()) == list(first.trace.rows())
        return rebuilt

    def test_truncated_entry_rebuilds(self):
        def truncate(path):
            blob = open(path, "rb").read()
            open(path, "wb").write(blob[: len(blob) // 2])

        self._corrupt_and_reload(truncate)

    def test_flipped_byte_rebuilds(self):
        def flip(path):
            blob = bytearray(open(path, "rb").read())
            blob[-1] ^= 0xFF
            open(path, "wb").write(bytes(blob))

        self._corrupt_and_reload(flip)

    def test_bad_magic_rebuilds(self):
        def stomp(path):
            blob = bytearray(open(path, "rb").read())
            blob[:8] = b"NOTMAGIC"
            open(path, "wb").write(bytes(blob))

        self._corrupt_and_reload(stomp)

    def test_corrupt_entry_is_removed(self):
        runner.get_artifacts("gzip", scale=SCALE)
        runner.clear_cache()
        (path,) = self._entry_paths()
        open(path, "wb").write(b"garbage")
        assert artifact_cache.load(_key()) is None
        assert not os.path.exists(path)


class TestMaintenance:
    def test_info_counts_entries(self):
        runner.get_artifacts("gzip", scale=SCALE)
        runner.clear_cache()
        info = artifact_cache.info()
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert info["enabled"]

    def test_clear_removes_entries(self):
        runner.get_artifacts("gzip", scale=SCALE)
        runner.clear_cache()
        assert artifact_cache.clear() == 1
        assert artifact_cache.info()["entries"] == 0

    def test_env_var_moves_the_cache(self, tmp_path, monkeypatch):
        other = tmp_path / "elsewhere"
        monkeypatch.setenv(artifact_cache.ENV_CACHE_DIR, str(other))
        assert artifact_cache.cache_dir() == str(other)

    def test_cli_cache_info_and_clear(self, capsys):
        from repro.__main__ import main

        runner.get_artifacts("gzip", scale=SCALE)
        runner.clear_cache()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert artifact_cache.info()["entries"] == 0

    def test_cli_rejects_unknown_cache_action(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["cache", "destroy"])
