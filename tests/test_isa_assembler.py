"""Tests for the text assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa import Opcode, assemble


def test_all_alu_mnemonics():
    ops = ["add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr",
           "cmplt", "cmple", "cmpeq", "cmpne", "cmpgt", "cmpge"]
    body = "\n".join(f"    {op} r1, r2, r3" for op in ops)
    program = assemble(f".func main\n{body}\n    halt\n.endfunc")
    assert len(program) == len(ops) + 1
    assert program[0].op is Opcode.ADD
    assert program[4].op is Opcode.AND


def test_immediate_and_register_second_operand():
    program = assemble(
        ".func main\n    add r1, r2, 5\n    add r1, r2, r3\n    halt\n.endfunc"
    )
    assert program[0].imm == 5 and program[0].src2 is None
    assert program[1].src2 == 3 and program[1].imm is None


def test_addi_alias():
    program = assemble(".func main\n    addi r1, r1, -4\n    halt\n.endfunc")
    assert program[0].op is Opcode.ADD
    assert program[0].imm == -4


def test_addi_alias_rejects_register():
    with pytest.raises(AssemblerError):
        assemble(".func main\n    addi r1, r1, r2\n    halt\n.endfunc")


def test_memory_addressing():
    program = assemble(
        ".func main\n    ld r1, 8(r2)\n    st r3, -4(r5)\n    halt\n.endfunc"
    )
    ld, st = program[0], program[1]
    assert (ld.dest, ld.src1, ld.imm) == (1, 2, 8)
    assert (st.src2, st.src1, st.imm) == (3, 5, -4)


def test_bad_memory_operand():
    with pytest.raises(AssemblerError, match="offset"):
        assemble(".func main\n    ld r1, r2\n    halt\n.endfunc")


def test_comments_and_blank_lines():
    program = assemble(
        """
        ; full line comment
        .func main
            nop        ; trailing comment
            # hash comment
            halt
        .endfunc
        """
    )
    assert len(program) == 2


def test_labels_and_branches():
    program = assemble(
        """
        .func main
        top:
            addi r1, r1, 1
            bnez r1, top
            beqz r1, end
            nop
        end:
            halt
        .endfunc
        """
    )
    assert program[1].target == 0
    assert program[2].target == 4


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble(".func main\n    frobnicate r1\n.endfunc")


def test_wrong_operand_count():
    with pytest.raises(AssemblerError, match="needs"):
        assemble(".func main\n    mov r1\n    halt\n.endfunc")


def test_bad_register_token():
    with pytest.raises(AssemblerError, match="register"):
        assemble(".func main\n    mov r1, x2\n    halt\n.endfunc")


def test_bad_integer():
    with pytest.raises(AssemblerError, match="integer"):
        assemble(".func main\n    movi r1, abc\n    halt\n.endfunc")


def test_malformed_func_directive():
    with pytest.raises(AssemblerError, match="malformed"):
        assemble(".func\n    halt\n.endfunc")


def test_hex_immediates():
    program = assemble(".func main\n    movi r1, 0x10\n    halt\n.endfunc")
    assert program[0].imm == 16


def test_multiple_functions_and_calls():
    program = assemble(
        """
        .func main
            call helper
            halt
        .endfunc
        .func helper
            movi r2, 1
            ret
        .endfunc
        """
    )
    assert program[0].target == 2
    assert len(program.functions) == 2
