"""CFG construction tests."""

import pytest

from repro.cfg import build_cfg, build_cfgs
from repro.errors import CFGError
from repro.isa import assemble


def cfg_of(text, func="main"):
    program = assemble(text)
    return build_cfgs(program)[func]


DIAMOND = """
.func main
    movi r1, 1
    bnez r1, right
    addi r2, r2, 1
    jmp join
right:
    addi r3, r3, 1
join:
    halt
.endfunc
"""


class TestBlockSplitting:
    def test_diamond_block_count(self):
        cfg = cfg_of(DIAMOND)
        # entry+branch | left | right | join
        assert len(cfg.blocks) == 4

    def test_blocks_tile_the_function(self):
        cfg = cfg_of(DIAMOND)
        covered = []
        for block in cfg.blocks:
            covered.extend(range(block.start, block.end))
        assert covered == list(range(len(cfg.program)))

    def test_block_containing(self):
        cfg = cfg_of(DIAMOND)
        assert cfg.block_containing(0).block_id == 0
        assert cfg.block_containing(1).block_id == 0
        with pytest.raises(CFGError):
            cfg.block_containing(999)

    def test_entry_block_starts_at_function_start(self):
        cfg = cfg_of(DIAMOND)
        assert cfg.entry_block.start == cfg.function.start


class TestEdges:
    def test_conditional_branch_has_two_successors(self):
        cfg = cfg_of(DIAMOND)
        branch_block = cfg.block_containing(1)
        assert len(branch_block.successors) == 2
        assert branch_block.taken_successor is not None
        assert branch_block.fallthrough_successor is not None
        taken = cfg.blocks[branch_block.taken_successor]
        assert taken.start == cfg.program[1].target

    def test_jmp_has_single_successor(self):
        cfg = cfg_of(DIAMOND)
        jmp_block = cfg.block_containing(3)
        assert len(jmp_block.successors) == 1

    def test_halt_block_has_no_successors(self):
        cfg = cfg_of(DIAMOND)
        halt_block = cfg.block_containing(len(cfg.program) - 1)
        assert halt_block.successors == []
        assert halt_block in cfg.exit_blocks()

    def test_predecessors_mirror_successors(self):
        cfg = cfg_of(DIAMOND)
        for src, dst in cfg.edge_iter():
            assert src.block_id in dst.predecessors

    def test_call_does_not_split_blocks(self):
        cfg = cfg_of(
            """
            .func main
                call f
                halt
            .endfunc
            .func f
                ret
            .endfunc
            """
        )
        # Intraprocedural CFG: CALL falls through, so call+halt share
        # one basic block.
        block = cfg.block_containing(0)
        assert block.start == 0 and block.end == 2

    def test_ret_blocks_are_exits(self):
        program = assemble(
            """
            .func main
                call f
                halt
            .endfunc
            .func f
                movi r1, 1
                bnez r1, other
                ret
            other:
                ret
            .endfunc
            """
        )
        cfg = build_cfgs(program)["f"]
        assert len(cfg.exit_blocks()) == 2


class TestQueries:
    def test_conditional_branch_blocks(self, simple_hammock_program):
        cfg = build_cfgs(simple_hammock_program)["main"]
        blocks = cfg.conditional_branch_blocks()
        assert all(
            cfg.terminator(b).is_conditional_branch for b in blocks
        )
        assert len(blocks) == 2  # loop exit + hammock

    def test_loop_backedge_exists(self, simple_hammock_program):
        cfg = build_cfgs(simple_hammock_program)["main"]
        edges = {(s.block_id, d.block_id) for s, d in cfg.edge_iter()}
        back = [(s, d) for s, d in edges if d < s]
        assert back  # the jmp loop -> top

    def test_build_cfgs_covers_all_functions(self, call_program):
        cfgs = build_cfgs(call_program)
        assert set(cfgs) == {"main", "helper"}
