"""ProcessorConfig tests (Table 1 fidelity and validation)."""

import pytest

from repro.uarch import ProcessorConfig
from repro.uarch.config import BASELINE


def test_defaults_match_table1():
    cfg = ProcessorConfig()
    assert cfg.fetch_width == 8
    assert cfg.rob_size == 512
    assert cfg.retire_width == 8
    assert cfg.max_cond_branches_per_cycle == 3
    assert cfg.perceptron_entries == 256
    assert cfg.perceptron_history == 64
    assert cfg.btb_entries == 4096
    assert cfg.ras_depth == 64
    assert cfg.icache_kb == 64 and cfg.icache_assoc == 2
    assert cfg.dcache_kb == 64 and cfg.dcache_assoc == 4
    assert cfg.l2_kb == 1024 and cfg.l2_assoc == 8
    assert cfg.memory_latency == 300
    assert cfg.confidence_threshold == 14
    assert cfg.num_predicate_registers == 32
    assert cfg.num_cfm_registers == 3


def test_min_misprediction_penalty_at_least_25():
    assert ProcessorConfig().min_misprediction_penalty >= 25


def test_baseline_is_default():
    assert BASELINE == ProcessorConfig()


def test_frozen():
    cfg = ProcessorConfig()
    with pytest.raises(Exception):
        cfg.fetch_width = 4


def test_validation_rejects_nonsense():
    with pytest.raises(ValueError):
        ProcessorConfig(fetch_width=0).validate()
    with pytest.raises(ValueError):
        ProcessorConfig(retire_width=0).validate()


def test_validate_returns_self():
    cfg = ProcessorConfig()
    assert cfg.validate() is cfg
