"""The metrics registry: counters, gauges, histograms, snapshots."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_float_increments(self):
        counter = Counter("seconds")
        counter.inc(0.25)
        counter.inc(0.5)
        assert counter.value == pytest.approx(0.75)

    def test_rejects_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_edge_values_land_in_their_bucket(self):
        # Inclusive upper bounds: a value equal to a bound counts there.
        hist = Histogram("h", (1, 5, 10))
        for value in (0, 1, 2, 5, 10, 11):
            hist.observe(value)
        assert hist.counts == [2, 2, 1]   # {0,1}, {2,5}, {10}
        assert hist.overflow == 1          # {11}
        assert hist.total == 6
        assert hist.sum == 29.0
        assert hist.mean == pytest.approx(29.0 / 6)

    def test_empty_mean_is_zero(self):
        assert Histogram("h", (1,)).mean == 0.0

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (5, 1))
        with pytest.raises(ValueError):
            Histogram("h", (1, 1, 2))

    def test_as_dict_keys_are_strings(self):
        hist = Histogram("h", (1, 2))
        hist.observe(1)
        snapshot = hist.as_dict()
        assert snapshot["buckets"] == {"1": 1, "2": 0}
        assert snapshot["count"] == 1

    def test_quantile_returns_bucket_upper_bounds(self):
        hist = Histogram("h", (1, 5, 10))
        for value in (0, 1, 2, 5, 10, 10):
            hist.observe(value)
        assert hist.quantile(0.5) == 5
        assert hist.quantile(0.25) == 1
        assert hist.quantile(1.0) == 10

    def test_quantile_overflow_and_empty(self):
        hist = Histogram("h", (1,))
        assert hist.quantile(0.5) is None
        hist.observe(100)
        assert hist.quantile(0.5) == float("inf")
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestRegistry:
    def test_lookup_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", (1, 2)) is \
            registry.histogram("h", (1, 2))

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x", (1,))
        registry.histogram("h", (1,))
        with pytest.raises(TypeError):
            registry.counter("h")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 3))

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.gauge("pvn").set(0.4)
        snapshot = registry.as_dict()
        assert snapshot["runs"] == {"kind": "counter", "value": 3}
        assert snapshot["pvn"] == {"kind": "gauge", "value": 0.4}

    def test_write_json_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.histogram("h", (1, 5)).observe(3)
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == registry.as_dict()

    def test_container_protocol(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert "a" in registry
        assert "b" not in registry
        assert len(registry) == 1
        assert registry.names() == ["a"]
        assert registry.get("a").kind == "counter"
        assert registry.get("b") is None


class TestThreadSafety:
    """Satellite: one lock around mutation and render."""

    def test_concurrent_increments_are_not_lost(self):
        import threading

        registry = MetricsRegistry()
        threads_n, per_thread = 8, 2000
        start = threading.Barrier(threads_n)

        def worker():
            start.wait(timeout=5)
            for _ in range(per_thread):
                registry.counter("hits").inc()
                registry.gauge("level").inc()
                registry.histogram("lat", (0.5, 1.0)).observe(0.25)

        threads = [threading.Thread(target=worker)
                   for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        expected = threads_n * per_thread
        assert registry.get("hits").value == expected
        assert registry.get("level").value == expected
        assert registry.get("lat").total == expected
        assert registry.get("lat").counts[0] == expected

    def test_render_during_concurrent_mutation(self):
        import threading

        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def mutate():
            while not stop.is_set():
                registry.counter("spin").inc()
                registry.histogram("h", (1.0,)).observe(0.5)

        def render():
            from repro.obs.metrics import parse_openmetrics

            try:
                while not stop.is_set():
                    parse_openmetrics(registry.render_openmetrics())
                    registry.as_dict()
            except Exception as exc:  # noqa: BLE001 — test harness
                errors.append(exc)

        threads = [threading.Thread(target=mutate) for _ in range(4)]
        threads += [threading.Thread(target=render) for _ in range(2)]
        for thread in threads:
            thread.start()
        import time as _time

        _time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert errors == []

    def test_standalone_instruments_have_their_own_lock(self):
        counter = Counter("lone")
        gauge = Gauge("lone_g")
        histogram = Histogram("lone_h", (1.0,))
        counter.inc()
        gauge.set(2)
        histogram.observe(0.5)
        assert counter.value == 1
        assert gauge.value == 2
        assert histogram.total == 1

    def test_merge_snapshot_under_the_registry_lock(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        snapshot = registry.as_dict()
        registry.merge_snapshot(snapshot)
        assert registry.get("c").value == 4


class TestOpenMetricsEdgeCases:
    """Satellite: empty histograms, zero-sample quantiles, escaping."""

    def test_empty_histogram_render_parse_round_trip(self):
        from repro.obs.metrics import parse_openmetrics

        registry = MetricsRegistry()
        registry.histogram("empty_latency", (0.1, 1.0))
        snapshot = parse_openmetrics(registry.render_openmetrics())
        parsed = snapshot["empty_latency"]
        assert parsed["kind"] == "histogram"
        assert parsed["count"] == 0
        assert parsed["sum"] == 0.0
        assert all(c == 0 for c in parsed["buckets"].values())
        other = MetricsRegistry()
        other.merge_snapshot(snapshot)
        assert other.get("empty_latency").total == 0

    def test_quantile_on_zero_samples_is_none(self):
        histogram = Histogram("h", (0.5, 1.0))
        assert histogram.quantile(0.5) is None
        assert histogram.quantile(0.0) is None
        assert histogram.quantile(1.0) is None

    def test_help_escaping_keeps_the_format_line_oriented(self):
        from repro.obs.metrics import escape_help

        registry = MetricsRegistry()
        registry.counter(
            "tricky", help="line one\nline two \\ backslash").inc()
        text = registry.render_openmetrics()
        assert "line one\\nline two \\\\ backslash" in text
        assert all(
            line.startswith(("#", "tricky"))
            for line in text.splitlines() if "tricky" in line
        )
        assert escape_help("a\nb\\c") == "a\\nb\\\\c"

    def test_label_value_escaping(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value('say "hi"\n\\') \
            == 'say \\"hi\\"\\n\\\\'
