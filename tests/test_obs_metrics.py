"""The metrics registry: counters, gauges, histograms, snapshots."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_float_increments(self):
        counter = Counter("seconds")
        counter.inc(0.25)
        counter.inc(0.5)
        assert counter.value == pytest.approx(0.75)

    def test_rejects_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_edge_values_land_in_their_bucket(self):
        # Inclusive upper bounds: a value equal to a bound counts there.
        hist = Histogram("h", (1, 5, 10))
        for value in (0, 1, 2, 5, 10, 11):
            hist.observe(value)
        assert hist.counts == [2, 2, 1]   # {0,1}, {2,5}, {10}
        assert hist.overflow == 1          # {11}
        assert hist.total == 6
        assert hist.sum == 29.0
        assert hist.mean == pytest.approx(29.0 / 6)

    def test_empty_mean_is_zero(self):
        assert Histogram("h", (1,)).mean == 0.0

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (5, 1))
        with pytest.raises(ValueError):
            Histogram("h", (1, 1, 2))

    def test_as_dict_keys_are_strings(self):
        hist = Histogram("h", (1, 2))
        hist.observe(1)
        snapshot = hist.as_dict()
        assert snapshot["buckets"] == {"1": 1, "2": 0}
        assert snapshot["count"] == 1

    def test_quantile_returns_bucket_upper_bounds(self):
        hist = Histogram("h", (1, 5, 10))
        for value in (0, 1, 2, 5, 10, 10):
            hist.observe(value)
        assert hist.quantile(0.5) == 5
        assert hist.quantile(0.25) == 1
        assert hist.quantile(1.0) == 10

    def test_quantile_overflow_and_empty(self):
        hist = Histogram("h", (1,))
        assert hist.quantile(0.5) is None
        hist.observe(100)
        assert hist.quantile(0.5) == float("inf")
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestRegistry:
    def test_lookup_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", (1, 2)) is \
            registry.histogram("h", (1, 2))

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x", (1,))
        registry.histogram("h", (1,))
        with pytest.raises(TypeError):
            registry.counter("h")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 3))

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.gauge("pvn").set(0.4)
        snapshot = registry.as_dict()
        assert snapshot["runs"] == {"kind": "counter", "value": 3}
        assert snapshot["pvn"] == {"kind": "gauge", "value": 0.4}

    def test_write_json_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.histogram("h", (1, 5)).observe(3)
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == registry.as_dict()

    def test_container_protocol(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert "a" in registry
        assert "b" not in registry
        assert len(registry) == 1
        assert registry.names() == ["a"]
        assert registry.get("a").kind == "counter"
        assert registry.get("b") is None
