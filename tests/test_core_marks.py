"""Tests for the diverge-branch/CFM data model and BinaryAnnotation."""

import pytest

from repro.core import (
    BinaryAnnotation,
    CFMKind,
    CFMPoint,
    DivergeBranch,
    DivergeKind,
)


class TestCFMPoint:
    def test_exact_point(self):
        point = CFMPoint(pc=10, kind=CFMKind.EXACT)
        assert point.merge_prob == 1.0

    def test_return_point_has_no_pc(self):
        point = CFMPoint(pc=None, kind=CFMKind.RETURN, merge_prob=0.9)
        assert point.pc is None

    def test_return_point_rejects_pc(self):
        with pytest.raises(ValueError):
            CFMPoint(pc=5, kind=CFMKind.RETURN)

    def test_non_return_requires_pc(self):
        with pytest.raises(ValueError):
            CFMPoint(pc=None, kind=CFMKind.APPROXIMATE)

    def test_merge_prob_bounds(self):
        with pytest.raises(ValueError):
            CFMPoint(pc=1, kind=CFMKind.EXACT, merge_prob=1.5)


class TestDivergeBranch:
    def test_basic_hammock(self):
        branch = DivergeBranch(
            branch_pc=4,
            kind=DivergeKind.SIMPLE_HAMMOCK,
            cfm_points=(CFMPoint(pc=9, kind=CFMKind.EXACT),),
            select_registers=frozenset({3, 5}),
        )
        assert branch.cfm_pcs == frozenset({9})
        assert branch.num_select_uops == 2
        assert not branch.has_return_cfm

    def test_loop_requires_direction(self):
        with pytest.raises(ValueError):
            DivergeBranch(
                branch_pc=4,
                kind=DivergeKind.LOOP,
                cfm_points=(CFMPoint(pc=9, kind=CFMKind.LOOP_EXIT),),
            )

    def test_cfm_less_branch_allowed(self):
        # The §7.2 simple baselines mark CFM-less branches (dual-path).
        branch = DivergeBranch(
            branch_pc=4,
            kind=DivergeKind.FREQUENTLY_HAMMOCK,
            cfm_points=(),
        )
        assert branch.cfm_pcs == frozenset()

    def test_return_cfm_flag(self):
        branch = DivergeBranch(
            branch_pc=4,
            kind=DivergeKind.FREQUENTLY_HAMMOCK,
            cfm_points=(CFMPoint(pc=None, kind=CFMKind.RETURN),),
        )
        assert branch.has_return_cfm
        assert branch.cfm_pcs == frozenset()


def _mk(pc, kind=DivergeKind.SIMPLE_HAMMOCK, cfms=(9,)):
    return DivergeBranch(
        branch_pc=pc,
        kind=kind,
        cfm_points=tuple(
            CFMPoint(pc=c, kind=CFMKind.EXACT) for c in cfms
        ),
    )


class TestBinaryAnnotation:
    def test_add_get_iterate(self):
        ann = BinaryAnnotation("p", [_mk(4), _mk(2)])
        assert ann.is_diverge(4)
        assert ann.get(2).branch_pc == 2
        assert ann.get(99) is None
        assert [b.branch_pc for b in ann] == [2, 4]
        assert len(ann) == 2

    def test_duplicate_rejected(self):
        ann = BinaryAnnotation("p", [_mk(4)])
        with pytest.raises(ValueError, match="duplicate"):
            ann.add(_mk(4))

    def test_average_cfm_points(self):
        ann = BinaryAnnotation("p", [_mk(1, cfms=(5,)), _mk(2, cfms=(5, 7))])
        assert ann.average_cfm_points == pytest.approx(1.5)
        assert BinaryAnnotation("q").average_cfm_points == 0.0

    def test_branches_of_kind(self):
        ann = BinaryAnnotation(
            "p",
            [
                _mk(1),
                _mk(2, kind=DivergeKind.NESTED_HAMMOCK),
            ],
        )
        assert len(ann.branches_of_kind(DivergeKind.SIMPLE_HAMMOCK)) == 1

    def test_summary(self):
        ann = BinaryAnnotation("p", [_mk(1)])
        summary = ann.summary()
        assert summary["total"] == 1
        assert summary["by_kind"]["simple"] == 1
