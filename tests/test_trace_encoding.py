"""Compact trace encoding and the fused trace+profile emulator pass."""

import pytest

from repro.emulator import (
    NO_ADDRESS,
    DynamicInstruction,
    Trace,
    TraceView,
    execute,
    trace_rows,
)
from repro.profiling import Profiler
from repro.uarch import TimingSimulator
from repro.workloads import load_benchmark

SCALE = 0.1


class TestTraceContainer:
    def test_record_and_view(self):
        trace = Trace()
        trace.record(3, 4)
        trace.record(4, 9, 120)
        assert len(trace) == 2
        assert trace[0].pc == 3
        assert trace[0].next_pc == 4
        assert trace[0].address is None
        assert trace[1].address == 120
        assert not trace[0].taken()
        assert trace[1].taken()

    def test_append_dynamic_instruction(self):
        trace = Trace()
        trace.append(DynamicInstruction(5, 6, address=40))
        assert trace[0].pc == 5
        assert trace[0].address == 40

    def test_iteration_yields_views(self):
        trace = Trace()
        trace.record(0, 1)
        trace.record(1, 7)
        views = list(trace)
        assert all(isinstance(v, TraceView) for v in views)
        assert [v.pc for v in views] == [0, 1]

    def test_rows_use_sentinel(self):
        trace = Trace()
        trace.record(0, 1)
        trace.record(1, 2, 55)
        assert list(trace.rows()) == [(0, 1, NO_ADDRESS), (1, 2, 55)]

    def test_trace_rows_on_list_trace(self):
        listed = [DynamicInstruction(0, 1), DynamicInstruction(1, 2, 9)]
        assert list(trace_rows(listed)) == [(0, 1, None), (1, 2, 9)]

    def test_bytes_roundtrip(self):
        trace = Trace()
        for i in range(100):
            trace.record(i, i + 1, i * 8 if i % 3 == 0 else None)
        rebuilt = Trace.from_bytes(*trace.to_bytes())
        assert list(rebuilt.rows()) == list(trace.rows())

    def test_from_bytes_rejects_ragged_columns(self):
        trace = Trace()
        trace.record(0, 1)
        pcs, next_pcs, addresses = trace.to_bytes()
        with pytest.raises(ValueError):
            Trace.from_bytes(pcs, next_pcs, addresses + addresses)

    def test_empty_trace_is_falsy(self):
        assert not Trace()
        trace = Trace()
        trace.record(0, 1)
        assert trace

    def test_nbytes_smaller_than_object_trace(self):
        workload = load_benchmark("gzip", scale=SCALE)
        compact, _ = execute(
            workload.program, memory=workload.memory,
            max_instructions=workload.max_instructions, compact=True,
        )
        # 3 × 8 bytes per instruction; a DynamicInstruction alone is
        # ~56 bytes before the list's pointer.
        assert compact.nbytes == 24 * len(compact)


class TestSinglePassEquivalence:
    """One fused run == the old trace-then-profile double run."""

    @pytest.fixture(scope="class")
    def workload(self):
        return load_benchmark("twolf", scale=SCALE)

    @pytest.fixture(scope="class")
    def fused(self, workload):
        profiler = Profiler()
        collector = profiler.collector()
        trace, result = execute(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
            on_branch=collector.on_branch,
            compact=True,
        )
        return trace, collector.finish(result)

    @pytest.fixture(scope="class")
    def two_pass(self, workload):
        trace, _ = execute(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        )
        profile = Profiler().profile(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
        )
        return trace, profile

    def test_traces_identical(self, fused, two_pass):
        compact, _ = fused
        listed, _ = two_pass
        assert len(compact) == len(listed)
        assert list(trace_rows(compact)) == [
            (d.pc, d.next_pc,
             NO_ADDRESS if d.address is None else d.address)
            for d in listed
        ]

    def test_profiles_identical(self, fused, two_pass):
        _, one = fused
        _, two = two_pass
        assert one.total_instructions == two.total_instructions
        assert one.total_branches == two.total_branches
        assert one.total_mispredictions == two.total_mispredictions
        assert one.measured_acc_conf == two.measured_acc_conf

    def test_edge_profiles_identical(self, fused, two_pass):
        _, one = fused
        _, two = two_pass
        for pc in two.edge_profile.executed_branch_pcs():
            assert one.edge_profile.exec_count(pc) \
                == two.edge_profile.exec_count(pc)
            assert one.edge_prob(pc, True) == two.edge_prob(pc, True)

    def test_simulator_agrees_on_both_encodings(self, workload, fused,
                                                two_pass):
        compact, _ = fused
        listed, _ = two_pass
        stats_compact = TimingSimulator(workload.program).run(compact)
        stats_listed = TimingSimulator(workload.program).run(listed)
        assert stats_compact.cycles == stats_listed.cycles
        assert stats_compact.retired_instructions \
            == stats_listed.retired_instructions
        assert stats_compact.pipeline_flushes \
            == stats_listed.pipeline_flushes
