"""Tests for the experiment harnesses (tiny scales, few benchmarks)."""

import pytest

from repro.experiments import (
    clear_cache,
    geometric_mean_speedup,
    get_artifacts,
    mean_speedup,
    named_config,
    run_baseline,
    run_selection,
)
from repro.experiments import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
)

SCALE = 0.15
BENCH = ["gzip", "twolf"]


@pytest.fixture(scope="module", autouse=True)
def warm_cache():
    # keep memory bounded across this module
    yield
    clear_cache()


class TestRunner:
    def test_artifacts_cached(self):
        a = get_artifacts("gzip", scale=SCALE)
        b = get_artifacts("gzip", scale=SCALE)
        assert a is b
        assert a.trace and a.profile.total_instructions > 0

    def test_baseline_cached(self):
        a = run_baseline("gzip", scale=SCALE)
        b = run_baseline("gzip", scale=SCALE)
        assert a is b

    def test_run_selection_returns_stats_and_annotation(self):
        stats, annotation = run_selection(
            "gzip", named_config("exact+freq"), scale=SCALE
        )
        assert stats.retired_instructions > 0
        assert len(annotation) >= 0

    def test_profile_input_set_can_differ(self):
        same, _ = run_selection(
            "gzip", named_config("all-best-heur"), scale=SCALE
        )
        diff, _ = run_selection(
            "gzip",
            named_config("all-best-heur"),
            scale=SCALE,
            profile_input_set="train",
        )
        # same run input → identical baseline trace length
        assert same.retired_instructions == diff.retired_instructions

    def test_means(self):
        assert mean_speedup([0.1, 0.3]) == pytest.approx(0.2)
        assert geometric_mean_speedup([0.1, 0.1]) == pytest.approx(0.1)
        assert mean_speedup([]) == 0.0

    def test_named_config_errors(self):
        with pytest.raises(KeyError):
            named_config("alg-psychic")


class TestTables:
    def test_table1_rows(self):
        result = table1.run()
        text = table1.format_result(result)
        assert "perceptron" in text
        assert "512-entry reorder buffer" in text

    def test_table2_columns(self):
        result = table2.run(scale=SCALE, benchmarks=BENCH)
        assert len(result["rows"]) == 2
        row = result["rows"][0]
        assert set(row) >= {
            "benchmark",
            "base_ipc",
            "mpki",
            "insts",
            "static_branches",
            "diverge_branches",
            "avg_cfm",
        }
        text = table2.format_result(result)
        assert "gzip" in text


class TestFigures:
    def test_fig5_speedups_and_means(self):
        result = fig5.run(scale=SCALE, benchmarks=BENCH, side="left")
        assert result["series"][0] == "exact"
        assert "all-best-heur" in result["series"]
        for series in result["series"]:
            assert set(result["speedups"][series]) == set(BENCH)
        assert "MEAN" in fig5.format_result(result)

    def test_fig5_cost_side(self):
        result = fig5.run(scale=SCALE, benchmarks=["twolf"], side="right")
        assert "cost-edge" in result["series"]

    def test_fig6_flushes_decrease(self):
        result = fig6.run(scale=SCALE, benchmarks=BENCH)
        means = result["means"]
        assert means["all-best-heur"] <= means["baseline"]

    def test_fig7_grid(self):
        result = fig7.run(
            scale=SCALE,
            benchmarks=["twolf"],
            max_instr_values=(10, 50),
            min_merge_prob_values=(0.01,),
        )
        assert set(result["grid"]) == {(10, 0.01), (50, 0.01)}
        assert "Best point" in fig7.format_result(result)

    def test_fig8_all_algorithms_present(self):
        result = fig8.run(scale=SCALE, benchmarks=["twolf"])
        assert set(result["series"]) == {
            "every-br",
            "random-50",
            "high-bp-5",
            "immediate",
            "if-else",
            "all-best-heur",
        }

    def test_fig9_same_vs_diff(self):
        result = fig9.run(scale=SCALE, benchmarks=["twolf"])
        assert "all-best-heur-same" in result["means"]
        assert "all-best-heur-diff" in result["means"]

    def test_fig10_fractions_sum_to_one(self):
        result = fig10.run(scale=SCALE, benchmarks=BENCH)
        for row in result["rows"]:
            total = row["only_run"] + row["only_train"] + row["either"]
            assert total == pytest.approx(1.0)
