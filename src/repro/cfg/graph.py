"""Per-function control-flow graphs.

The CFG is intraprocedural: ``CALL`` falls through to the next
instruction (the callee's effect on control flow is invisible at this
level, matching how the paper's binary-analysis toolset and compiler
algorithms treat hammocks; hammocks that merge *through* returns are
handled separately by the return-CFM mechanism, §3.5).  ``RET`` and
``HALT`` terminate blocks with no successors.
"""

from repro.errors import CFGError
from repro.isa.instructions import Opcode


class BasicBlock:
    """A maximal straight-line instruction range ``[start, end)``.

    ``successors``/``predecessors`` are lists of block ids.  For a block
    ending in a conditional branch, ``taken_successor`` and
    ``fallthrough_successor`` distinguish the two out-edges.
    """

    __slots__ = (
        "block_id",
        "start",
        "end",
        "successors",
        "predecessors",
        "taken_successor",
        "fallthrough_successor",
    )

    def __init__(self, block_id, start, end):
        self.block_id = block_id
        self.start = start
        self.end = end
        self.successors = []
        self.predecessors = []
        self.taken_successor = None
        self.fallthrough_successor = None

    @property
    def size(self):
        """Number of instructions in the block."""
        return self.end - self.start

    @property
    def last_pc(self):
        return self.end - 1

    def __repr__(self):
        return f"BasicBlock(id={self.block_id}, [{self.start}, {self.end}))"


class ControlFlowGraph:
    """The CFG of one function."""

    def __init__(self, program, function, blocks, block_of_pc):
        self.program = program
        self.function = function
        self.blocks = blocks
        self._block_of_pc = block_of_pc

    @property
    def entry_block(self):
        return self.blocks[0]

    def block_containing(self, pc):
        """The basic block holding instruction index ``pc``."""
        if not self.function.contains(pc):
            raise CFGError(
                f"pc {pc} is outside function {self.function.name!r}"
            )
        return self._block_of_pc[pc - self.function.start]

    def terminator(self, block):
        """The last instruction of ``block``."""
        return self.program[block.last_pc]

    def conditional_branch_blocks(self):
        """Blocks ending in a conditional branch, in program order."""
        return [
            block
            for block in self.blocks
            if self.program[block.last_pc].is_conditional_branch
        ]

    def exit_blocks(self):
        """Blocks with no intraprocedural successors (RET/HALT/end)."""
        return [block for block in self.blocks if not block.successors]

    def edge_iter(self):
        """Yield ``(src_block, dst_block)`` for every CFG edge."""
        for block in self.blocks:
            for succ_id in block.successors:
                yield block, self.blocks[succ_id]

    def __repr__(self):
        return (
            f"ControlFlowGraph({self.function.name!r}, "
            f"{len(self.blocks)} blocks)"
        )


def _find_leaders(program, function):
    """Instruction indices that start a basic block, sorted."""
    leaders = {function.start}
    for pc in range(function.start, function.end):
        inst = program[pc]
        if inst.op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.JMP):
            leaders.add(inst.target)
            if pc + 1 < function.end:
                leaders.add(pc + 1)
        elif inst.op in (Opcode.RET, Opcode.HALT):
            if pc + 1 < function.end:
                leaders.add(pc + 1)
    return sorted(leaders)


def build_cfg(program, function):
    """Construct the :class:`ControlFlowGraph` of ``function``."""
    leaders = _find_leaders(program, function)
    blocks = []
    block_of_pc = [None] * function.size
    boundaries = leaders + [function.end]
    for block_id, (start, end) in enumerate(
        zip(boundaries[:-1], boundaries[1:])
    ):
        block = BasicBlock(block_id, start, end)
        blocks.append(block)
        for pc in range(start, end):
            block_of_pc[pc - function.start] = block

    leader_to_block = {block.start: block for block in blocks}

    def link(src, dst, kind):
        src.successors.append(dst.block_id)
        dst.predecessors.append(src.block_id)
        if kind == "taken":
            src.taken_successor = dst.block_id
        elif kind == "fallthrough":
            src.fallthrough_successor = dst.block_id

    for block in blocks:
        inst = program[block.last_pc]
        op = inst.op
        if op in (Opcode.BEQZ, Opcode.BNEZ):
            target_block = leader_to_block.get(inst.target)
            if target_block is None:
                raise CFGError(
                    f"branch @{block.last_pc} targets non-leader {inst.target}"
                )
            link(block, target_block, "taken")
            if block.end < function.end:
                link(block, leader_to_block[block.end], "fallthrough")
        elif op is Opcode.JMP:
            link(block, leader_to_block[inst.target], "taken")
        elif op in (Opcode.RET, Opcode.HALT):
            pass  # function exit: no intraprocedural successors
        else:
            if block.end < function.end:
                link(block, leader_to_block[block.end], "fallthrough")
            # else: the function falls off its end; the emulator will
            # fault if this is ever executed, so we leave no successor.

    return ControlFlowGraph(program, function, blocks, block_of_pc)


def build_cfgs(program):
    """Build the CFG of every function, keyed by function name."""
    return {
        function.name: build_cfg(program, function)
        for function in program.functions
    }
