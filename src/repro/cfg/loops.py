"""Natural loop detection.

Diverge *loop* branches (paper §5) are conditional loop-exit branches:
branches whose taken edge is a back edge to the loop header (the common
bottom-of-loop shape) or whose block is otherwise a loop exit.  The CFM
point of a diverge loop branch is the loop's exit target — dynamic
predication of the loop predicates the extra iterations and reconverges
at the code after the loop.
"""

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.cfg.dominators import compute_dominators


@dataclass
class Loop:
    """One natural loop.

    ``header`` is the header block id; ``body`` the set of member block
    ids (header included); ``exit_branches`` lists the diverge-loop
    candidate branches: ``(branch_pc, exit_pc)`` for every conditional
    branch in the loop with exactly one successor outside it.  The
    latch's own exit branch (the do-while shape the paper's Figure 3d
    shows) is also exposed as ``back_edge_branch_pc``/``exit_pc``.
    """

    header: int
    body: FrozenSet[int]
    exit_branches: tuple = ()
    back_edge_branch_pc: Optional[int] = None
    exit_pc: Optional[int] = None
    static_size: int = 0

    def contains_block(self, block_id):
        return block_id in self.body


def find_natural_loops(cfg):
    """All natural loops of ``cfg``, one per back edge.

    Multiple back edges to the same header yield separate ``Loop``
    records (the selection algorithms treat each candidate branch
    independently, so merging them is unnecessary).
    """
    doms = compute_dominators(cfg)
    loops = []
    for block in cfg.blocks:
        for succ_id in block.successors:
            if doms.dominates(succ_id, block.block_id):
                loops.append(_natural_loop(cfg, succ_id, block.block_id))
    return loops


def _natural_loop(cfg, header_id, latch_id):
    """The natural loop of back edge ``latch -> header``."""
    body = {header_id, latch_id}
    worklist = [latch_id]
    while worklist:
        node = worklist.pop()
        if node == header_id:
            continue
        for pred_id in cfg.blocks[node].predecessors:
            if pred_id not in body:
                body.add(pred_id)
                worklist.append(pred_id)

    exit_branches = []
    for block_id in sorted(body):
        block = cfg.blocks[block_id]
        terminator = cfg.program[block.last_pc]
        if not terminator.is_conditional_branch:
            continue
        taken = block.taken_successor
        fallthrough = block.fallthrough_successor
        taken_in = taken is not None and taken in body
        fall_in = fallthrough is not None and fallthrough in body
        if taken_in and not fall_in and fallthrough is not None:
            exit_branches.append(
                (block.last_pc, cfg.blocks[fallthrough].start)
            )
        elif fall_in and not taken_in and taken is not None:
            exit_branches.append((block.last_pc, cfg.blocks[taken].start))

    latch = cfg.blocks[latch_id]
    branch_pc = None
    exit_pc = None
    if cfg.program[latch.last_pc].is_conditional_branch:
        for candidate_pc, candidate_exit in exit_branches:
            if candidate_pc == latch.last_pc:
                branch_pc, exit_pc = candidate_pc, candidate_exit
                break

    static_size = sum(cfg.blocks[b].size for b in body)
    return Loop(
        header=header_id,
        body=frozenset(body),
        exit_branches=tuple(exit_branches),
        back_edge_branch_pc=branch_pc,
        exit_pc=exit_pc,
        static_size=static_size,
    )
