"""Bounded, profile-pruned path enumeration (paper §3.3, Alg-freq).

From a conditional branch, all control-flow paths on each direction are
enumerated with a working-list algorithm, following only branch
directions whose profiled edge probability is at least
``min_exec_prob`` (paper threshold 0.001), and stopping at the branch's
IPOSDOM, at ``max_instr`` instructions, or at ``max_cbr`` conditional
branches — exactly the bounds of Algorithm 2.

Beyond the paper's bounds, a global ``max_paths`` cap (default 4096)
guards against pathological exponential CFGs; when it triggers, the
dropped probability mass makes merge probabilities *under*-estimates,
which only makes selection more conservative.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

#: Paths whose cumulative probability falls below this are abandoned;
#: they contribute negligibly to merge probabilities and expected sizes.
MIN_PATH_PROB = 1e-7


@dataclass(frozen=True)
class Path:
    """One enumerated path.

    ``block_ids`` are the blocks *after* the branch, in order, up to but
    excluding the stop block.  ``prob`` is the product of profiled edge
    probabilities along the path (conditional on the initial branch
    direction).  ``reason`` is one of ``"stop"`` (reached a stop pc),
    ``"return"`` (reached a RET block), ``"end"`` (HALT / dead end),
    ``"limit"`` (``max_instr``/``max_cbr`` exceeded) or ``"pruned"``
    (every continuation fell below ``min_exec_prob``).
    ``stop_pc`` is set for ``"stop"`` paths.
    """

    block_ids: Tuple[int, ...]
    prob: float
    insts: int
    cbrs: int
    reason: str
    stop_pc: Optional[int] = None


class PathSet:
    """Enumerated paths for both directions of one branch."""

    def __init__(self, cfg, branch_pc, taken_paths, nottaken_paths):
        self.cfg = cfg
        self.branch_pc = branch_pc
        self.taken_paths = taken_paths
        self.nottaken_paths = nottaken_paths

    def paths(self, direction):
        """Paths for ``direction`` ∈ {"taken", "nottaken"}."""
        if direction == "taken":
            return self.taken_paths
        if direction == "nottaken":
            return self.nottaken_paths
        raise ValueError(f"bad direction {direction!r}")

    def reach_prob(self, direction):
        """Map block-entry pc -> probability of being reached.

        The probability that execution, having gone in ``direction`` at
        the branch, reaches the given block entry within the enumeration
        bounds (paper's pT/pNT, §3.3 lines 5-6).
        """
        blocks = self.cfg.blocks
        reached = {}
        for path in self.paths(direction):
            seen = set()
            for block_id in path.block_ids:
                pc = blocks[block_id].start
                if pc not in seen:
                    seen.add(pc)
                    reached[pc] = reached.get(pc, 0.0) + path.prob
            if path.reason == "stop" and path.stop_pc is not None:
                if path.stop_pc not in seen:
                    reached[path.stop_pc] = (
                        reached.get(path.stop_pc, 0.0) + path.prob
                    )
        return reached

    def return_prob(self, direction):
        """Probability that ``direction`` reaches a RET before the bounds."""
        return sum(
            p.prob for p in self.paths(direction) if p.reason == "return"
        )

    def insts_until(self, path, target_pc):
        """Instructions along ``path`` before ``target_pc``'s block.

        Returns ``None`` if the path never reaches ``target_pc``.
        """
        blocks = self.cfg.blocks
        count = 0
        for block_id in path.block_ids:
            block = blocks[block_id]
            if block.start == target_pc:
                return count
            count += block.size
        if path.reason == "stop" and path.stop_pc == target_pc:
            return count
        return None

    def longest_insts_to(self, direction, target_pc):
        """Max instructions before reaching ``target_pc`` (method 2, §4.1.1).

        Considers every enumerated path on ``direction``; paths that
        never reach the target contribute their full length (they are
        fetched in dpred-mode until the bounds).  Returns 0 if there are
        no paths.
        """
        longest = 0
        for path in self.paths(direction):
            upto = self.insts_until(path, target_pc)
            longest = max(longest, path.insts if upto is None else upto)
        return longest

    def expected_insts_to(self, direction, target_pc):
        """Edge-profile expected instructions fetched (method 3, §4.1.1).

        The expectation over enumerated paths of the instructions
        fetched on ``direction`` before merging at ``target_pc`` (paths
        that miss the target contribute their full enumerated length).
        """
        total = 0.0
        mass = 0.0
        for path in self.paths(direction):
            upto = self.insts_until(path, target_pc)
            length = path.insts if upto is None else upto
            total += path.prob * length
            mass += path.prob
        if mass == 0.0:
            return 0.0
        return total / mass

    def first_reach_prob(self, direction, candidate_pcs):
        """Probability each candidate is the *first* one reached.

        Implements the chain-of-CFM-points correction of §3.3.1: when
        one candidate lies on paths to another, merging happens at the
        first one encountered, so the merge probability of the second
        must exclude those paths.
        """
        blocks = self.cfg.blocks
        candidates = set(candidate_pcs)
        first = {pc: 0.0 for pc in candidate_pcs}
        for path in self.paths(direction):
            hit = None
            for block_id in path.block_ids:
                pc = blocks[block_id].start
                if pc in candidates:
                    hit = pc
                    break
            if hit is None and path.reason == "stop" \
                    and path.stop_pc in candidates:
                hit = path.stop_pc
            if hit is not None:
                first[hit] += path.prob
        return first


def enumerate_paths(
    cfg,
    branch_pc,
    edge_prob,
    max_instr,
    max_cbr,
    min_exec_prob=0.001,
    stop_pcs=frozenset(),
    max_paths=4096,
):
    """Enumerate bounded paths on both directions of ``branch_pc``.

    Parameters
    ----------
    edge_prob:
        Callable ``(branch_pc, taken: bool) -> float`` giving the
        profiled probability of each direction of any conditional
        branch encountered (including the root branch's successors'
        internal branches).
    stop_pcs:
        Block-entry pcs at which enumeration stops (typically the
        IPOSDOM of the branch, when it exists).
    """
    branch_block = cfg.block_containing(branch_pc)
    results = {}
    for direction, succ_id in (
        ("taken", branch_block.taken_successor),
        ("nottaken", branch_block.fallthrough_successor),
    ):
        if succ_id is None:
            results[direction] = []
            continue
        results[direction] = _explore(
            cfg,
            succ_id,
            edge_prob,
            max_instr,
            max_cbr,
            min_exec_prob,
            stop_pcs,
            max_paths,
        )
    return PathSet(cfg, branch_pc, results["taken"], results["nottaken"])


def _explore(
    cfg,
    start_block_id,
    edge_prob,
    max_instr,
    max_cbr,
    min_exec_prob,
    stop_pcs,
    max_paths,
):
    blocks = cfg.blocks
    program = cfg.program
    finished = []
    # Work items: (block_id, prefix_blocks, prob, insts, cbrs).
    worklist = [(start_block_id, (), 1.0, 0, 0)]
    while worklist and len(finished) < max_paths:
        block_id, prefix, prob, insts, cbrs = worklist.pop()
        block = blocks[block_id]
        if block.start in stop_pcs:
            finished.append(
                Path(prefix, prob, insts, cbrs, "stop", stop_pc=block.start)
            )
            continue
        prefix = prefix + (block_id,)
        insts += block.size
        if insts > max_instr:
            finished.append(Path(prefix, prob, insts, cbrs, "limit"))
            continue
        terminator = program[block.last_pc]
        if terminator.is_return or terminator.is_halt:
            reason = "return" if terminator.is_return else "end"
            finished.append(Path(prefix, prob, insts, cbrs, reason))
            continue
        if terminator.is_conditional_branch:
            cbrs += 1
            if cbrs > max_cbr:
                finished.append(Path(prefix, prob, insts, cbrs, "limit"))
                continue
            pushed = False
            for succ_id, taken in (
                (block.taken_successor, True),
                (block.fallthrough_successor, False),
            ):
                if succ_id is None:
                    continue
                p_edge = edge_prob(block.last_pc, taken)
                if p_edge < min_exec_prob:
                    continue
                child_prob = prob * p_edge
                if child_prob < MIN_PATH_PROB:
                    continue
                worklist.append((succ_id, prefix, child_prob, insts, cbrs))
                pushed = True
            if not pushed:
                finished.append(Path(prefix, prob, insts, cbrs, "pruned"))
        else:
            # JMP or fallthrough: single successor with probability 1.
            if block.successors:
                worklist.append(
                    (block.successors[0], prefix, prob, insts, cbrs)
                )
            else:
                finished.append(Path(prefix, prob, insts, cbrs, "end"))
    return finished
