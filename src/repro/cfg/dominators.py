"""Dominator and post-dominator analysis.

Implements Cooper, Harvey & Kennedy's "A Simple, Fast Dominance
Algorithm" — the exact algorithm the paper cites for finding the
immediate post-dominator (IPOSDOM) of a branch, which is the unique
exact CFM point of simple/nested hammocks (paper §3.1–3.2).

Post-dominators are computed as dominators of the reverse CFG with a
virtual exit node that collects every block without successors.  Blocks
that cannot reach any exit (e.g. provably infinite loops) have no
post-dominator and report ``None``.
"""


class DominatorInfo:
    """Immediate-(post)dominator tree over basic block ids.

    ``idom[b]`` is the immediate (post)dominator block id of ``b``, or
    ``None`` for the root / unreachable nodes.
    """

    def __init__(self, idom, root):
        self.idom = idom
        self.root = root

    def dominates(self, a, b):
        """True if ``a`` (post)dominates ``b`` (reflexively)."""
        node = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def immediate(self, block_id):
        """The immediate (post)dominator of ``block_id`` or ``None``."""
        return self.idom.get(block_id)


def compute_dominators(cfg):
    """Dominator tree of ``cfg`` (root = entry block)."""
    root = cfg.entry_block.block_id
    idom = _compute_idoms_generic(
        nodes=list(range(len(cfg.blocks))),
        successors=lambda b: cfg.blocks[b].successors,
        predecessors=lambda b: cfg.blocks[b].predecessors,
        root=root,
    )
    return DominatorInfo(idom, root)


#: Block id used for the virtual exit in post-dominator analysis.
VIRTUAL_EXIT = -1


def compute_postdominators(cfg):
    """Post-dominator tree of ``cfg`` over a virtual exit node.

    The returned :class:`DominatorInfo` maps real block ids; a block
    whose only post-dominator is the virtual exit reports ``None`` from
    :meth:`DominatorInfo.immediate` (it has no real IPOSDOM).
    """
    exits = [block.block_id for block in cfg.exit_blocks()]
    num_nodes = len(cfg.blocks)

    def successors(node):
        if node == VIRTUAL_EXIT:
            return []
        succs = cfg.blocks[node].successors
        if not succs:
            return [VIRTUAL_EXIT]
        return succs

    def predecessors(node):
        if node == VIRTUAL_EXIT:
            return exits
        return cfg.blocks[node].predecessors

    # Reverse the graph: post-dominance == dominance on reversed edges.
    idom = _compute_idoms_generic(
        nodes=[VIRTUAL_EXIT] + list(range(num_nodes)),
        successors=predecessors,  # reversed
        predecessors=successors,  # reversed
        root=VIRTUAL_EXIT,
    )
    # Replace the virtual exit with None.
    cleaned = {}
    for node, parent in idom.items():
        if node == VIRTUAL_EXIT:
            continue
        cleaned[node] = None if parent == VIRTUAL_EXIT else parent
    return DominatorInfo(cleaned, VIRTUAL_EXIT)


def _compute_idoms_generic(nodes, successors, predecessors, root):
    """CHK dominance over an arbitrary node-id space (allows -1 ids)."""
    visited = {root}
    order = []
    stack = [(root, iter(successors(root)))]
    while stack:
        node, children = stack[-1]
        advanced = False
        for child in children:
            if child not in visited:
                visited.add(child)
                stack.append((child, iter(successors(child))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    rpo_number = {node: i for i, node in enumerate(order)}
    idom = {root: root}

    def intersect(a, b):
        while a != b:
            while rpo_number[a] > rpo_number[b]:
                a = idom[a]
            while rpo_number[b] > rpo_number[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            new_idom = None
            for pred in predecessors(node):
                if pred in idom and pred in rpo_number:
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(new_idom, pred)
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True

    result = {node: parent for node, parent in idom.items() if node != root}
    result[root] = None
    return result


def immediate_postdominator_pc(cfg, postdoms, branch_pc):
    """The pc of the IPOSDOM block entry of the branch at ``branch_pc``.

    This is the paper's exact CFM point: the first instruction of the
    immediate post-dominator block of the block ending in the branch.
    Returns ``None`` when the branch has no real post-dominator.
    """
    block = cfg.block_containing(branch_pc)
    parent = postdoms.immediate(block.block_id)
    if parent is None:
        return None
    return cfg.blocks[parent].start
