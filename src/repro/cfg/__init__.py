"""Control-flow analysis.

Provides per-function CFGs over :class:`repro.isa.Program`, the
dominator/post-dominator analysis the paper uses to find exact CFM
points (the immediate post-dominator, via Cooper-Harvey-Kennedy), natural
loop detection for diverge loop branches, and the bounded working-list
path enumeration at the heart of Alg-freq (paper §3.3).
"""

from repro.cfg.graph import BasicBlock, ControlFlowGraph, build_cfg, build_cfgs
from repro.cfg.dominators import DominatorInfo, compute_dominators, compute_postdominators
from repro.cfg.loops import Loop, find_natural_loops
from repro.cfg.paths import Path, PathSet, enumerate_paths

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "build_cfgs",
    "DominatorInfo",
    "compute_dominators",
    "compute_postdominators",
    "Loop",
    "find_natural_loops",
    "Path",
    "PathSet",
    "enumerate_paths",
]
