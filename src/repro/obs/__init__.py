"""Observability: metrics, structured tracing, phase profiling, manifests.

The package has five pieces:

- :mod:`repro.obs.metrics` — always-on counters/gauges/histograms in a
  :class:`MetricsRegistry`;
- :mod:`repro.obs.events` + :mod:`repro.obs.tracer` — typed trace
  events written as JSONL through a pluggable sink (default: the
  no-op :data:`NULL_TRACER`, one attribute check in the hot loop);
- :mod:`repro.obs.timers` — phase timers for the harness pipeline
  (trace → profile → select → simulate) with events/sec throughput;
- :mod:`repro.obs.manifest` — the per-run JSON manifest;
- :mod:`repro.obs.trace_report` — offline trace summarization
  (``python -m repro trace-report``);
- :mod:`repro.obs.ledger` + :mod:`repro.obs.explain` — the decision
  ledger joining compile-time selection verdicts with runtime dpred
  outcomes (``python -m repro explain``).

:mod:`repro.obs.context` holds the active tracer/registry/profile so
the CLI can enable telemetry without threading arguments through every
experiment signature.  See ``docs/observability.md``.
"""

from repro.obs import events
from repro.obs.context import (
    Telemetry,
    active,
    get_metrics,
    get_phases,
    get_tracer,
    telemetry,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_revision,
    read_manifest,
    write_manifest,
)
from repro.obs.explain import (
    build_explain,
    cell_ledger_summary,
    format_explain,
    join_ledgers,
    validate_explain,
)
from repro.obs.ledger import (
    RUNTIME_COUNTERS,
    RuntimeLedger,
    SelectionDecision,
    SelectionLedger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_openmetrics,
)
from repro.obs.spans import PATH_SEP, SpanHandle, SpanTree, span
from repro.obs.timers import PhaseProfile, phase
from repro.obs.trace_report import format_trace_report, summarize_trace
from repro.obs.tracectx import (
    TRACE_DIR_ENV,
    TRACE_HEADER,
    TRACEPARENT_ENV,
    SpanSpool,
    TraceContext,
    activate,
    current,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Tracer,
    iter_records,
    jsonl_tracer,
    read_events,
)

__all__ = [
    "events",
    "Telemetry",
    "active",
    "get_metrics",
    "get_phases",
    "get_tracer",
    "telemetry",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "git_revision",
    "read_manifest",
    "write_manifest",
    "build_explain",
    "cell_ledger_summary",
    "format_explain",
    "join_ledgers",
    "validate_explain",
    "RUNTIME_COUNTERS",
    "RuntimeLedger",
    "SelectionDecision",
    "SelectionLedger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_openmetrics",
    "PhaseProfile",
    "phase",
    "PATH_SEP",
    "SpanHandle",
    "SpanTree",
    "span",
    "format_trace_report",
    "summarize_trace",
    "TRACE_DIR_ENV",
    "TRACE_HEADER",
    "TRACEPARENT_ENV",
    "SpanSpool",
    "TraceContext",
    "activate",
    "current",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "NULL_TRACER",
    "JsonlSink",
    "ListSink",
    "NullTracer",
    "Tracer",
    "iter_records",
    "jsonl_tracer",
    "read_events",
]
