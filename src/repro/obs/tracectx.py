"""Distributed trace context: one identity across every process.

A *trace* ties together everything one entry point caused — a served
HTTP request fanning into a warm-state computation, or a ``campaign
run`` forking cell workers across shards.  The identity travels as a
W3C-traceparent-style string::

    00-<32 hex trace_id>-<16 hex span_id>-01

carried on the ``X-Repro-Trace-Id`` HTTP header between serve clients
and the daemon, and injected into child processes either as explicit
arguments (campaign backends, the exec process pool) or via the
``REPRO_TRACEPARENT`` / ``REPRO_TRACE_DIR`` environment variables.

Each participating process appends its finished spans to a
*per-process spool* — ``spans-<pid>.jsonl`` inside the shared trace
directory — so concurrent writers never interleave within a line and a
crash can only tear the final line of one file (the same torn-tail
contract as the campaign journal).  ``python -m repro trace show
<trace_id>`` (:mod:`repro.obs.traceview`) merges the spools back into
one cross-process timeline.

The active context is **thread-local**: the serve daemon installs one
per request thread, CLI entry points install one on the main thread,
and forked workers rebuild one from the propagated traceparent.  When
no context is active (the default), :func:`current` returns ``None``
and the tracing hooks in :func:`~repro.obs.spans.span` /
:func:`~repro.obs.timers.phase` cost a single attribute check —
mirroring the ``NULL_TRACER`` hot-loop contract.
"""

import json
import os
import threading
from contextlib import contextmanager

#: HTTP header carrying the traceparent value on /v1/* requests and
#: echoed back on every traced response.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Environment variables used for cross-process propagation when
#: explicit argument injection is not available.
TRACEPARENT_ENV = "REPRO_TRACEPARENT"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Spool file name pattern inside a trace directory.
SPOOL_PREFIX = "spans-"
SPOOL_SUFFIX = ".jsonl"

_TRACEPARENT_VERSION = "00"
_TRACEPARENT_FLAGS = "01"

_LOCAL = threading.local()


def new_trace_id():
    """A fresh 128-bit trace id as 32 lowercase hex characters."""
    return os.urandom(16).hex()


def new_span_id():
    """A fresh 64-bit span id as 16 lowercase hex characters."""
    return os.urandom(8).hex()


def format_traceparent(trace_id, span_id):
    """``00-<trace_id>-<span_id>-01`` (W3C traceparent shape)."""
    return (
        f"{_TRACEPARENT_VERSION}-{trace_id}-{span_id}-{_TRACEPARENT_FLAGS}"
    )


def parse_traceparent(text):
    """``(trace_id, span_id)`` from a traceparent string.

    Raises :class:`ValueError` on anything malformed — wrong field
    count, wrong widths, or non-hex digits.  The version and flags
    fields are accepted but otherwise ignored (forward compatibility,
    like the W3C spec requires of receivers).
    """
    parts = str(text).strip().split("-")
    if len(parts) != 4:
        raise ValueError(f"malformed traceparent {text!r}")
    _version, trace_id, span_id, _flags = parts
    if len(trace_id) != 32 or len(span_id) != 16:
        raise ValueError(f"malformed traceparent {text!r}")
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        raise ValueError(f"malformed traceparent {text!r}") from None
    # An all-zero parent span id means "join the trace at the root":
    # the sender had a trace identity but no active span (e.g. an
    # orchestrator that exported REPRO_TRACEPARENT before any work).
    # Mapping it to None keeps the joined spans roots instead of
    # orphans pointing at a span nobody ever wrote.
    if span_id == "0" * 16:
        return trace_id.lower(), None
    return trace_id.lower(), span_id.lower()


class SpanSpool:
    """Append-only per-process span sink inside a trace directory.

    The file handle is opened lazily under ``spans-<pid>.jsonl`` and
    reopened transparently after a ``fork()`` (the stored pid no longer
    matches), so a context created in a campaign scheduler keeps
    working inside its forked cell workers without any explicit
    re-initialisation.  Writes are line-atomic under a lock and flushed
    per record, matching the journal's torn-tail contract.
    """

    def __init__(self, directory):
        self.directory = str(directory)
        self._lock = threading.Lock()
        self._handle = None
        self._pid = None

    @property
    def path(self):
        """The spool path this process would write to."""
        return os.path.join(
            self.directory, f"{SPOOL_PREFIX}{os.getpid()}{SPOOL_SUFFIX}"
        )

    def write(self, record):
        """Append one span record as a JSON line (thread-safe)."""
        with self._lock:
            pid = os.getpid()
            if self._handle is None or self._pid != pid:
                if self._handle is not None:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                os.makedirs(self.directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
                self._pid = pid
            self._handle.write(json.dumps(record, sort_keys=False))
            self._handle.write("\n")
            self._handle.flush()

    def close(self):
        with self._lock:
            if self._handle is not None and self._pid == os.getpid():
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None
            self._pid = None


class TraceContext:
    """One process's view of a distributed trace.

    Holds the shared ``trace_id``, the *remote parent* span id (the
    caller's active span at the propagation point, or ``None`` at the
    trace root), a process-local stack of open span ids maintained by
    :func:`~repro.obs.spans.span`, and the spool finished spans are
    appended to.  ``service`` labels which process/role produced each
    span in the merged timeline (``serve``, ``campaign``,
    ``campaign-worker``, ``exec-worker``, ...).
    """

    __slots__ = ("trace_id", "parent_span_id", "service", "spool",
                 "attrs", "_stack")

    def __init__(self, trace_id, parent_span_id=None, service="repro",
                 spool=None, attrs=None):
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.service = service
        self.spool = spool
        self.attrs = dict(attrs) if attrs else {}
        self._stack = []

    # -- construction ------------------------------------------------

    @classmethod
    def root(cls, service="repro", trace_dir=None, attrs=None):
        """A brand-new trace rooted at this process (an entry point)."""
        spool = SpanSpool(trace_dir) if trace_dir else None
        return cls(new_trace_id(), None, service=service, spool=spool,
                   attrs=attrs)

    @classmethod
    def from_traceparent(cls, traceparent, service="repro",
                         trace_dir=None, attrs=None):
        """Join an existing trace as a child of the caller's span."""
        trace_id, parent_span_id = parse_traceparent(traceparent)
        spool = SpanSpool(trace_dir) if trace_dir else None
        return cls(trace_id, parent_span_id, service=service,
                   spool=spool, attrs=attrs)

    @classmethod
    def from_propagation(cls, payload, service="repro"):
        """Rebuild a child context from :meth:`propagation` output."""
        if not payload:
            return None
        return cls.from_traceparent(
            payload["traceparent"],
            service=service,
            trace_dir=payload.get("dir"),
            attrs=payload.get("attrs"),
        )

    @classmethod
    def from_env(cls, environ=None, service="repro"):
        """A child context from ``REPRO_TRACEPARENT`` (or ``None``)."""
        environ = os.environ if environ is None else environ
        traceparent = environ.get(TRACEPARENT_ENV)
        if not traceparent:
            return None
        return cls.from_traceparent(
            traceparent, service=service,
            trace_dir=environ.get(TRACE_DIR_ENV) or None,
        )

    # -- propagation -------------------------------------------------

    def current_span_id(self):
        """The innermost open span id, or the remote parent, or None."""
        if self._stack:
            return self._stack[-1]
        return self.parent_span_id

    def traceparent(self):
        """The traceparent naming the current span (for headers/env)."""
        return format_traceparent(
            self.trace_id, self.current_span_id() or "0" * 16
        )

    def propagation(self, attrs=None):
        """JSON-ready payload for argument injection into a child.

        The child rebuilds its context with
        :meth:`from_propagation`; ``attrs`` ride along and are stamped
        onto the child's spans (e.g. ``cell_id``/``attempt``).
        """
        payload = {"traceparent": self.traceparent()}
        if self.spool is not None:
            payload["dir"] = self.spool.directory
        if attrs:
            payload["attrs"] = dict(attrs)
        return payload

    def to_env(self, environ=None):
        """Set the propagation environment variables (for subprocesses)."""
        environ = os.environ if environ is None else environ
        environ[TRACEPARENT_ENV] = self.traceparent()
        if self.spool is not None:
            environ[TRACE_DIR_ENV] = self.spool.directory
        return environ

    # -- span lifecycle (driven by repro.obs.spans.span) -------------

    def enter_span(self):
        """Open a span: returns ``(span_id, parent_id)`` and pushes it."""
        parent = self.current_span_id()
        span_id = new_span_id()
        self._stack.append(span_id)
        return span_id, parent

    def exit_span(self, span_id, parent_id, name, path, start_ts,
                  seconds, self_seconds, events=0, attrs=None):
        """Close the innermost span and append its spool record."""
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        if self.spool is None:
            return None
        record = {
            "trace_id": self.trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "path": path,
            "service": self.service,
            "pid": os.getpid(),
            "start_ts": start_ts,
            "seconds": seconds,
            "self_seconds": self_seconds,
            "events": events,
        }
        merged = dict(self.attrs)
        if attrs:
            merged.update(attrs)
        if merged:
            record["attrs"] = merged
        self.spool.write(record)
        return record


# -- the active (thread-local) context --------------------------------


def current():
    """The thread's active :class:`TraceContext`, or ``None``."""
    return getattr(_LOCAL, "ctx", None)


@contextmanager
def activate(ctx):
    """Install ``ctx`` as this thread's active context for the block.

    ``activate(None)`` is a no-op block, so call sites can write
    ``with activate(maybe_ctx):`` without branching.  Contexts nest:
    the previous context is restored on exit.
    """
    if ctx is None:
        yield None
        return
    previous = getattr(_LOCAL, "ctx", None)
    _LOCAL.ctx = ctx
    try:
        yield ctx
    finally:
        _LOCAL.ctx = previous
