"""The metrics registry: counters, gauges, and fixed-bucket histograms.

All instruments are cheap enough to stay always-on: a counter
increment is one attribute add, a histogram observation one bisect
over a short tuple.  Per-*instruction* work still belongs outside the
registry — the simulator aggregates into :class:`SimStats` in its hot
loop and folds the totals in here once per run.

Instruments are owned by a :class:`MetricsRegistry` and looked up by
name; repeated lookups return the same instrument, so call sites never
need to coordinate creation.  :meth:`MetricsRegistry.as_dict` takes a
JSON-ready snapshot (the run manifest embeds one), and
:meth:`MetricsRegistry.write_json` dumps it to disk for
``python -m repro ... --metrics OUT.json``.
"""

import json
import threading
from bisect import bisect_left

from repro.ioutil import ensure_parent


class Counter:
    """A monotonically increasing value (int or float)."""

    __slots__ = ("name", "help", "value", "_lock")

    kind = "counter"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.RLock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self):
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "help", "value", "_lock")

    kind = "gauge"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.RLock()

    def set(self, value):
        with self._lock:
            self.value = value

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def dec(self, amount=1):
        with self._lock:
            self.value -= amount

    def as_dict(self):
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds.

    ``buckets`` is an increasing sequence of upper bounds; a value
    lands in the first bucket whose bound is >= the value (so a value
    exactly equal to a bound counts in that bound's bucket), and values
    above the last bound land in the overflow bucket.
    """

    __slots__ = ("name", "help", "bounds", "counts", "overflow",
                 "total", "sum", "_lock")

    kind = "histogram"

    def __init__(self, name, buckets, help=""):
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0
        self._lock = threading.RLock()

    def observe(self, value):
        index = bisect_left(self.bounds, value)
        with self._lock:
            if index == len(self.bounds):
                self.overflow += 1
            else:
                self.counts[index] += 1
            self.total += 1
            self.sum += value

    @property
    def mean(self):
        if self.total == 0:
            return 0.0
        return self.sum / self.total

    def quantile(self, q):
        """Upper-bound estimate of the q-th quantile (0 <= q <= 1).

        Returns the inclusive upper bound of the bucket containing the
        q-th observation, ``float('inf')`` when it falls in the
        overflow bucket, and ``None`` for an empty histogram.  Bucket
        resolution bounds the error — good enough for the latency
        summaries ``/healthz`` and the benchmarks report.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return None
        rank = q * self.total
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if cumulative >= rank:
                return bound
        return float("inf")

    def as_dict(self):
        return {
            "kind": self.kind,
            "buckets": {
                str(bound): count
                for bound, count in zip(self.bounds, self.counts)
            },
            "overflow": self.overflow,
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named instruments, created on first lookup.

    Asking for an existing name with a different instrument kind (or
    different histogram buckets) is a programming error and raises.

    Explicitly thread-safe: one reentrant registry lock guards
    instrument creation, snapshotting, merging, and rendering, and
    every instrument the registry creates *shares* that lock for its
    own mutations — so concurrent serve-daemon request threads can
    increment counters while another thread renders ``/metrics``
    without torn reads, by design rather than by GIL accident.
    """

    def __init__(self):
        self._instruments = {}
        self._lock = threading.RLock()

    def counter(self, name, help=""):
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name, help=""):
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name, buckets, help=""):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, buckets, help=help)
                instrument._lock = self._lock
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        if instrument.bounds != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already registered with different "
                f"buckets"
            )
        return instrument

    def _get_or_create(self, name, cls, help=""):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help=help)
                instrument._lock = self._lock
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def get(self, name):
        """The instrument registered under ``name`` or ``None``."""
        return self._instruments.get(name)

    def __contains__(self, name):
        return name in self._instruments

    def __len__(self):
        return len(self._instruments)

    def names(self):
        return sorted(self._instruments)

    def as_dict(self):
        """JSON-ready snapshot of every instrument, sorted by name."""
        with self._lock:
            return {
                name: self._instruments[name].as_dict()
                for name in sorted(self._instruments)
            }

    def merge_snapshot(self, snapshot):
        """Fold another registry's :meth:`as_dict` snapshot into this one.

        The parallel experiment engine runs jobs in worker processes,
        each under its own registry; the parent merges the returned
        snapshots so ``--metrics`` output and manifests reflect the
        whole run.  Counters add; gauges take the snapshot's value
        (last write wins, so merging in job order reproduces the serial
        result); histograms add bucket counts (creating the histogram
        here with the snapshot's bounds when absent).  Returns ``self``
        for chaining.
        """
        with self._lock:
            for name, entry in snapshot.items():
                kind = entry.get("kind")
                if kind == "counter":
                    self.counter(name).inc(entry.get("value", 0))
                elif kind == "gauge":
                    self.gauge(name).set(entry.get("value", 0))
                elif kind == "histogram":
                    buckets = entry.get("buckets", {})
                    bounds = tuple(
                        float(b) if "." in b else int(b) for b in buckets
                    )
                    histogram = self.histogram(name, bounds or (1,))
                    for index, count in enumerate(buckets.values()):
                        histogram.counts[index] += count
                    histogram.overflow += entry.get("overflow", 0)
                    histogram.total += entry.get("count", 0)
                    histogram.sum += entry.get("sum", 0.0)
                else:
                    raise ValueError(
                        f"snapshot entry {name!r} has unknown kind "
                        f"{kind!r}"
                    )
        return self

    def write_json(self, path):
        """Dump :meth:`as_dict` to ``path``; returns the path."""
        ensure_parent(path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def render_openmetrics(self):
        """The registry as OpenMetrics text exposition.

        Counter names follow the registry's ``*_total`` convention; the
        family name drops the suffix and the sample restores it, so a
        scraper and :func:`parse_openmetrics` both see the registry
        name.  Histogram buckets are cumulative with inclusive upper
        bounds rendered as ``le=`` labels, plus the ``+Inf`` bucket,
        ``_count`` and ``_sum`` samples.  Ends with ``# EOF``.
        """
        with self._lock:
            return self._render_openmetrics_locked()

    def _render_openmetrics_locked(self):
        lines = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            kind = instrument.kind
            if kind == "counter":
                family = (
                    name[: -len("_total")]
                    if name.endswith("_total") else name
                )
            else:
                family = name
            lines.append(f"# TYPE {family} {kind}")
            if instrument.help:
                lines.append(
                    f"# HELP {family} {escape_help(instrument.help)}"
                )
            if kind == "counter":
                lines.append(f"{family}_total {instrument.value}")
            elif kind == "gauge":
                lines.append(f"{family} {instrument.value}")
            else:
                cumulative = 0
                for bound, count in zip(instrument.bounds,
                                        instrument.counts):
                    cumulative += count
                    lines.append(
                        f'{family}_bucket{{le="{bound}"}} {cumulative}'
                    )
                lines.append(
                    f'{family}_bucket{{le="+Inf"}} {instrument.total}'
                )
                lines.append(f"{family}_count {instrument.total}")
                lines.append(f"{family}_sum {instrument.sum}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def write_openmetrics(self, path):
        """Dump :meth:`render_openmetrics` to ``path``; returns the path."""
        ensure_parent(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_openmetrics())
        return path


def escape_help(text):
    """Escape a HELP string for the text exposition format.

    Backslashes and newlines must be escaped (``\\\\`` and ``\\n``) so a
    multi-line help string cannot break the line-oriented format —
    the OpenMetrics escaping rules for label values and help text.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text):
    """Escape a label value (adds ``\\"`` for embedded quotes)."""
    return escape_help(text).replace('"', '\\"')


def _parse_number(text):
    value = float(text)
    return int(value) if value.is_integer() else value


def parse_openmetrics(text):
    """Parse :meth:`MetricsRegistry.render_openmetrics` output.

    Returns a snapshot dict shaped like
    :meth:`MetricsRegistry.as_dict`, suitable for
    :meth:`MetricsRegistry.merge_snapshot` — the round-trip test pins
    ``merge_snapshot(parse_openmetrics(render_openmetrics()))`` as an
    exact identity.
    """
    kinds = {}
    raw = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            kinds[family] = kind
            continue
        if line.startswith("#"):
            continue
        sample, _, value = line.rpartition(" ")
        name, label = sample, None
        if "{" in sample:
            name, _, label_part = sample.partition("{")
            label = label_part.rstrip("}").partition("=")[2].strip('"')
        raw.setdefault(name, []).append((label, value))

    snapshot = {}
    for family, kind in kinds.items():
        if kind == "counter":
            samples = raw.get(f"{family}_total", [])
            snapshot[f"{family}_total"] = {
                "kind": "counter",
                "value": _parse_number(samples[0][1]) if samples else 0,
            }
        elif kind == "gauge":
            samples = raw.get(family, [])
            snapshot[family] = {
                "kind": "gauge",
                "value": _parse_number(samples[0][1]) if samples else 0,
            }
        elif kind == "histogram":
            buckets = {}
            previous = 0
            total = 0
            for label, value in raw.get(f"{family}_bucket", []):
                cumulative = _parse_number(value)
                if label == "+Inf":
                    total = cumulative
                    continue
                buckets[label] = cumulative - previous
                previous = cumulative
            count_samples = raw.get(f"{family}_count", [])
            if count_samples:
                total = _parse_number(count_samples[0][1])
            sum_samples = raw.get(f"{family}_sum", [])
            total_sum = (
                float(sum_samples[0][1]) if sum_samples else 0.0
            )
            overflow = total - previous
            snapshot[family] = {
                "kind": "histogram",
                "buckets": buckets,
                "overflow": overflow,
                "count": total,
                "sum": total_sum,
                "mean": (total_sum / total) if total else 0.0,
            }
        else:
            raise ValueError(
                f"unknown OpenMetrics type {kind!r} for {family!r}"
            )
    return snapshot
