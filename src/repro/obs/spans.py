"""Hierarchical timed spans: where does the wall-clock go, by region?

A *span* is a nestable timed region.  Spans form a tree: entering
``span("simulate")`` inside ``span("fig6")`` records under the path
``("fig6", "simulate")``.  Each path accumulates

- ``seconds`` — cumulative wall-clock (the span and everything below);
- ``self_seconds`` — cumulative minus the children's cumulative, i.e.
  the time spent *in this region itself*;
- ``events`` — an optional throughput count (instructions, rows, ...);
- ``calls`` — how many times the path was entered.

The flat :class:`~repro.obs.timers.PhaseProfile` is a depth-1 view
over a :class:`SpanTree` — ``phase()`` keeps its exact old behaviour
while nested spans carry the finer structure.  Closing a span mirrors
``span_<dotted.path>_{seconds,calls}_total`` counters into the metrics
registry and emits a :class:`~repro.obs.events.SpanEnd` trace event
when tracing is on, so ``trace-report`` can rebuild the hotspot view
offline.  Snapshots (:meth:`SpanTree.as_dict`) merge across ``--jobs
N`` workers in plan order exactly like metrics snapshots do.

Usage::

    with span("simulate", events=len(trace)) as sp:
        with span("fetch"):
            ...
        sp.events = stats.retired_instructions
"""

import time
from contextlib import contextmanager

#: Separator used in snapshot keys ("simulate/fetch") and SpanEnd paths.
PATH_SEP = "/"


class SpanHandle:
    """Mutable box the ``with span(...)`` body fills in."""

    __slots__ = ("name", "events", "child_seconds")

    def __init__(self, name, events=0):
        self.name = name
        self.events = events
        self.child_seconds = 0.0


class SpanTree:
    """Accumulated wall-clock per span path (tuple of names from root)."""

    __slots__ = ("_entries", "_stack")

    def __init__(self):
        self._entries = {}
        self._stack = []

    def record(self, path, seconds, self_seconds=None, events=0, calls=1):
        """Fold one completed span (or a merged aggregate) into ``path``.

        ``self_seconds`` defaults to ``seconds`` — correct for leaf
        spans and for flat phase records, which have no children.
        """
        path = tuple(path)
        entry = self._entries.get(path)
        if entry is None:
            entry = self._entries[path] = {
                "seconds": 0.0, "self_seconds": 0.0,
                "events": 0, "calls": 0,
            }
        entry["seconds"] += seconds
        entry["self_seconds"] += (
            seconds if self_seconds is None else self_seconds
        )
        entry["events"] += events
        entry["calls"] += calls
        return entry

    def __len__(self):
        return len(self._entries)

    def __contains__(self, path):
        return tuple(path) in self._entries

    def get(self, path):
        """The mutable entry dict for ``path``, or None."""
        return self._entries.get(tuple(path))

    def seconds(self, path):
        entry = self._entries.get(tuple(path))
        return entry["seconds"] if entry else 0.0

    def self_seconds(self, path):
        entry = self._entries.get(tuple(path))
        return entry["self_seconds"] if entry else 0.0

    def paths(self):
        """All recorded paths, sorted (parents before children)."""
        return sorted(self._entries)

    def roots(self):
        """The depth-1 span names, sorted (the PhaseProfile view)."""
        return sorted(p[0] for p in self._entries if len(p) == 1)

    def current_path(self, name=None):
        """The active span path, optionally extended by ``name``."""
        path = tuple(handle.name for handle in self._stack)
        return path + (name,) if name is not None else path

    def as_dict(self):
        """JSON-ready snapshot keyed by ``"/"``-joined path."""
        return {
            PATH_SEP.join(path): dict(self._entries[path])
            for path in sorted(self._entries)
        }

    def merge_snapshot(self, snapshot):
        """Fold another tree's :meth:`as_dict` snapshot into this one.

        Per-path addition, applied in the snapshot's own order — the
        parallel engine calls this once per worker payload in plan
        order, so parallel runs aggregate deterministically (sums per
        path; ``seconds`` are total CPU-seconds across workers).
        """
        for key, entry in snapshot.items():
            self.record(
                tuple(key.split(PATH_SEP)),
                entry.get("seconds", 0.0),
                entry.get("self_seconds", entry.get("seconds", 0.0)),
                entry.get("events", 0),
                entry.get("calls", 0),
            )
        return self

    def report(self):
        """Human-readable indented tree, one line per path."""
        paths = self.paths()
        if not paths:
            return "no spans recorded"
        width = max(len("  " * (len(p) - 1) + p[-1]) for p in paths)
        lines = ["span timings:"]
        for path in paths:
            entry = self._entries[path]
            label = "  " * (len(path) - 1) + path[-1]
            line = (
                f"  {label.ljust(width)}  {entry['seconds']:8.3f}s"
                f"  (self {entry['self_seconds']:8.3f}s)"
                f"  x{entry['calls']}"
            )
            if entry["events"]:
                line += f"  {entry['events']} events"
            lines.append(line)
        return "\n".join(lines)


@contextmanager
def span(name, events=0, tree=None, metrics=None, tracer=None,
         attrs=None):
    """Time one nested region; see the module docstring for the contract.

    ``tree``/``metrics``/``tracer`` default to the active telemetry
    context (the tree lives on the context's phase profile).  The span
    stack unwinds correctly when the body raises: the handle is popped
    and the elapsed time recorded either way.

    When a distributed :class:`~repro.obs.tracectx.TraceContext` is
    active on this thread, the span also gets a trace-wide span id and
    appends a record to the per-process spool on close; ``attrs`` ride
    along on that record only (never into metric names, which must stay
    low-cardinality).
    """
    from repro.obs import context, tracectx

    tree = tree if tree is not None else context.get_phases().spans
    metrics = metrics if metrics is not None else context.get_metrics()
    tracer = tracer if tracer is not None else context.get_tracer()

    handle = SpanHandle(name, events)
    stack = tree._stack
    path = tuple(h.name for h in stack) + (name,)
    stack.append(handle)
    ctx = tracectx.current()
    if ctx is not None:
        span_id, parent_id = ctx.enter_span()
        start_ts = time.time()
    start = time.perf_counter()
    try:
        yield handle
    finally:
        elapsed = time.perf_counter() - start
        stack.pop()
        self_seconds = elapsed - handle.child_seconds
        if self_seconds < 0.0:
            self_seconds = 0.0
        if stack:
            stack[-1].child_seconds += elapsed
        tree.record(path, elapsed, self_seconds, handle.events)
        dotted = ".".join(path)
        metrics.counter(f"span_{dotted}_seconds_total").inc(elapsed)
        metrics.counter(f"span_{dotted}_calls_total").inc()
        if tracer.enabled:
            from repro.obs.events import SpanEnd

            tracer.emit(SpanEnd(
                name=name,
                path=PATH_SEP.join(path),
                depth=len(path),
                seconds=elapsed,
                self_seconds=self_seconds,
                events=handle.events,
            ))
        if ctx is not None:
            ctx.exit_span(
                span_id, parent_id, name, PATH_SEP.join(path),
                start_ts, elapsed, self_seconds,
                events=handle.events, attrs=attrs,
            )
