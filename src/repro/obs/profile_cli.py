"""``python -m repro profile``: where does the simulator's time go?

Runs profile → select → simulate for one workload with the opt-in
:class:`~repro.uarch.SimProfiler` attached and renders the cost
attribution three ways:

- a **hotspot table** of per-component simulator self-time (fetch,
  branch predict, I/D-cache, ROB retire, dpred episodes, wrong-path
  synthesis, dataflow) in self-time order, with each bucket's
  deterministic event count;
- **folded stacks** (``--folded``) in Brendan Gregg's
  ``a;b;leaf <weight>`` format — pipe into ``flamegraph.pl`` or paste
  into speedscope; weights are integer microseconds of self-time;
- machine-readable **JSON** (``--json``) pinned by
  ``docs/schemas/profile.schema.json`` and checked with the same
  dependency-free validator as ``explain``
  (:func:`~repro.obs.explain.validate_explain`).

The per-component buckets are a stopwatch partition of the simulate
region, so they sum (within scheduler noise at the phase boundary) to
the ``simulate`` span's self-time; the report prints that coverage
explicitly.  ``sim.insts_per_sec`` — retired instructions over the
simulate span's self-time — is the same throughput number the
benchmark trajectory gate tracks.

``--log`` appends the JSON record as one line to a JSONL history file;
:func:`read_profile_log` reads it back tolerating a torn trailing line
(a crash mid-append must not poison the history).
"""

import argparse
import json
import os
import sys

from repro.errors import WorkloadError
from repro.obs.explain import validate_explain
from repro.uarch.profiler import COMPONENTS, EVENT_MEANING

#: Ships next to the code so the CLI can self-validate anywhere.
SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "docs", "schemas", "profile.schema.json",
)


# ---------------------------------------------------------------------------
# Building the profile
# ---------------------------------------------------------------------------


def build_profile(workload, selection_config, input_set="reduced",
                  scale=1.0, processor_config=None, engine=None):
    """Run profile → select → simulate under a fresh telemetry context.

    The run happens in its own metrics registry and span tree so the
    returned snapshot is self-contained (an ambient telemetry context,
    e.g. a figure driver's, is not disturbed and does not leak in).
    ``engine`` optionally forces the simulation engine for the run
    (``"scalar"``/``"vectorized"``/``"auto"``); the record carries the
    engine that actually ran under its ``"engine"`` key.
    """
    from repro.experiments.runner import get_artifacts, run_selection
    from repro.obs.context import telemetry
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timers import PhaseProfile
    from repro.uarch.engine import engine_override, resolve_engine
    from repro.uarch.profiler import SimProfiler

    registry = MetricsRegistry()
    phases = PhaseProfile()
    profiler = SimProfiler()
    with telemetry(metrics=registry, phases=phases):
        with engine_override(engine):
            stats, annotation = run_selection(
                workload, selection_config,
                input_set=input_set, scale=scale,
                config=processor_config, profiler=profiler,
            )
            resolved_engine = resolve_engine(
                get_artifacts(workload, input_set, scale).program,
                processor_config,
            )
    simulate_self = phases.spans.self_seconds(("simulate",))
    attributed = profiler.total_seconds()
    return {
        "workload": workload,
        "config": selection_config.name,
        "scale": scale,
        "input_set": input_set,
        "engine": resolved_engine,
        "run": {
            "label": stats.label,
            "cycles": stats.cycles,
            "retired_instructions": stats.retired_instructions,
            "ipc": stats.ipc,
        },
        "spans": phases.spans_as_dict(),
        "simulate": {
            "self_seconds": simulate_self,
            "attributed_seconds": attributed,
            "coverage": (
                attributed / simulate_self if simulate_self > 0 else 0.0
            ),
            "insts_per_sec": (
                stats.retired_instructions / simulate_self
                if simulate_self > 0 else 0.0
            ),
        },
        "profiler": profiler.as_dict(),
        "annotated_branches": len(annotation),
    }


# ---------------------------------------------------------------------------
# Rendering (pure functions of the data dict, so JSON round-trips render)
# ---------------------------------------------------------------------------


def _span_lines(spans):
    """Indented span-tree lines from a ``spans_as_dict`` snapshot."""
    if not spans:
        return ["no spans recorded"]
    keys = sorted(spans)
    labels = {
        key: "  " * key.count("/") + key.rsplit("/", 1)[-1]
        for key in keys
    }
    width = max(len(label) for label in labels.values())
    lines = ["span timings (self-time = region minus children):"]
    for key in keys:
        entry = spans[key]
        line = (
            f"  {labels[key].ljust(width)}  {entry['seconds']:8.3f}s"
            f"  (self {entry['self_seconds']:8.3f}s)"
            f"  x{entry['calls']}"
        )
        if entry.get("events"):
            line += f"  {entry['events']} events"
        lines.append(line)
    return lines


def _hotspot_lines(data):
    """Hotspot table lines from the data dict, self-time order."""
    prof = data["profiler"]
    lines = [
        f"simulator hotspots ({prof['runs']} run(s), "
        f"{prof['total_seconds']:.3f}s attributed):",
        f"  {'component':<15} {'seconds':>9} {'%':>6} "
        f"{'events':>12}  events are",
    ]
    for row in prof["components"]:
        lines.append(
            f"  {row['name']:<15} {row['seconds']:>9.4f} "
            f"{100.0 * row['fraction']:>5.1f}% "
            f"{row['events']:>12}  "
            f"{EVENT_MEANING.get(row['name'], '')}"
        )
    return lines


def format_profile(data):
    """Render :func:`build_profile` output as plain text."""
    run = data["run"]
    sim = data["simulate"]
    engine = data.get("engine")  # absent in pre-engine records
    lines = [
        f"profile: {data['workload']} under {data['config']} "
        f"(scale {data['scale']:g}, input set {data['input_set']}"
        + (f", {engine} engine)" if engine else ")"),
        f"  run: {run['cycles']} cycles, "
        f"{run['retired_instructions']} insts "
        f"(IPC {run['ipc']:.3f}), "
        f"{data['annotated_branches']} annotated branches",
        f"  throughput: {sim['insts_per_sec']:,.0f} simulated insts/sec "
        f"over {sim['self_seconds']:.3f}s simulate self-time",
        f"  attribution: {sim['attributed_seconds']:.3f}s in component "
        f"buckets = {100.0 * sim['coverage']:.1f}% of simulate "
        f"self-time",
        "",
    ]
    lines.extend(_span_lines(data["spans"]))
    lines.append("")
    lines.extend(_hotspot_lines(data))
    return "\n".join(lines)


def folded_profile(data):
    """Folded-stack lines (integer-µs self-time weights) for flamegraphs.

    Non-simulate spans appear as ``repro;<path>``; the simulate span's
    self-time is split into its component buckets
    (``repro;simulate;<component>``) with any unattributed remainder
    staying on ``repro;simulate`` itself.
    """
    component_total = sum(
        row["seconds"] for row in data["profiler"]["components"]
    )
    lines = []
    for key in sorted(data["spans"]):
        self_sec = data["spans"][key]["self_seconds"]
        if key == "simulate":
            self_sec = max(0.0, self_sec - component_total)
        micros = int(round(self_sec * 1e6))
        if micros > 0:
            lines.append("repro;" + key.replace("/", ";") + f" {micros}")
    by_name = {
        row["name"]: row["seconds"]
        for row in data["profiler"]["components"]
    }
    for name in COMPONENTS:
        micros = int(round(by_name.get(name, 0.0) * 1e6))
        if micros > 0:
            lines.append(f"repro;simulate;{name} {micros}")
    return lines


# ---------------------------------------------------------------------------
# Schema + profile log
# ---------------------------------------------------------------------------


def load_profile_schema(path=SCHEMA_PATH):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def validate_profile(data, schema=None):
    """Errors (empty list = valid) for one profile record vs the schema."""
    if schema is None:
        schema = load_profile_schema()
    return validate_explain(data, schema)


def append_profile_log(path, data):
    """Append one profile record as a single JSONL line (durable history)."""
    from repro.ioutil import ensure_parent

    line = json.dumps(data, sort_keys=True)
    with open(ensure_parent(path), "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def read_profile_log(path):
    """All durable records from a profile log; torn-tail tolerant.

    Returns ``(records, corrupt_lines)`` — a crash mid-append leaves at
    most one truncated trailing line, which is skipped and counted, not
    raised.
    """
    from repro.obs.tracer import iter_records

    corrupt = []
    records = list(iter_records(path, strict=False, corrupt=corrupt))
    return records, len(corrupt)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _resolve_config(args, parser):
    from repro.compiler import registry
    from repro.compiler.pipeline import parse_spec

    if args.pipeline:
        try:
            return parse_spec(args.pipeline)
        except ValueError as exc:
            parser.error(str(exc))
    name = args.config.lower()
    try:
        return registry.resolve(name)
    except KeyError as exc:
        parser.error(exc.args[0])


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description=(
            "Attribute the simulator's own wall-clock to per-component "
            "cost buckets for one workload."
        ),
    )
    parser.add_argument("workload", help="benchmark name (e.g. mcf)")
    parser.add_argument(
        "--config", default="all-best-cost",
        help="selection preset (case-insensitive; default "
             "all-best-cost)",
    )
    parser.add_argument(
        "--pipeline", default=None, metavar="SPEC",
        help="explicit pipeline spec instead of --config "
             "(e.g. 'exact,freq,short,ret,loop,cost:edge')",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="trace-length multiplier (default 1.0)",
    )
    parser.add_argument(
        "--input-set", default="reduced",
        help="workload input set (default: reduced)",
    )
    parser.add_argument(
        "--sim-engine",
        choices=("auto", "scalar", "vectorized"),
        default=None,
        help="timing-simulator engine (default: process default / "
             "auto); the record's 'engine' key reports what ran",
    )
    form = parser.add_mutually_exclusive_group()
    form.add_argument(
        "--json", action="store_true",
        help="emit the full profile as schema-pinned JSON "
             "(docs/schemas/profile.schema.json)",
    )
    form.add_argument(
        "--folded", action="store_true",
        help="emit folded stacks (for flamegraph.pl / speedscope) "
             "instead of the report",
    )
    parser.add_argument(
        "--log", default=None, metavar="PATH.jsonl",
        help="also append the JSON record to a JSONL history file",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout "
             "(parent directories are created)",
    )
    args = parser.parse_args(argv)
    selection_config = _resolve_config(args, parser)

    try:
        data = build_profile(
            args.workload, selection_config,
            input_set=args.input_set, scale=args.scale,
            engine=args.sim_engine,
        )
    except (KeyError, WorkloadError) as exc:
        print(f"python -m repro profile: error: {exc.args[0]}",
              file=sys.stderr)
        return 1

    errors = validate_profile(data)
    if errors:
        for error in errors:
            print(f"python -m repro profile: schema violation: {error}",
                  file=sys.stderr)
        return 1

    if args.json:
        text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    elif args.folded:
        text = "\n".join(folded_profile(data)) + "\n"
    else:
        text = format_profile(data) + "\n"

    if args.log:
        append_profile_log(args.log, data)
        print(f"[obs] profile record appended to {args.log}",
              file=sys.stderr)

    if args.output:
        from repro.ioutil import ensure_parent

        with open(ensure_parent(args.output), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
        print(f"[obs] profile written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
