"""Typed trace events.

Every event is a frozen dataclass with a ``type`` class attribute (the
wire name used in the JSONL log).  :func:`to_record` flattens an event
into a JSON-ready dict and :func:`from_record` reconstructs the typed
event, so a log round-trips losslessly through
:class:`repro.obs.tracer.JsonlSink` and :func:`repro.obs.tracer.read_events`.

Unknown event types read back as :class:`GenericEvent`, which keeps
``trace-report`` working on logs written by newer code.
"""

from dataclasses import dataclass, fields
from typing import ClassVar, Optional

#: Wire name -> event class (populated by the ``@event`` decorator).
EVENT_TYPES = {}


def event(cls):
    """Register an event dataclass under its ``type`` wire name."""
    EVENT_TYPES[cls.type] = cls
    return cls


# -- dynamic predication episodes -------------------------------------------


@event
@dataclass(frozen=True)
class DpredEpisodeStart:
    """The simulator entered dpred-mode on a diverge branch."""

    type: ClassVar[str] = "dpred.episode.start"
    branch_pc: int
    kind: str                 # "hammock" | "loop"
    cycle: int
    mispredicted: bool        # True => this episode avoids a flush
    wrong_path_insts: int
    #: Select-µops charged at entry (loop episodes; hammocks charge
    #: theirs at the merge event instead).
    select_uops: int = 0


@event
@dataclass(frozen=True)
class DpredEpisodeMerge:
    """Both paths reached a CFM point: select-µops inserted, no flush."""

    type: ClassVar[str] = "dpred.episode.merge"
    branch_pc: int
    cycle: int
    duration_cycles: int
    select_uops: int


@event
@dataclass(frozen=True)
class DpredEpisodeEnd:
    """Episode ended without merging (resolution caught up first)."""

    type: ClassVar[str] = "dpred.episode.end"
    branch_pc: int
    cycle: int
    duration_cycles: int
    reason: str               # "resolved-unmerged" | "true-path-waits"


@event
@dataclass(frozen=True)
class DpredEpisodeFlush:
    """Episode squashed by a flush on the predicated path."""

    type: ClassVar[str] = "dpred.episode.flush"
    branch_pc: int
    cycle: int
    duration_cycles: int
    flushed_by_pc: int
    source: str               # "branch-mispredict" | "return-mispredict"


@event
@dataclass(frozen=True)
class DpredEpisodeExtend:
    """A later instance of a predicated loop branch extended the episode.

    The over-iteration (late-exit) misprediction is covered: one more
    flush avoided, ``extra_insts`` more NOPped iterations fetched.
    """

    type: ClassVar[str] = "dpred.episode.extend"
    branch_pc: int
    cycle: int
    extra_insts: int


# -- compile-time selection --------------------------------------------------


@event
@dataclass(frozen=True)
class BranchSelected:
    """The selector marked a branch as a diverge branch."""

    type: ClassVar[str] = "select.branch.selected"
    branch_pc: int
    kind: str
    source: str
    always_predicate: bool
    num_cfm_points: int
    num_select_uops: int
    # Cost-model terms (None when a threshold heuristic decided).
    dpred_cost: Optional[float] = None
    dpred_overhead: Optional[float] = None
    merge_prob_total: Optional[float] = None


@event
@dataclass(frozen=True)
class BranchRejected:
    """The selector considered and dropped a candidate branch."""

    type: ClassVar[str] = "select.branch.rejected"
    branch_pc: int
    reason: str
    dpred_cost: Optional[float] = None
    dpred_overhead: Optional[float] = None
    merge_prob_total: Optional[float] = None


# -- compiler pipeline -------------------------------------------------------


@event
@dataclass(frozen=True)
class CompilePassStart:
    """The pass-manager pipeline started running one selection pass."""

    type: ClassVar[str] = "compile.pass.start"
    pipeline: str
    pass_name: str
    index: int


@event
@dataclass(frozen=True)
class CompilePassEnd:
    """One selection pass finished, with its working-set sizes."""

    type: ClassVar[str] = "compile.pass.end"
    pipeline: str
    pass_name: str
    index: int
    seconds: float
    candidates: int           # pending hammock candidates after the pass
    selected: int             # diverge branches annotated so far


# -- microarchitecture -------------------------------------------------------


@event
@dataclass(frozen=True)
class PipelineFlush:
    """The pipeline flushed (DMP's benefit is making these rarer)."""

    type: ClassVar[str] = "uarch.pipeline.flush"
    pc: int
    cycle: int
    source: str               # "branch-mispredict" | "return-mispredict"


@event
@dataclass(frozen=True)
class CacheMiss:
    """A demand miss in the cache hierarchy (fetch side only for now)."""

    type: ClassVar[str] = "uarch.cache.miss"
    level: str                # "icache"
    pc: int
    cycle: int
    stall_cycles: int


# -- run structure -----------------------------------------------------------


@event
@dataclass(frozen=True)
class SimRunStart:
    """One timing-simulation run began."""

    type: ClassVar[str] = "sim.run.start"
    label: str
    trace_length: int
    dmp_enabled: bool


@event
@dataclass(frozen=True)
class SimRunEnd:
    """One timing-simulation run finished, with its headline counters.

    ``trace-report`` reconciles the per-event counts against these
    totals; a mismatch means dropped events.
    """

    type: ClassVar[str] = "sim.run.end"
    label: str
    cycles: int
    retired_instructions: int
    pipeline_flushes: int
    dpred_episodes: int
    dpred_episodes_merged: int
    # Extra totals for trace-driven ledger reconciliation; default 0
    # so logs written by older builds still read back.
    mispredictions: int = 0
    dpred_flushes_avoided: int = 0
    dpred_wrong_path_insts: int = 0
    dpred_select_uops: int = 0


# -- campaigns ---------------------------------------------------------------


@event
@dataclass(frozen=True)
class CampaignCellStart:
    """The campaign scheduler handed one cell attempt to a worker."""

    type: ClassVar[str] = "campaign.cell.start"
    campaign: str
    cell_id: str
    label: str
    attempt: int


@event
@dataclass(frozen=True)
class CampaignCellEnd:
    """A campaign cell attempt completed and was journaled."""

    type: ClassVar[str] = "campaign.cell.end"
    campaign: str
    cell_id: str
    attempt: int
    seconds: float


@event
@dataclass(frozen=True)
class CampaignCellFail:
    """A campaign cell attempt raised, crashed, or timed out."""

    type: ClassVar[str] = "campaign.cell.fail"
    campaign: str
    cell_id: str
    attempt: int
    kind: str                 # "exception" | "crash" | "timeout"
    error: str


@event
@dataclass(frozen=True)
class CampaignCellQuarantined:
    """A cell exhausted its attempts and is now an explicit gap."""

    type: ClassVar[str] = "campaign.cell.quarantined"
    campaign: str
    cell_id: str
    attempts: int


@event
@dataclass(frozen=True)
class PhaseEnd:
    """A harness phase (trace/profile/select/simulate) completed."""

    type: ClassVar[str] = "phase.end"
    name: str
    seconds: float
    events: int


@event
@dataclass(frozen=True)
class SpanEnd:
    """A hierarchical timed span closed (see :mod:`repro.obs.spans`).

    ``path`` is the ``"/"``-joined span path from the root (the parent
    is everything before the last separator); ``self_seconds`` is the
    cumulative ``seconds`` minus the children's cumulative time.
    """

    type: ClassVar[str] = "span.end"
    name: str
    path: str
    depth: int
    seconds: float
    self_seconds: float
    events: int = 0


@dataclass(frozen=True)
class GenericEvent:
    """Fallback for event types this build does not know about."""

    type: str
    payload: dict


def to_record(event_obj):
    """Flatten an event into a JSON-ready dict (``type`` key first)."""
    record = {"type": event_obj.type}
    for field in fields(event_obj):
        record[field.name] = getattr(event_obj, field.name)
    return record


def from_record(record):
    """Rebuild the typed event from a :func:`to_record` dict."""
    data = dict(record)
    type_name = data.pop("type", None)
    data.pop("seq", None)
    cls = EVENT_TYPES.get(type_name)
    if cls is None:
        return GenericEvent(type=type_name or "unknown", payload=data)
    known = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in known})
