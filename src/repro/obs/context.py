"""The active telemetry context.

Experiment harnesses call deep into the stack (CLI → experiments →
runner → simulator), so telemetry is threaded implicitly: every
instrumented constructor defaults its ``tracer``/``metrics`` argument
to the *active* context here, and the CLI swaps a real tracer and a
fresh registry in with :func:`telemetry` for the duration of a run.

The defaults are a :data:`~repro.obs.tracer.NULL_TRACER` (tracing off,
one attribute check per guarded site) and a process-wide
:class:`~repro.obs.metrics.MetricsRegistry` (always on — counters are
cheap).  Explicit ``tracer=``/``metrics=`` arguments always win over
the context.
"""

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.timers import PhaseProfile
from repro.obs.tracer import NULL_TRACER


class Telemetry:
    """One bundle of tracer + metrics registry + phase profile."""

    __slots__ = ("tracer", "metrics", "phases")

    def __init__(self, tracer=None, metrics=None, phases=None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.phases = phases if phases is not None else PhaseProfile()


_ACTIVE = Telemetry()


def active():
    """The currently active :class:`Telemetry` bundle."""
    return _ACTIVE


def get_tracer():
    return _ACTIVE.tracer


def get_metrics():
    return _ACTIVE.metrics


def get_phases():
    return _ACTIVE.phases


@contextmanager
def telemetry(tracer=None, metrics=None, phases=None):
    """Install a telemetry bundle for the duration of the block.

    Omitted pieces are inherited from the surrounding context (not
    reset), so ``with telemetry(tracer=t):`` keeps the active registry.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = Telemetry(
        tracer=tracer if tracer is not None else previous.tracer,
        metrics=metrics if metrics is not None else previous.metrics,
        phases=phases if phases is not None else previous.phases,
    )
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
