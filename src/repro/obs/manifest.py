"""Run manifests: one JSON document describing one experiment run.

A manifest answers "what exactly produced this result?": the command
and arguments, benchmark set and scale, the git revision and python
version, per-phase wall-clock timings, and a snapshot of the metrics
registry.  ``python -m repro all`` writes one combined manifest for
the whole run, and the benchmark suite writes its timings in the same
format under ``benchmarks/results/``.
"""

import datetime
import json
import os
import platform
import subprocess
import sys

#: Schema tag so downstream tooling can detect format changes.
MANIFEST_SCHEMA = "dmp-repro/run-manifest/v1"


def git_revision(cwd=None):
    """The current git commit hash, or ``None`` outside a checkout."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if output.returncode != 0:
        return None
    return output.stdout.strip() or None


def build_manifest(command, *, args=None, benchmarks=None, scale=None,
                   phases=None, metrics=None, stats=None, extra=None):
    """Assemble a manifest dict.

    ``phases`` is a :class:`~repro.obs.timers.PhaseProfile` (or a
    plain dict already in its ``as_dict`` shape); ``metrics`` a
    :class:`~repro.obs.metrics.MetricsRegistry` (or dict); ``stats`` a
    mapping of label -> ``SimStats.as_dict()`` snapshots.
    """
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_rev": git_revision(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    if args is not None:
        manifest["args"] = dict(args)
    if benchmarks is not None:
        manifest["benchmarks"] = list(benchmarks)
    if scale is not None:
        manifest["scale"] = scale
    if phases is not None:
        manifest["phases"] = (
            phases.as_dict() if hasattr(phases, "as_dict") else dict(phases)
        )
    if metrics is not None:
        manifest["metrics"] = (
            metrics.as_dict() if hasattr(metrics, "as_dict")
            else dict(metrics)
        )
    if stats is not None:
        manifest["stats"] = dict(stats)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path, manifest):
    """Write ``manifest`` as indented JSON; returns ``path``."""
    from repro.ioutil import ensure_parent

    ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def read_manifest(path):
    """Load a manifest written by :func:`write_manifest`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
