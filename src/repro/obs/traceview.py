"""The trace aggregator: merge per-process spools into one timeline.

``python -m repro trace show <trace_id>`` reads every
``spans-<pid>.jsonl`` spool in a trace directory (torn-tail
tolerantly, like the campaign journal), filters to one trace, and
rebuilds the cross-process span tree from the ``span_id``/
``parent_id`` edges that :mod:`repro.obs.tracectx` recorded.  The
result is a single coherent timeline even when the spans came from a
serve daemon thread, a campaign scheduler, and N forked shard workers:

- every span is *parented* — its ``parent_id`` is either ``None``
  (a trace root) or another span in the same trace.  Spans whose
  parent record is missing (e.g. a worker outlived its torn spool
  line) are reported as **orphans** and attached under a synthetic
  root so nothing disappears silently;
- per-span *derived self time* is recomputed from the merged tree
  (``seconds`` minus the direct children's ``seconds``, clamped at
  zero), so a parent that merely waited on child processes is not
  double-counted;
- the per-process summary shows which services/pids participated and
  how much wall-clock each contributed.

``--json`` output is pinned by ``docs/schemas/trace.schema.json`` and
validated with the same dependency-free checker the explain/profile
CLIs use; ``--folded`` emits flamegraph-style stack lines.
"""

import argparse
import json
import os
import sys

from repro.obs.explain import validate_explain
from repro.obs.tracer import iter_records
from repro.obs.tracectx import SPOOL_PREFIX, SPOOL_SUFFIX, TRACE_DIR_ENV

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    ))),
    "docs", "schemas", "trace.schema.json",
)

#: Keys every usable spool record must carry.
_REQUIRED_KEYS = ("trace_id", "span_id", "name", "start_ts", "seconds")


def spool_paths(directory):
    """All span spool files in ``directory``, sorted by name."""
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    return [
        os.path.join(directory, name)
        for name in names
        if name.startswith(SPOOL_PREFIX) and name.endswith(SPOOL_SUFFIX)
    ]


def read_spools(directory):
    """``(records, spool_files, corrupt)`` across every spool file.

    ``corrupt`` counts both torn/malformed JSON lines and structurally
    incomplete records (missing required keys) — the aggregator never
    raises on a live, still-being-written trace directory.
    """
    records = []
    corrupt = 0
    paths = spool_paths(directory)
    for path in paths:
        bad = []
        try:
            for record in iter_records(path, strict=False, corrupt=bad):
                if not isinstance(record, dict) or any(
                    key not in record for key in _REQUIRED_KEYS
                ):
                    corrupt += 1
                    continue
                records.append(record)
        except OSError:
            continue
        corrupt += len(bad)
    return records, len(paths), corrupt


def list_traces(directory):
    """Per-trace summaries for every trace in ``directory``.

    Returns a list of dicts (newest first) with ``trace_id``, span
    count, participating services, and the trace's start/duration.
    """
    records, _files, _corrupt = read_spools(directory)
    traces = {}
    for record in records:
        entry = traces.setdefault(record["trace_id"], {
            "trace_id": record["trace_id"],
            "spans": 0,
            "services": set(),
            "start_ts": None,
            "end_ts": None,
        })
        entry["spans"] += 1
        entry["services"].add(record.get("service", "?"))
        start = record["start_ts"]
        end = start + record["seconds"]
        if entry["start_ts"] is None or start < entry["start_ts"]:
            entry["start_ts"] = start
        if entry["end_ts"] is None or end > entry["end_ts"]:
            entry["end_ts"] = end
    out = []
    for entry in traces.values():
        out.append({
            "trace_id": entry["trace_id"],
            "spans": entry["spans"],
            "services": sorted(entry["services"]),
            "start_ts": entry["start_ts"],
            "wall_seconds": entry["end_ts"] - entry["start_ts"],
        })
    out.sort(key=lambda e: e["start_ts"], reverse=True)
    return out


def build_timeline(directory, trace_id):
    """The merged cross-process timeline for one trace (JSON-ready).

    Raises :class:`ValueError` when the trace has no spans at all.
    """
    records, files, corrupt = read_spools(directory)
    matching = [r for r in records if r["trace_id"] == trace_id]
    if not matching:
        raise ValueError(
            f"no spans for trace {trace_id!r} in {directory} "
            f"({files} spool files scanned)"
        )

    by_id = {}
    for record in matching:
        # Last write wins on a duplicated span id (astronomically
        # unlikely with 64-bit random ids).
        by_id[record["span_id"]] = record

    children = {}
    roots = []
    orphans = []
    for span_id, record in by_id.items():
        parent = record.get("parent_id")
        if parent is None:
            roots.append(span_id)
        elif parent in by_id:
            children.setdefault(parent, []).append(span_id)
        else:
            orphans.append(span_id)

    # Derived self time from the merged tree: a span's own seconds
    # minus its direct children's, clamped at zero (children may run
    # in parallel processes and legitimately overlap).
    child_seconds = {}
    for parent, kids in children.items():
        child_seconds[parent] = sum(by_id[k]["seconds"] for k in kids)

    def depth_of(span_id):
        depth = 0
        seen = set()
        current = by_id[span_id].get("parent_id")
        while current in by_id and current not in seen:
            seen.add(current)
            depth += 1
            current = by_id[current].get("parent_id")
        return depth

    start_ts = min(r["start_ts"] for r in matching)
    end_ts = max(r["start_ts"] + r["seconds"] for r in matching)

    spans = []
    for span_id, record in by_id.items():
        derived = record["seconds"] - child_seconds.get(span_id, 0.0)
        if derived < 0.0:
            derived = 0.0
        span = {
            "span_id": span_id,
            "parent_id": record.get("parent_id"),
            "name": record["name"],
            "path": record.get("path", record["name"]),
            "service": record.get("service", "?"),
            "pid": record.get("pid", 0),
            "start_ts": record["start_ts"],
            "offset_seconds": record["start_ts"] - start_ts,
            "seconds": record["seconds"],
            "self_seconds": record.get("self_seconds",
                                       record["seconds"]),
            "derived_self_seconds": derived,
            "events": record.get("events", 0),
            "depth": depth_of(span_id),
            "orphan": span_id in set(orphans),
        }
        if record.get("attrs"):
            span["attrs"] = record["attrs"]
        spans.append(span)
    spans.sort(key=lambda s: (s["start_ts"], s["depth"], s["span_id"]))

    processes = {}
    for span in spans:
        key = (span["service"], span["pid"])
        entry = processes.setdefault(key, {
            "service": span["service"], "pid": span["pid"],
            "spans": 0, "seconds": 0.0, "self_seconds": 0.0,
        })
        entry["spans"] += 1
        entry["seconds"] += span["seconds"]
        entry["self_seconds"] += span["derived_self_seconds"]

    root_seconds = sum(by_id[r]["seconds"] for r in roots)
    total_self = sum(s["derived_self_seconds"] for s in spans)
    return {
        "trace_id": trace_id,
        "spans": spans,
        "span_count": len(spans),
        "roots": sorted(roots),
        "orphans": sorted(orphans),
        "processes": sorted(
            processes.values(),
            key=lambda e: (e["service"], e["pid"]),
        ),
        "start_ts": start_ts,
        "wall_seconds": end_ts - start_ts,
        "root_seconds": root_seconds,
        "total_self_seconds": total_self,
        "spool_files": files,
        "corrupt_lines": corrupt,
    }


def load_trace_schema(path=SCHEMA_PATH):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_timeline(data, schema=None):
    """Schema errors for a :func:`build_timeline` payload (empty = ok)."""
    schema = schema if schema is not None else load_trace_schema()
    return validate_explain(data, schema)


def format_timeline(data):
    """Human-readable cross-process timeline, one line per span."""
    lines = [
        f"trace {data['trace_id']}",
        f"  {data['span_count']} spans across "
        f"{len(data['processes'])} processes, "
        f"wall {data['wall_seconds']:.3f}s"
        + (f", {len(data['orphans'])} orphans" if data["orphans"]
           else ""),
    ]
    if data["corrupt_lines"]:
        lines.append(
            f"  warning: skipped {data['corrupt_lines']} corrupt "
            f"spool lines"
        )
    lines.append("")
    lines.append("  processes:")
    for proc in data["processes"]:
        lines.append(
            f"    {proc['service']:<16} pid {proc['pid']:<8}"
            f" {proc['spans']:>4} spans"
            f"  {proc['self_seconds']:8.3f}s self"
        )
    lines.append("")
    lines.append(
        "   offset   duration       self  service          span"
    )
    for span in data["spans"]:
        label = "  " * span["depth"] + span["name"]
        flags = []
        if span["orphan"]:
            flags.append("ORPHAN")
        attrs = span.get("attrs") or {}
        for key in sorted(attrs):
            flags.append(f"{key}={attrs[key]}")
        suffix = f"  [{' '.join(flags)}]" if flags else ""
        lines.append(
            f"  {span['offset_seconds']:7.3f}s"
            f" {span['seconds']:8.3f}s"
            f" {span['derived_self_seconds']:9.3f}s"
            f"  {span['service']:<16} {label}{suffix}"
        )
    return "\n".join(lines)


def folded_timeline(data):
    """Flamegraph-style folded stacks (service;names... self_ms)."""
    by_id = {span["span_id"]: span for span in data["spans"]}
    lines = []
    for span in data["spans"]:
        names = [span["name"]]
        seen = {span["span_id"]}
        parent = span["parent_id"]
        while parent in by_id and parent not in seen:
            seen.add(parent)
            names.append(by_id[parent]["name"])
            parent = by_id[parent]["parent_id"]
        names.append(span["service"])
        stack = ";".join(reversed(names))
        weight = max(
            int(round(span["derived_self_seconds"] * 1_000_000)), 0
        )
        lines.append(f"{stack} {weight}")
    return "\n".join(lines) + "\n"


def format_trace_list(entries):
    if not entries:
        return "no traces recorded"
    lines = ["traces (newest first):"]
    for entry in entries:
        lines.append(
            f"  {entry['trace_id']}  {entry['spans']:>5} spans"
            f"  {entry['wall_seconds']:8.3f}s"
            f"  {','.join(entry['services'])}"
        )
    return "\n".join(lines)


def _default_dir(value):
    if value:
        return value
    return os.environ.get(TRACE_DIR_ENV) or "results/trace"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Merge per-process span spools into one cross-process "
            "timeline (see docs/observability.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser(
        "show", help="render the merged timeline for one trace id"
    )
    show.add_argument("trace_id", help="the 32-hex trace id")
    show.add_argument(
        "--dir", default=None, metavar="DIR",
        help=f"trace spool directory (default: ${TRACE_DIR_ENV} "
             f"or results/trace)",
    )
    show.add_argument(
        "--json", action="store_true",
        help="emit the schema-pinned JSON timeline instead of text",
    )
    show.add_argument(
        "--folded", action="store_true",
        help="emit flamegraph-style folded stacks",
    )
    show.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )

    lst = sub.add_parser("list", help="list traces in a spool directory")
    lst.add_argument("--dir", default=None, metavar="DIR")

    args = parser.parse_args(argv)
    directory = _default_dir(args.dir)

    if args.command == "list":
        print(format_trace_list(list_traces(directory)))
        return 0

    if args.json and args.folded:
        parser.error("--json and --folded are mutually exclusive")
    try:
        data = build_timeline(directory, args.trace_id)
    except ValueError as exc:
        print(f"python -m repro trace: error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        errors = validate_timeline(data)
        if errors:
            for error in errors:
                print(f"schema violation: {error}", file=sys.stderr)
            return 2
        text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    elif args.folded:
        text = folded_timeline(data)
    else:
        text = format_timeline(data) + "\n"
    if args.output:
        from repro.ioutil import ensure_parent

        ensure_parent(args.output)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"[trace] written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0
