"""The decision ledger: compile-time verdicts joined to runtime outcomes.

Two ledgers close the paper's estimate-vs-observed loop (§4's cost
model against what the simulator actually measured):

- :class:`SelectionLedger` — every selection pass records one
  :class:`SelectionDecision` per candidate it accepts or rejects,
  carrying the cost-model numbers (estimated dpred overhead, estimated
  flush savings, the threshold/rule that fired).  The pipeline carries
  the ledger on the :class:`~repro.compiler.passes.SelectionState`.
- :class:`RuntimeLedger` — the simulator's per-pc episode accounting
  (episodes, merged/unmerged/squashed, avoided vs. taken flushes,
  wrong-path instructions, select-µops, episode cycles) folded in once
  per run, plus the run-level :class:`~repro.uarch.stats.SimStats`
  totals so :meth:`RuntimeLedger.reconcile` can prove nothing was
  dropped.

Both serialize to plain dicts; :mod:`repro.obs.explain` joins them
per static branch.  A :class:`RuntimeLedger` can also be rebuilt from
a JSONL trace log (:meth:`RuntimeLedger.from_trace`) — the episode
events carry enough information to reproduce the per-branch counters
exactly, torn trailing lines tolerated.
"""

from dataclasses import dataclass
from typing import Optional

#: Per-branch runtime counter names, in the simulator's slot order.
RUNTIME_COUNTERS = (
    "executions",        # conditional-branch instances
    "mispredictions",    # predictor misses
    "episodes",          # dpred episodes entered
    "flushes_avoided",   # mispredictions covered by an episode
    "flushes",           # pipeline flushes charged to this pc
    "merged",            # episodes that merged (select-µops inserted)
    "unmerged",          # episodes resolved without merging
    "squashed",          # episodes killed by a flush on the dpred path
    "wrong_path_insts",  # synthesized wrong-path instructions fetched
    "select_uops",       # select-µops charged
    "episode_cycles",    # summed episode durations in cycles
)


@dataclass
class SelectionDecision:
    """One pass's verdict on one static branch."""

    branch_pc: int
    verdict: str                   # "selected" | "rejected"
    pass_name: str                 # which pipeline pass decided
    reason: str                    # source (selected) or reject reason
    rule: str                      # the threshold/decision rule that fired
    kind: str = ""                 # diverge kind for selected branches
    always_predicate: bool = False
    num_cfm_points: int = 0
    num_select_uops: int = 0
    #: Cost-model terms (None when a threshold heuristic decided).
    est_overhead: Optional[float] = None    # fetch cycles per entry
    est_cost: Optional[float] = None        # Equation (1); < 0 selects
    est_flush_savings: Optional[float] = None  # misp_penalty·Acc_Conf
    merge_prob: Optional[float] = None

    @property
    def est_net_benefit(self):
        """Estimated net cycles gained per dpred entry (None-safe)."""
        if self.est_cost is None:
            return None
        return -self.est_cost

    def as_dict(self):
        return {
            "branch_pc": self.branch_pc,
            "verdict": self.verdict,
            "pass": self.pass_name,
            "reason": self.reason,
            "rule": self.rule,
            "kind": self.kind,
            "always_predicate": self.always_predicate,
            "num_cfm_points": self.num_cfm_points,
            "num_select_uops": self.num_select_uops,
            "est_overhead": self.est_overhead,
            "est_cost": self.est_cost,
            "est_flush_savings": self.est_flush_savings,
            "merge_prob": self.merge_prob,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            branch_pc=data["branch_pc"],
            verdict=data["verdict"],
            pass_name=data.get("pass", ""),
            reason=data.get("reason", ""),
            rule=data.get("rule", ""),
            kind=data.get("kind", ""),
            always_predicate=data.get("always_predicate", False),
            num_cfm_points=data.get("num_cfm_points", 0),
            num_select_uops=data.get("num_select_uops", 0),
            est_overhead=data.get("est_overhead"),
            est_cost=data.get("est_cost"),
            est_flush_savings=data.get("est_flush_savings"),
            merge_prob=data.get("merge_prob"),
        )


def _default_selected_rule(branch, report):
    if report is not None:
        return "dpred_cost<0"
    if branch.source == "short-hammock":
        return "short-hammock-always"
    if branch.source == "loop":
        return "loop-heuristics"
    return "threshold-heuristics"


def _default_rejected_rule(reason):
    if reason == "cost-model":
        return "dpred_cost>=0"
    if reason == "easy-branch-filter":
        return "misp_rate<floor"
    if reason == "2d-profile-filter":
        return "always-easy-2d"
    if reason.startswith("loop:"):
        return reason[len("loop:"):]
    return reason


class SelectionLedger:
    """Accept/reject decisions for every candidate the compiler saw.

    Decisions append in pipeline order; :meth:`final` returns the last
    (winning) decision per pc — a branch rejected by the cost model can
    still be selected later by e.g. the return-CFM pass.
    """

    def __init__(self):
        self.decisions = []

    def __len__(self):
        return len(self.decisions)

    def record_selected(self, branch, pass_name, report=None, rule=None,
                        params=None):
        """Record a :class:`~repro.core.marks.DivergeBranch` acceptance."""
        savings = None
        if params is not None:
            # Expected flush-penalty cycles recovered per dpred entry
            # under the model's assumptions (Equation 1's benefit term).
            savings = params.misp_penalty * params.acc_conf
        self.decisions.append(SelectionDecision(
            branch_pc=branch.branch_pc,
            verdict="selected",
            pass_name=pass_name,
            reason=branch.source,
            rule=rule or _default_selected_rule(branch, report),
            kind=branch.kind.value,
            always_predicate=branch.always_predicate,
            num_cfm_points=len(branch.cfm_points),
            num_select_uops=branch.num_select_uops,
            est_overhead=report.dpred_overhead if report else None,
            est_cost=report.dpred_cost if report else None,
            est_flush_savings=savings if report else None,
            merge_prob=report.merge_prob_total if report else None,
        ))

    def record_rejected(self, branch_pc, pass_name, reason, report=None,
                        rule=None, params=None):
        savings = None
        if params is not None and report is not None:
            savings = params.misp_penalty * params.acc_conf
        self.decisions.append(SelectionDecision(
            branch_pc=branch_pc,
            verdict="rejected",
            pass_name=pass_name,
            reason=reason,
            rule=rule or _default_rejected_rule(reason),
            est_overhead=report.dpred_overhead if report else None,
            est_cost=report.dpred_cost if report else None,
            est_flush_savings=savings,
            merge_prob=report.merge_prob_total if report else None,
        ))

    def final(self):
        """pc -> the last (winning) decision for that pc."""
        result = {}
        for decision in self.decisions:
            result[decision.branch_pc] = decision
        return result

    def history(self, pc):
        """Every decision recorded for ``pc``, in pipeline order."""
        return [d for d in self.decisions if d.branch_pc == pc]

    def remapped(self, pc_map, keep_reasons=()):
        """A new ledger with decision pcs translated through ``pc_map``.

        Decisions whose ``reason`` is in ``keep_reasons`` keep their
        pc verbatim — a transform pass records its removals in
        *original* pc space while later passes decide in the rewritten
        program's, so only the latter need translating back.  Pcs
        absent from the map pass through unchanged.
        """
        from dataclasses import replace

        ledger = SelectionLedger()
        for decision in self.decisions:
            if decision.reason in keep_reasons:
                ledger.decisions.append(decision)
            else:
                ledger.decisions.append(replace(
                    decision,
                    branch_pc=pc_map.get(
                        decision.branch_pc, decision.branch_pc
                    ),
                ))
        return ledger

    def selected_pcs(self):
        return sorted(
            pc for pc, d in self.final().items() if d.verdict == "selected"
        )

    def rejected_pcs(self):
        return sorted(
            pc for pc, d in self.final().items() if d.verdict == "rejected"
        )

    def counts(self):
        final = self.final().values()
        return {
            "decisions": len(self.decisions),
            "selected": sum(1 for d in final if d.verdict == "selected"),
            "rejected": sum(1 for d in final if d.verdict == "rejected"),
        }

    def as_dict(self):
        return {
            "counts": self.counts(),
            "decisions": [d.as_dict() for d in self.decisions],
        }

    @classmethod
    def from_dict(cls, data):
        ledger = cls()
        for entry in data.get("decisions", ()):
            ledger.decisions.append(SelectionDecision.from_dict(entry))
        return ledger


class RuntimeLedger:
    """Per-pc dpred outcome aggregates plus run-level totals.

    The simulator folds its per-branch counter lists in once per run
    via :meth:`record_run`; multiple runs accumulate (a campaign cell
    or an ``explain`` invocation normally records exactly one DMP run).
    """

    def __init__(self):
        #: pc -> counter list aligned with :data:`RUNTIME_COUNTERS`.
        self._branches = {}
        #: One totals dict per recorded run (see :meth:`record_run`).
        self.runs = []

    def __len__(self):
        return len(self._branches)

    def _counters(self, pc):
        counters = self._branches.get(pc)
        if counters is None:
            counters = self._branches[pc] = [0] * len(RUNTIME_COUNTERS)
        return counters

    def record_run(self, label, per_branch, stats):
        """Fold one run's per-pc counter lists and SimStats totals in."""
        for pc, counters in per_branch.items():
            mine = self._counters(pc)
            for index, value in enumerate(counters):
                mine[index] += value
        self.runs.append({
            "label": label,
            "cycles": stats.cycles,
            "retired_instructions": stats.retired_instructions,
            "mispredictions": stats.mispredictions,
            "pipeline_flushes": stats.pipeline_flushes,
            "dpred_episodes": stats.dpred_episodes,
            "dpred_episodes_merged": stats.dpred_episodes_merged,
            "dpred_flushes_avoided": stats.dpred_flushes_avoided,
            "dpred_wrong_path_insts": stats.dpred_wrong_path_insts,
            "dpred_select_uops": stats.dpred_select_uops,
        })

    def remapped(self, pc_map):
        """A new ledger with branch pcs translated through ``pc_map``.

        Counters of pcs mapping to the same translated pc sum; the
        per-run totals carry over unchanged (:meth:`reconcile` is
        pc-agnostic, so consistency is preserved).
        """
        ledger = RuntimeLedger()
        for pc, counters in self._branches.items():
            mine = ledger._counters(pc_map.get(pc, pc))
            for index, value in enumerate(counters):
                mine[index] += value
        ledger.runs = [dict(run) for run in self.runs]
        return ledger

    def branch(self, pc):
        """The named counter dict for one pc (zeros when unseen)."""
        counters = self._branches.get(pc, [0] * len(RUNTIME_COUNTERS))
        return dict(zip(RUNTIME_COUNTERS, counters))

    def pcs(self):
        return sorted(self._branches)

    def branches(self):
        return {pc: self.branch(pc) for pc in self.pcs()}

    def totals(self):
        """Sum of every per-pc counter across the ledger."""
        sums = [0] * len(RUNTIME_COUNTERS)
        for counters in self._branches.values():
            for index, value in enumerate(counters):
                sums[index] += value
        return dict(zip(RUNTIME_COUNTERS, sums))

    def run_totals(self):
        keys = (
            "pipeline_flushes", "dpred_episodes", "dpred_episodes_merged",
            "dpred_flushes_avoided", "dpred_wrong_path_insts",
            "dpred_select_uops",
        )
        return {key: sum(run[key] for run in self.runs) for key in keys}

    def reconcile(self):
        """Per-branch sums vs. the recorded run totals — must be exact.

        Returns a dict with one ``{"ledger": x, "stats": y}`` entry per
        reconciled counter and a ``consistent`` flag.  A mismatch means
        the simulator attributed an outcome to no branch (or double
        counted one), which would make any per-branch diagnosis lie.
        """
        branch = self.totals()
        runs = self.run_totals()
        pairs = {
            "episodes": (branch["episodes"], runs["dpred_episodes"]),
            "merged": (branch["merged"], runs["dpred_episodes_merged"]),
            "flushes_avoided": (
                branch["flushes_avoided"], runs["dpred_flushes_avoided"]
            ),
            "flushes": (branch["flushes"], runs["pipeline_flushes"]),
            "wrong_path_insts": (
                branch["wrong_path_insts"], runs["dpred_wrong_path_insts"]
            ),
            "select_uops": (
                branch["select_uops"], runs["dpred_select_uops"]
            ),
        }
        result = {
            key: {"ledger": mine, "stats": theirs}
            for key, (mine, theirs) in pairs.items()
        }
        result["consistent"] = all(
            mine == theirs for mine, theirs in pairs.values()
        )
        return result

    def as_dict(self):
        return {
            "branches": {
                str(pc): self.branch(pc) for pc in self.pcs()
            },
            "runs": list(self.runs),
            "totals": self.totals(),
            "reconciliation": self.reconcile(),
        }

    @classmethod
    def from_dict(cls, data):
        ledger = cls()
        for pc_str, entry in data.get("branches", {}).items():
            counters = ledger._counters(int(pc_str))
            for index, name in enumerate(RUNTIME_COUNTERS):
                counters[index] += entry.get(name, 0)
        ledger.runs = list(data.get("runs", ()))
        return ledger

    @classmethod
    def from_trace(cls, path):
        """Rebuild a runtime ledger from a JSONL trace log.

        Uses the dpred episode events (``start``/``merge``/``end``/
        ``flush``/``extend``) plus ``uarch.pipeline.flush`` and
        ``sim.run.end``.  Corrupt lines (a torn tail from a crash) are
        skipped, matching the campaign journal's contract; the count is
        exposed as ``ledger.corrupt_lines``.
        """
        from repro.obs.tracer import iter_records

        index = {name: i for i, name in enumerate(RUNTIME_COUNTERS)}
        episodes = index["episodes"]
        avoided = index["flushes_avoided"]
        flushes = index["flushes"]
        merged = index["merged"]
        unmerged = index["unmerged"]
        squashed = index["squashed"]
        wrong_path = index["wrong_path_insts"]
        selects = index["select_uops"]
        cycles = index["episode_cycles"]

        ledger = cls()
        corrupt = []
        for record in iter_records(path, strict=False, corrupt=corrupt):
            kind = record.get("type")
            if kind == "dpred.episode.start":
                counters = ledger._counters(record["branch_pc"])
                counters[episodes] += 1
                counters[wrong_path] += record.get("wrong_path_insts", 0)
                counters[selects] += record.get("select_uops", 0)
                if record.get("mispredicted"):
                    counters[avoided] += 1
            elif kind == "dpred.episode.merge":
                counters = ledger._counters(record["branch_pc"])
                counters[merged] += 1
                counters[selects] += record.get("select_uops", 0)
                counters[cycles] += record.get("duration_cycles", 0)
            elif kind == "dpred.episode.end":
                counters = ledger._counters(record["branch_pc"])
                counters[unmerged] += 1
                counters[cycles] += record.get("duration_cycles", 0)
            elif kind == "dpred.episode.flush":
                counters = ledger._counters(record["branch_pc"])
                counters[squashed] += 1
                counters[cycles] += record.get("duration_cycles", 0)
            elif kind == "dpred.episode.extend":
                counters = ledger._counters(record["branch_pc"])
                counters[avoided] += 1
                counters[wrong_path] += record.get("extra_insts", 0)
            elif kind == "uarch.pipeline.flush":
                ledger._counters(record["pc"])[flushes] += 1
            elif kind == "sim.run.end":
                ledger.runs.append({
                    "label": record.get("label", ""),
                    "cycles": record.get("cycles", 0),
                    "retired_instructions": record.get(
                        "retired_instructions", 0),
                    "mispredictions": record.get("mispredictions", 0),
                    "pipeline_flushes": record.get("pipeline_flushes", 0),
                    "dpred_episodes": record.get("dpred_episodes", 0),
                    "dpred_episodes_merged": record.get(
                        "dpred_episodes_merged", 0),
                    "dpred_flushes_avoided": record.get(
                        "dpred_flushes_avoided", 0),
                    "dpred_wrong_path_insts": record.get(
                        "dpred_wrong_path_insts", 0),
                    "dpred_select_uops": record.get(
                        "dpred_select_uops", 0),
                })
        ledger.corrupt_lines = len(corrupt)
        return ledger
