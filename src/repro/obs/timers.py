"""Phase timers: where does the wall-clock go?

The experiment harness spends its time in four phases — functional
trace generation, profiling, diverge-branch selection, and timing
simulation.  :func:`phase` wraps one such region, records wall-clock
seconds (and an optional event count, for events/sec throughput) into
a :class:`PhaseProfile`, mirrors both into the metrics registry, and
emits a :class:`~repro.obs.events.PhaseEnd` trace event when tracing
is on.

Since the span refactor, :class:`PhaseProfile` is a *depth-1 view*
over a hierarchical :class:`~repro.obs.spans.SpanTree` (exposed as
``profile.spans``): ``phase()`` and :meth:`PhaseProfile.record` write
flat depth-1 paths with unchanged snapshot/report shapes, while nested
``span()`` regions share the same tree and travel with it through the
parallel engine's snapshot merge.

Usage::

    with phase("simulate") as ph:
        stats = simulator.run(trace)
        ph.events = stats.retired_instructions
"""

import time
from contextlib import contextmanager

from repro.obs.spans import SpanTree


class PhaseHandle:
    """Mutable box the ``with phase(...)`` body fills in."""

    __slots__ = ("name", "events")

    def __init__(self, name):
        self.name = name
        self.events = 0


class PhaseProfile:
    """Accumulated wall-clock and throughput per named phase.

    A depth-1 view over ``self.spans`` (a :class:`SpanTree`): phase
    records land at path ``(name,)``, and :meth:`as_dict` keeps the
    original flat snapshot shape byte-for-byte.
    """

    def __init__(self, spans=None):
        self.spans = spans if spans is not None else SpanTree()

    def record(self, name, seconds, events=0):
        self.spans.record((name,), seconds, events=events)

    def __len__(self):
        return len(self.spans.roots())

    def __contains__(self, name):
        return (name,) in self.spans

    def seconds(self, name):
        return self.spans.seconds((name,))

    def merge_snapshot(self, snapshot):
        """Fold another profile's :meth:`as_dict` snapshot into this one.

        Used by the parallel engine to combine worker-process phase
        timings into the parent's profile (wall-clock sums across
        workers, so parallel runs report total CPU-seconds per phase).
        """
        for name, entry in snapshot.items():
            self.spans.record(
                (name,),
                entry.get("seconds", 0.0),
                events=entry.get("events", 0),
                calls=entry.get("calls", 0),
            )
        return self

    def merge_spans(self, snapshot):
        """Fold a full :meth:`spans_as_dict` snapshot (nested paths)."""
        self.spans.merge_snapshot(snapshot)
        return self

    def spans_as_dict(self):
        """The full hierarchical snapshot (see :meth:`SpanTree.as_dict`)."""
        return self.spans.as_dict()

    def as_dict(self):
        """JSON-ready flat snapshot including derived events/sec."""
        snapshot = {}
        for name in self.spans.roots():
            stored = self.spans.get((name,))
            entry = {
                "seconds": stored["seconds"],
                "events": stored["events"],
                "calls": stored["calls"],
            }
            entry["events_per_sec"] = (
                entry["events"] / entry["seconds"]
                if entry["seconds"] > 0 and entry["events"]
                else 0.0
            )
            snapshot[name] = entry
        return snapshot

    def report(self):
        """Human-readable per-phase summary (one line per phase)."""
        snapshot = self.as_dict()
        if not snapshot:
            return "no phases recorded"
        width = max(len(name) for name in snapshot)
        lines = ["phase timings:"]
        for name, entry in snapshot.items():
            line = (
                f"  {name.ljust(width)}  {entry['seconds']:8.3f}s"
                f"  x{entry['calls']}"
            )
            if entry["events"]:
                line += (
                    f"  {entry['events']} events"
                    f"  ({entry['events_per_sec']:,.0f}/s)"
                )
            lines.append(line)
        return "\n".join(lines)


@contextmanager
def phase(name, events=0, profile=None, metrics=None, tracer=None):
    """Time one phase; see the module docstring for the contract.

    ``profile``/``metrics``/``tracer`` default to the active telemetry
    context (:mod:`repro.obs.context`).
    """
    from repro.obs import context, tracectx

    profile = profile if profile is not None else context.get_phases()
    metrics = metrics if metrics is not None else context.get_metrics()
    tracer = tracer if tracer is not None else context.get_tracer()

    handle = PhaseHandle(name)
    handle.events = events
    ctx = tracectx.current()
    if ctx is not None:
        span_id, parent_id = ctx.enter_span()
        start_ts = time.time()
    start = time.perf_counter()
    try:
        yield handle
    finally:
        elapsed = time.perf_counter() - start
        profile.record(name, elapsed, handle.events)
        metrics.counter(f"phase_{name}_seconds_total").inc(elapsed)
        metrics.counter(f"phase_{name}_calls_total").inc()
        if handle.events:
            metrics.counter(f"phase_{name}_events_total").inc(handle.events)
        if tracer.enabled:
            from repro.obs.events import PhaseEnd

            tracer.emit(PhaseEnd(
                name=name, seconds=elapsed, events=handle.events
            ))
        if ctx is not None:
            ctx.exit_span(
                span_id, parent_id, name, name, start_ts, elapsed,
                elapsed, events=handle.events,
            )
