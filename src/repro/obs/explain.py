"""``python -m repro explain``: estimate vs. observed, per static branch.

Joins the :class:`~repro.obs.ledger.SelectionLedger` (who marked or
rejected each candidate, under which rule, at what estimated cost) with
the :class:`~repro.obs.ledger.RuntimeLedger` (what the simulator then
measured per pc) for one workload under one selection config.  The
output answers the question the paper's §4 cost model begs: *was the
estimate right?*  For every selected branch the observed net benefit is

    observed_benefit = flushes_avoided · misp_penalty
    observed_overhead = (wrong_path_insts + select_uops) / fetch_width
    observed_net = observed_benefit − observed_overhead

in the same units as Equation (1)'s ``dpred_cost`` (fetch cycles;
``est_net_benefit = −dpred_cost`` per episode), so a branch whose
per-episode observed net disagrees in *sign* with the estimate is
flagged ``misestimated``.

The join also powers ``campaign report --explain``
(:func:`cell_ledger_summary` is the compact per-cell form journaled
next to the cache counters) and the CI smoke test
(:func:`validate_explain` checks the ``--json`` output against
``docs/schemas/explain.schema.json`` without needing the jsonschema
package).
"""

import argparse
import json
import sys

from repro.errors import WorkloadError
from repro.obs.ledger import RUNTIME_COUNTERS, RuntimeLedger, SelectionLedger


# ---------------------------------------------------------------------------
# The join
# ---------------------------------------------------------------------------


def observed_outcome(counters, cost_params):
    """Observed cost/benefit (Equation-1 units) from runtime counters.

    ``counters`` is a named counter dict
    (:meth:`~repro.obs.ledger.RuntimeLedger.branch`); returns a dict
    with total and per-episode cycles.
    """
    fetch_width = max(1, cost_params.fetch_width)
    overhead = (
        counters["wrong_path_insts"] + counters["select_uops"]
    ) / fetch_width
    benefit = counters["flushes_avoided"] * cost_params.misp_penalty
    net = benefit - overhead
    episodes = counters["episodes"]
    return {
        "overhead_cycles": overhead,
        "benefit_cycles": benefit,
        "net_cycles": net,
        "net_per_episode": (net / episodes) if episodes else 0.0,
    }


def _is_misestimated(decision, counters, observed):
    """Sign disagreement between the estimate and the measurement.

    Only meaningful for selected branches that actually entered
    dpred-mode and carried a cost-model estimate.
    """
    if decision.verdict != "selected":
        return False
    if decision.est_cost is None or not counters["episodes"]:
        return False
    est_net = decision.est_net_benefit
    return (est_net >= 0.0) != (observed["net_per_episode"] >= 0.0)


def join_ledgers(selection, runtime, cost_params):
    """Per-branch join of compile-time verdicts and runtime outcomes.

    Returns ``(branches, summary)``: a list of per-branch entries
    (selection decisions first, then runtime-only pcs such as return
    flush sites) and the run-level summary.
    """
    final = selection.final()
    entries = []
    pcs = sorted(set(final) | set(runtime.pcs()))
    for pc in pcs:
        decision = final.get(pc)
        counters = runtime.branch(pc)
        observed = observed_outcome(counters, cost_params)
        if decision is not None:
            # A transform pass records the branches it removed with
            # reason "melded"; report them under their own verdict so
            # the join never claims a rewritten-away pc is missing.
            verdict = decision.verdict
            if verdict == "rejected" and decision.reason == "melded":
                verdict = "melded"
            entry = {
                "branch_pc": pc,
                "verdict": verdict,
                "pass": decision.pass_name,
                "reason": decision.reason,
                "rule": decision.rule,
                "kind": decision.kind,
                "est": {
                    "overhead": decision.est_overhead,
                    "cost": decision.est_cost,
                    "net_benefit": decision.est_net_benefit,
                    "flush_savings": decision.est_flush_savings,
                    "merge_prob": decision.merge_prob,
                },
                "decisions": len(selection.history(pc)),
            }
        else:
            entry = {
                "branch_pc": pc,
                "verdict": "unconsidered",
                "pass": "",
                "reason": "",
                "rule": "",
                "kind": "",
                "est": {
                    "overhead": None,
                    "cost": None,
                    "net_benefit": None,
                    "flush_savings": None,
                    "merge_prob": None,
                },
                "decisions": 0,
            }
        entry["runtime"] = counters
        entry["observed"] = observed
        entry["misestimated"] = (
            _is_misestimated(decision, counters, observed)
            if decision is not None else False
        )
        entries.append(entry)

    totals = runtime.totals()
    reconciliation = runtime.reconcile()
    counts = selection.counts()
    misestimated = sorted(
        e["branch_pc"] for e in entries if e["misestimated"]
    )
    summary = {
        "selected": counts["selected"],
        "rejected": counts["rejected"],
        "melded": sum(1 for e in entries if e["verdict"] == "melded"),
        "decisions": counts["decisions"],
        "episodes": totals["episodes"],
        "episodes_merged": totals["merged"],
        "flushes_avoided": totals["flushes_avoided"],
        "flushes_taken": totals["flushes"],
        "observed_net_cycles": sum(
            e["observed"]["net_cycles"] for e in entries
            if e["verdict"] == "selected"
        ),
        "misestimated": misestimated,
        "consistent": reconciliation["consistent"],
    }
    return entries, summary


def build_explain(workload, selection_config, input_set="reduced",
                  scale=1.0, processor_config=None):
    """Run profile → select → simulate with ledgers and join them.

    Program-rewriting configs (``meld=...``) take the meld-aware path:
    the simulator runs the *melded* trace, and both ledgers are
    translated back into original pc space so the report lines up with
    the original disassembly — branches the transform removed appear
    with verdict ``"melded"`` instead of going missing.
    """
    from repro.experiments.runner import run_selection

    if getattr(selection_config, "meld", None) is not None:
        return _build_explain_melded(
            workload, selection_config, input_set, scale,
            processor_config,
        )
    selection = SelectionLedger()
    runtime = RuntimeLedger()
    stats, annotation = run_selection(
        workload, selection_config,
        input_set=input_set, scale=scale, config=processor_config,
        selection_ledger=selection, runtime_ledger=runtime,
    )
    return _assemble_explain(
        workload, selection_config, input_set, scale,
        stats, selection, runtime, len(annotation),
    )


def _build_explain_melded(workload, selection_config, input_set, scale,
                          processor_config):
    """The meld-aware explain path (see :func:`build_explain`)."""
    from repro.experiments.meldcompare import melded_run
    from repro.uarch import make_simulator

    selection = SelectionLedger()
    runtime = RuntimeLedger()
    state, program, trace = melded_run(
        workload, selection_config, input_set=input_set, scale=scale,
        ledger=selection,
    )
    stats = make_simulator(
        program, config=processor_config, annotation=state.annotation,
        ledger=runtime,
    ).run(trace, label=f"{workload}/{selection_config.name}")
    melded_pcs = []
    if state.transform is not None:
        # Post-meld decisions and runtime counters carry melded-program
        # pcs; the removal records (reason "melded") are already in
        # original pc space and must not be translated.
        inverse = state.transform.inverse_pc_map()
        selection = selection.remapped(inverse, keep_reasons=("melded",))
        runtime = runtime.remapped(inverse)
        melded_pcs = sorted(state.transform.melded)
    data = _assemble_explain(
        workload, selection_config, input_set, scale,
        stats, selection, runtime, len(state.annotation),
    )
    data["melded_branches"] = melded_pcs
    return data


def _assemble_explain(workload, selection_config, input_set, scale,
                      stats, selection, runtime, annotated_branches):
    branches, summary = join_ledgers(
        selection, runtime, selection_config.cost_params
    )
    return {
        "workload": workload,
        "config": selection_config.name,
        "scale": scale,
        "input_set": input_set,
        "run": {
            "label": stats.label,
            "cycles": stats.cycles,
            "retired_instructions": stats.retired_instructions,
            "ipc": stats.ipc,
            "mispredictions": stats.mispredictions,
            "pipeline_flushes": stats.pipeline_flushes,
            "dpred_episodes": stats.dpred_episodes,
            "dpred_episodes_merged": stats.dpred_episodes_merged,
            "dpred_flushes_avoided": stats.dpred_flushes_avoided,
            "dpred_wrong_path_insts": stats.dpred_wrong_path_insts,
            "dpred_select_uops": stats.dpred_select_uops,
        },
        "selection": selection.counts(),
        "reconciliation": runtime.reconcile(),
        "branches": branches,
        "summary": summary,
        "annotated_branches": annotated_branches,
        "history": {
            str(pc): [d.as_dict() for d in selection.history(pc)]
            for pc in sorted(
                {d.branch_pc for d in selection.decisions}
            )
        },
    }


def cell_ledger_summary(selection, runtime, cost_params):
    """The compact per-cell form a campaign journals with each cell.

    Small enough to live in the journal (no per-branch counter lists),
    rich enough for ``campaign report --explain``: decision counts,
    episode outcome totals, the observed net cycles over selected
    branches, the misestimated pcs, and the reconciliation flag.
    """
    branches, summary = join_ledgers(selection, runtime, cost_params)
    return {
        "selected": summary["selected"],
        "rejected": summary["rejected"],
        "episodes": summary["episodes"],
        "flushes_avoided": summary["flushes_avoided"],
        "flushes_taken": summary["flushes_taken"],
        "observed_net_cycles": round(summary["observed_net_cycles"], 3),
        "misestimated": summary["misestimated"],
        "consistent": summary["consistent"],
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt(value, digits=1):
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_explain(data, branch=None, top=10):
    """Render :func:`build_explain` output as plain text."""
    run = data["run"]
    summary = data["summary"]
    lines = [
        f"explain: {data['workload']} under {data['config']} "
        f"(scale {data['scale']:g})",
        f"  run: {run['cycles']} cycles, "
        f"{run['retired_instructions']} insts (IPC {run['ipc']:.3f}), "
        f"{run['pipeline_flushes']} flushes, "
        f"{run['dpred_episodes']} episodes "
        f"({run['dpred_episodes_merged']} merged, "
        f"{run['dpred_flushes_avoided']} flushes avoided)",
        f"  selection: {summary['selected']} selected, "
        f"{summary['rejected']} rejected"
        + (f", {summary['melded']} melded (statically if-converted)"
           if summary.get("melded") else "")
        + f" ({summary['decisions']} decisions)",
        "  ledger reconciliation vs run totals: "
        + ("EXACT" if summary["consistent"] else "MISMATCH"),
    ]
    if data.get("corrupt_lines"):
        lines.append(
            f"  WARNING: skipped {data['corrupt_lines']} corrupt trace "
            f"line(s) — torn tail from a crash?"
        )

    if branch is not None:
        return "\n".join(lines + _branch_detail(data, branch))

    selected = [
        e for e in data["branches"] if e["verdict"] == "selected"
    ]
    if selected:
        ranked = sorted(
            selected, key=lambda e: -abs(e["observed"]["net_cycles"])
        )[:top]
        lines.append("")
        lines.append(
            f"selected branches by |observed net cycles| (top {top}):"
        )
        lines.append(
            "    pc      pass    rule                 est/ep   obs/ep"
            "   net-cycles  episodes  flag"
        )
        for entry in ranked:
            observed = entry["observed"]
            lines.append(
                f"    {entry['branch_pc']:<7} {entry['pass']:<7} "
                f"{entry['rule']:<20} "
                f"{_fmt(entry['est']['net_benefit']):>7} "
                f"{_fmt(observed['net_per_episode']):>7} "
                f"{observed['net_cycles']:>11.1f} "
                f"{entry['runtime']['episodes']:>9}  "
                f"{'MISESTIMATED' if entry['misestimated'] else ''}"
            )
        lines.append(
            f"  observed net over selected branches: "
            f"{summary['observed_net_cycles']:.1f} cycles"
        )

    if summary["misestimated"]:
        lines.append("")
        lines.append(
            f"mis-estimated branches (estimate and observation disagree "
            f"in sign): {len(summary['misestimated'])}"
        )
        for pc in summary["misestimated"]:
            entry = next(
                e for e in data["branches"] if e["branch_pc"] == pc
            )
            lines.append(
                f"    pc {pc}: est {_fmt(entry['est']['net_benefit'])} "
                f"cycles/episode, observed "
                f"{_fmt(entry['observed']['net_per_episode'])} "
                f"over {entry['runtime']['episodes']} episodes "
                f"(selected by {entry['pass']} via {entry['rule']})"
            )
    else:
        lines.append("")
        lines.append("no mis-estimated branches (all estimates agree "
                     "in sign with the measurements)")
    return "\n".join(lines)


def _branch_detail(data, branch):
    """The ``--branch PC`` drill-down: full history + outcomes."""
    lines = [""]
    entry = next(
        (e for e in data["branches"] if e["branch_pc"] == branch), None
    )
    if entry is None:
        lines.append(f"branch pc {branch}: never considered and never "
                     f"seen at runtime")
        return lines
    lines.append(
        f"branch pc {branch}: {entry['verdict']}"
        + (f" by pass {entry['pass']!r} via rule {entry['rule']!r}"
           if entry["pass"] else "")
    )
    history = data.get("history", {}).get(str(branch), [])
    if history:
        lines.append("  decision history (pipeline order):")
        for decision in history:
            cost = decision.get("est_cost")
            lines.append(
                f"    [{decision['pass']}] {decision['verdict']} "
                f"({decision['reason']}; rule {decision['rule']}"
                + (f"; dpred_cost {cost:.2f}" if cost is not None else "")
                + ")"
            )
    est = entry["est"]
    if est["cost"] is not None:
        lines.append(
            f"  estimate: overhead {_fmt(est['overhead'], 2)} "
            f"cycles/episode, cost {_fmt(est['cost'], 2)} "
            f"(net {_fmt(est['net_benefit'], 2)}), "
            f"flush savings {_fmt(est['flush_savings'], 2)}, "
            f"merge prob {_fmt(est['merge_prob'], 3)}"
        )
    runtime = entry["runtime"]
    lines.append(
        "  runtime: "
        + ", ".join(f"{name} {runtime[name]}"
                    for name in RUNTIME_COUNTERS)
    )
    observed = entry["observed"]
    lines.append(
        f"  observed: benefit {observed['benefit_cycles']:.1f} − "
        f"overhead {observed['overhead_cycles']:.1f} = net "
        f"{observed['net_cycles']:.1f} cycles "
        f"({observed['net_per_episode']:.2f}/episode)"
        + ("  MISESTIMATED" if entry["misestimated"] else "")
    )
    return lines


# ---------------------------------------------------------------------------
# Minimal JSON-schema validation (the container has no jsonschema)
# ---------------------------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_explain(data, schema, path="$"):
    """Validate ``data`` against a small JSON-schema subset.

    Supports ``type`` (string or list), ``properties``, ``required``,
    ``items``, ``enum``, and ``additionalProperties: false`` — enough
    for ``docs/schemas/explain.schema.json``.  Returns a list of
    ``"path: message"`` strings (empty = valid).
    """
    errors = []
    expected = schema.get("type")
    if expected is not None:
        types = [expected] if isinstance(expected, str) else expected
        if not any(_TYPE_CHECKS[t](data) for t in types):
            errors.append(
                f"{path}: expected {'|'.join(types)}, "
                f"got {type(data).__name__}"
            )
            return errors
    if "enum" in schema and data not in schema["enum"]:
        errors.append(f"{path}: {data!r} not in enum {schema['enum']}")
    if isinstance(data, dict):
        for name in schema.get("required", ()):
            if name not in data:
                errors.append(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        for name, subschema in properties.items():
            if name in data:
                errors.extend(validate_explain(
                    data[name], subschema, f"{path}.{name}"
                ))
        if schema.get("additionalProperties") is False:
            for name in data:
                if name not in properties:
                    errors.append(f"{path}: unexpected key {name!r}")
    if isinstance(data, list) and "items" in schema:
        for index, item in enumerate(data):
            errors.extend(validate_explain(
                item, schema["items"], f"{path}[{index}]"
            ))
    return errors


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _resolve_config(args, parser):
    from repro.compiler import registry
    from repro.compiler.pipeline import parse_spec

    if args.pipeline:
        try:
            return parse_spec(args.pipeline)
        except ValueError as exc:
            parser.error(str(exc))
    # Case-insensitive: the paper's figure legends capitalize
    # ("All-best-cost") while the registry is lowercase.
    name = args.config.lower()
    try:
        return registry.resolve(name)
    except KeyError as exc:
        parser.error(exc.args[0])


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description=(
            "Attribute runtime dpred outcomes back to compile-time "
            "selection decisions for one workload."
        ),
    )
    parser.add_argument("workload", help="benchmark name (e.g. mcf)")
    parser.add_argument(
        "--config", default="all-best-cost",
        help="selection preset (case-insensitive; default "
             "all-best-cost)",
    )
    parser.add_argument(
        "--pipeline", default=None, metavar="SPEC",
        help="explicit pipeline spec instead of --config "
             "(e.g. 'exact,freq,short,ret,loop,cost:edge')",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="trace-length multiplier (default 1.0)",
    )
    parser.add_argument(
        "--input-set", default="reduced",
        help="workload input set (default: reduced)",
    )
    parser.add_argument(
        "--branch", type=lambda s: int(s, 0), default=None, metavar="PC",
        help="drill into one branch pc (decimal or 0x hex)",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="branches shown in the text report (default 10)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full join as JSON instead of text",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout "
             "(parent directories are created)",
    )
    args = parser.parse_args(argv)
    selection_config = _resolve_config(args, parser)

    try:
        data = build_explain(
            args.workload, selection_config,
            input_set=args.input_set, scale=args.scale,
        )
    except (KeyError, WorkloadError) as exc:
        print(f"python -m repro explain: error: {exc.args[0]}",
              file=sys.stderr)
        return 1

    if args.json:
        text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    else:
        text = format_explain(
            data, branch=args.branch, top=args.top
        ) + "\n"

    if args.output:
        from repro.ioutil import ensure_parent

        with open(ensure_parent(args.output), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
        print(f"[obs] explain report written to {args.output}")
    else:
        sys.stdout.write(text)
    if not data["reconciliation"]["consistent"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
