"""The structured event tracer and its sinks.

The hot-loop contract: callers keep a local ``traced = tracer.enabled``
(or test ``tracer.enabled`` directly) and only construct/emit events
when it is true.  The default :data:`NULL_TRACER` therefore costs one
attribute check per guarded site and nothing else.

Sinks are pluggable: anything with ``write(record: dict)`` and
``close()`` works.  :class:`JsonlSink` appends one JSON object per
line; :class:`ListSink` collects records in memory (tests, in-process
analysis).  :func:`read_events` / :func:`iter_records` read a JSONL
log back as typed events / raw dicts.
"""

import json

from repro.ioutil import ensure_parent
from repro.obs import tracectx
from repro.obs.events import from_record, to_record


class NullTracer:
    """The disabled tracer: emits nothing, closes nothing."""

    __slots__ = ()

    enabled = False

    def emit(self, event_obj):
        pass

    def close(self):
        pass


#: Shared default instance — there is no state to isolate.
NULL_TRACER = NullTracer()


class Tracer:
    """Writes typed events to a sink, stamping a sequence number."""

    __slots__ = ("sink", "seq")

    enabled = True

    def __init__(self, sink):
        self.sink = sink
        self.seq = 0

    def emit(self, event_obj):
        record = to_record(event_obj)
        record["seq"] = self.seq
        self.seq += 1
        ctx = tracectx.current()
        if ctx is not None:
            record["trace_id"] = ctx.trace_id
            span_id = ctx.current_span_id()
            if span_id:
                record["span_id"] = span_id
        self.sink.write(record)

    def close(self):
        self.sink.close()


class JsonlSink:
    """Appends records as JSON lines to a file path or file object."""

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._handle = path_or_file
            self._owns_handle = False
            self.path = getattr(path_or_file, "name", None)
        else:
            ensure_parent(path_or_file)
            self._handle = open(path_or_file, "w", encoding="utf-8")
            self._owns_handle = True
            self.path = path_or_file

    def write(self, record):
        self._handle.write(json.dumps(record, sort_keys=False))
        self._handle.write("\n")

    def close(self):
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


class ListSink:
    """Collects records in memory (``sink.records``)."""

    def __init__(self):
        self.records = []
        self.closed = False

    def write(self, record):
        self.records.append(record)

    def close(self):
        self.closed = True

    def events(self):
        """The collected records as typed events."""
        return [from_record(r) for r in self.records]


def jsonl_tracer(path):
    """Convenience: a :class:`Tracer` writing JSONL to ``path``."""
    return Tracer(JsonlSink(path))


def iter_records(path, strict=True, corrupt=None):
    """Yield raw record dicts from a JSONL trace log.

    With ``strict=True`` (the default) a malformed line raises
    :class:`ValueError` with the path and line number.  With
    ``strict=False`` the bad line is skipped — matching the campaign
    journal's torn-tail contract, since a crash mid-write legitimately
    truncates the final line — and, when ``corrupt`` is a list, a
    ``(line_number, message)`` pair is appended per skipped line so
    consumers can surface a warning.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_number}: bad trace record: {exc}"
                    ) from exc
                if corrupt is not None:
                    corrupt.append((line_number, str(exc)))


def read_events(path):
    """Read a JSONL trace log back as a list of typed events."""
    return [from_record(record) for record in iter_records(path)]
