"""Offline summarization of a JSONL event trace.

``python -m repro trace-report OUT.jsonl`` answers the questions a raw
log cannot: which branches' dpred episodes merge vs. get squashed,
where the remaining pipeline flushes come from, and what the selector
decided (and why).  The summary also reconciles per-event counts
against the ``sim.run.end`` totals — a mismatch means events were
dropped, which would make any trace-driven diagnosis untrustworthy.
"""

from collections import Counter as TallyCounter

from repro.obs.tracer import iter_records


def summarize_trace(path, trace_id=None):
    """Aggregate one JSONL trace log into a summary dict.

    ``trace_id``, when given, keeps only events stamped with that
    distributed trace id (see docs/observability.md) — events without
    a ``trace_id`` field are filtered out too, so the summary covers
    exactly one request/campaign.  ``trace_ids`` in the returned dict
    tallies every id seen before filtering, so a wrong ``--trace-id``
    is diagnosable from the report itself.
    """
    by_type = TallyCounter()
    trace_ids = TallyCounter()
    filtered_events = 0
    branches = {}
    flush_sources = TallyCounter()
    selection = {
        "selected": 0,
        "rejected": 0,
        "selected_by_source": TallyCounter(),
        "rejected_by_reason": TallyCounter(),
    }
    runs = []
    phases = {}
    spans = {}
    total = 0
    corrupt = []

    def branch_entry(pc):
        entry = branches.get(pc)
        if entry is None:
            entry = branches[pc] = {
                "episodes": 0,
                "merged": 0,
                "unmerged": 0,
                "flushed": 0,
                "flushes_avoided": 0,
                "wrong_path_insts": 0,
                "select_uops": 0,
            }
        return entry

    # Torn-tail tolerant: a crash mid-write truncates the final line;
    # everything durably written before it still summarizes.
    for record in iter_records(path, strict=False, corrupt=corrupt):
        record_trace = record.get("trace_id")
        if record_trace:
            trace_ids[record_trace] += 1
        if trace_id is not None and record_trace != trace_id:
            filtered_events += 1
            continue
        total += 1
        kind = record.get("type", "unknown")
        by_type[kind] += 1
        if kind == "dpred.episode.start":
            entry = branch_entry(record["branch_pc"])
            entry["episodes"] += 1
            entry["wrong_path_insts"] += record.get("wrong_path_insts", 0)
            if record.get("mispredicted"):
                entry["flushes_avoided"] += 1
        elif kind == "dpred.episode.merge":
            entry = branch_entry(record["branch_pc"])
            entry["merged"] += 1
            entry["select_uops"] += record.get("select_uops", 0)
        elif kind == "dpred.episode.end":
            branch_entry(record["branch_pc"])["unmerged"] += 1
        elif kind == "dpred.episode.flush":
            branch_entry(record["branch_pc"])["flushed"] += 1
        elif kind == "dpred.episode.extend":
            entry = branch_entry(record["branch_pc"])
            entry["flushes_avoided"] += 1
            entry["wrong_path_insts"] += record.get("extra_insts", 0)
        elif kind == "uarch.pipeline.flush":
            flush_sources[(record["pc"], record.get("source", ""))] += 1
        elif kind == "select.branch.selected":
            selection["selected"] += 1
            selection["selected_by_source"][record.get("source", "")] += 1
        elif kind == "select.branch.rejected":
            selection["rejected"] += 1
            selection["rejected_by_reason"][record.get("reason", "")] += 1
        elif kind == "sim.run.end":
            runs.append({
                "label": record.get("label", ""),
                "cycles": record.get("cycles", 0),
                "retired_instructions": record.get(
                    "retired_instructions", 0),
                "pipeline_flushes": record.get("pipeline_flushes", 0),
                "dpred_episodes": record.get("dpred_episodes", 0),
                "dpred_episodes_merged": record.get(
                    "dpred_episodes_merged", 0),
            })
        elif kind == "phase.end":
            entry = phases.setdefault(
                record.get("name", ""),
                {"seconds": 0.0, "events": 0, "calls": 0},
            )
            entry["seconds"] += record.get("seconds", 0.0)
            entry["events"] += record.get("events", 0)
            entry["calls"] += 1
        elif kind == "span.end":
            entry = spans.setdefault(
                record.get("path", record.get("name", "")),
                {"seconds": 0.0, "self_seconds": 0.0,
                 "events": 0, "calls": 0, "span_ids": []},
            )
            entry["seconds"] += record.get("seconds", 0.0)
            entry["self_seconds"] += record.get(
                "self_seconds", record.get("seconds", 0.0))
            entry["events"] += record.get("events", 0)
            entry["calls"] += 1
            if record.get("span_id"):
                entry["span_ids"].append(record["span_id"])

    reconciliation = {
        "episode_starts": by_type.get("dpred.episode.start", 0),
        "episode_merges": by_type.get("dpred.episode.merge", 0),
        "pipeline_flushes": by_type.get("uarch.pipeline.flush", 0),
        "run_dpred_episodes": sum(r["dpred_episodes"] for r in runs),
        "run_dpred_episodes_merged": sum(
            r["dpred_episodes_merged"] for r in runs
        ),
        "run_pipeline_flushes": sum(r["pipeline_flushes"] for r in runs),
    }
    reconciliation["consistent"] = (
        reconciliation["episode_starts"]
        == reconciliation["run_dpred_episodes"]
        and reconciliation["episode_merges"]
        == reconciliation["run_dpred_episodes_merged"]
        and reconciliation["pipeline_flushes"]
        == reconciliation["run_pipeline_flushes"]
    )

    return {
        "path": path,
        "trace_id": trace_id,
        "trace_ids": dict(sorted(trace_ids.items())),
        "filtered_events": filtered_events,
        "total_events": total,
        "corrupt_lines": len(corrupt),
        "by_type": dict(sorted(by_type.items())),
        "branches": branches,
        "flush_sources": flush_sources,
        "selection": selection,
        "runs": runs,
        "phases": phases,
        "spans": spans,
        "reconciliation": reconciliation,
    }


def format_trace_report(summary, top=10):
    """Render :func:`summarize_trace` output as plain text."""
    lines = [
        f"trace report: {summary['path']}",
        f"  events: {summary['total_events']}",
    ]
    if summary.get("trace_id"):
        lines.append(
            f"  filtered to trace {summary['trace_id']} "
            f"({summary.get('filtered_events', 0)} events from other "
            f"traces skipped)"
        )
    elif summary.get("trace_ids"):
        ids = summary["trace_ids"]
        lines.append(
            f"  distributed trace ids: {len(ids)} "
            f"(--trace-id filters to one)"
        )
        for tid, count in sorted(
            ids.items(), key=lambda kv: -kv[1]
        )[:top]:
            lines.append(f"    {tid}  {count} events")
    if summary.get("corrupt_lines"):
        lines.append(
            f"  WARNING: skipped {summary['corrupt_lines']} corrupt "
            f"line(s) — torn tail from a crash?"
        )
    for kind, count in summary["by_type"].items():
        lines.append(f"    {kind:<28} {count}")

    branches = summary["branches"]
    if branches:
        lines.append("")
        lines.append(f"per-branch dpred episode outcomes "
                     f"(top {top} by episodes):")
        lines.append(
            "    pc      episodes  merged  unmerged  flushed  "
            "avoided  wrong-path"
        )
        ranked = sorted(
            branches.items(), key=lambda kv: -kv[1]["episodes"]
        )[:top]
        for pc, entry in ranked:
            lines.append(
                f"    {pc:<7} {entry['episodes']:>8}  {entry['merged']:>6}"
                f"  {entry['unmerged']:>8}  {entry['flushed']:>7}"
                f"  {entry['flushes_avoided']:>7}"
                f"  {entry['wrong_path_insts']:>10}"
            )

    flushes = summary["flush_sources"]
    if flushes:
        lines.append("")
        lines.append(f"top {top} pipeline flush sources:")
        for (pc, source), count in flushes.most_common(top):
            lines.append(f"    pc {pc:<7} {source:<20} {count}")

    selection = summary["selection"]
    if selection["selected"] or selection["rejected"]:
        lines.append("")
        lines.append(
            f"selection decisions: {selection['selected']} selected, "
            f"{selection['rejected']} rejected"
        )
        for source, count in sorted(
            selection["selected_by_source"].items()
        ):
            lines.append(f"    selected via {source:<20} {count}")
        for reason, count in sorted(
            selection["rejected_by_reason"].items()
        ):
            lines.append(f"    rejected:    {reason:<20} {count}")

    if summary["runs"]:
        lines.append("")
        lines.append(f"simulation runs: {len(summary['runs'])}")
        for run in summary["runs"][:top]:
            lines.append(
                f"    {run['label'] or '(unlabelled)'}: "
                f"{run['retired_instructions']} insts, "
                f"{run['cycles']} cycles, "
                f"{run['dpred_episodes']} episodes "
                f"({run['dpred_episodes_merged']} merged), "
                f"{run['pipeline_flushes']} flushes"
            )
        if len(summary["runs"]) > top:
            lines.append(f"    ... and {len(summary['runs']) - top} more")

    if summary["phases"]:
        lines.append("")
        lines.append("phase timings (from trace):")
        for name, entry in sorted(summary["phases"].items()):
            lines.append(
                f"    {name:<12} {entry['seconds']:8.3f}s"
                f"  x{entry['calls']}  {entry['events']} events"
            )

    spans = summary.get("spans", {})
    if spans:
        # Same ordering as the profile CLI's hotspot table: self-time,
        # largest first (ties broken by path for determinism).
        ranked = sorted(
            spans.items(),
            key=lambda kv: (-kv[1]["self_seconds"], kv[0]),
        )[:top]
        with_ids = any(e.get("span_ids") for _, e in ranked)
        lines.append("")
        lines.append(f"top {top} spans by self-time:")
        lines.append(
            "    path                          self-s    total-s"
            "   calls      events"
            + ("  span-id" if with_ids else "")
        )
        for path, entry in ranked:
            row = (
                f"    {path:<28} {entry['self_seconds']:8.3f} "
                f"{entry['seconds']:10.3f} {entry['calls']:>7} "
                f"{entry['events']:>11}"
            )
            if with_ids:
                ids = entry.get("span_ids") or []
                if len(ids) == 1:
                    row += f"  {ids[0]}"
                elif ids:
                    row += f"  {ids[0]} +{len(ids) - 1}"
                else:
                    row += "  -"
            lines.append(row)

    recon = summary["reconciliation"]
    lines.append("")
    lines.append(
        "reconciliation vs sim.run.end totals: "
        + ("OK" if recon["consistent"] else "MISMATCH")
    )
    lines.append(
        f"    episode starts {recon['episode_starts']} "
        f"(runs say {recon['run_dpred_episodes']}), "
        f"merges {recon['episode_merges']} "
        f"(runs say {recon['run_dpred_episodes_merged']}), "
        f"flushes {recon['pipeline_flushes']} "
        f"(runs say {recon['run_pipeline_flushes']})"
    )
    return "\n".join(lines)
