"""Columnar / windowed views over traces for the batch-replay engine.

The compact :class:`~repro.emulator.trace.Trace` already stores the
dynamic stream as three parallel ``array('q')`` columns; numpy can view
those buffers zero-copy, which is what makes per-window precomputation
(fetch-group boundaries, predictor outcomes, cache latencies) in
:mod:`repro.uarch.vectorized` cheap.  Object traces (lists of
per-instruction records) are converted with one python pass.
"""

import numpy as np

from repro.emulator.trace import NO_ADDRESS, Trace, trace_rows


def trace_columns(trace):
    """Return ``(pcs, next_pcs, addresses)`` as int64 numpy arrays.

    For a compact :class:`Trace` the arrays are zero-copy (read-only
    semantics by convention: callers must not write through them).
    For any other trace shape accepted by :func:`trace_rows`, columns
    are materialized in one pass, mapping ``None`` addresses to
    :data:`NO_ADDRESS`.
    """
    if isinstance(trace, Trace):
        return (
            np.frombuffer(trace.pcs, dtype=np.int64),
            np.frombuffer(trace.next_pcs, dtype=np.int64),
            np.frombuffer(trace.addresses, dtype=np.int64),
        )
    n = len(trace)
    pcs = np.empty(n, dtype=np.int64)
    next_pcs = np.empty(n, dtype=np.int64)
    addresses = np.empty(n, dtype=np.int64)
    for i, (pc, next_pc, address) in enumerate(trace_rows(trace)):
        pcs[i] = pc
        next_pcs[i] = next_pc
        addresses[i] = NO_ADDRESS if address is None else address
    return pcs, next_pcs, addresses


def taken_flags(pcs, next_pcs):
    """Boolean vector: row left the fall-through path (``next != pc+1``).

    This is the emulator's own taken convention (HALT records
    ``next_pc == pc`` and therefore reads as taken, exactly like the
    scalar replay loop sees it).
    """
    return next_pcs != pcs + 1


def window_bounds(n, window_size):
    """``[(start, stop), ...]`` covering ``range(n)`` in fixed windows."""
    if window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")
    return [(s, min(n, s + window_size)) for s in range(0, n, window_size)]
