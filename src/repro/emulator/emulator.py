"""The functional emulator and dynamic traces."""

from dataclasses import dataclass

from repro.errors import EmulationError
from repro.isa.instructions import Opcode
from repro.emulator.state import ArchState
from repro.emulator.trace import Trace

#: Shift amounts are masked to the register width, like real hardware.
_SHIFT_MASK = 63

#: 64-bit two's-complement bounds used to wrap arithmetic results.
_WRAP = 1 << 64
_SIGN = 1 << 63


def _wrap64(value):
    """Wrap a Python int to a signed 64-bit value."""
    value &= _WRAP - 1
    return value - _WRAP if value & _SIGN else value


class DynamicInstruction:
    """One retired dynamic instruction.

    ``pc`` indexes the static program; ``next_pc`` is where control went
    afterwards (for branches this encodes the taken/not-taken outcome);
    ``address`` is the effective word address for loads/stores, else
    ``None``.
    """

    __slots__ = ("pc", "next_pc", "address")

    def __init__(self, pc, next_pc, address=None):
        self.pc = pc
        self.next_pc = next_pc
        self.address = address

    def taken(self):
        """For control instructions: True if the fall-through was not used."""
        return self.next_pc != self.pc + 1

    def __repr__(self):
        return f"DynamicInstruction(pc={self.pc}, next_pc={self.next_pc})"


@dataclass
class RunResult:
    """Outcome of a functional run."""

    instruction_count: int
    halted: bool
    state: ArchState

    @property
    def hit_budget(self):
        return not self.halted


class Emulator:
    """Executes a program against an :class:`ArchState`.

    The emulator is deliberately strict: undefined situations (RET with
    an empty stack, runaway recursion, falling off the end of a
    function) raise :class:`~repro.errors.EmulationError` instead of
    silently continuing, so workload-generator bugs surface immediately.
    """

    def __init__(self, program):
        self.program = program

    def run(self, state=None, max_instructions=1_000_000, trace=None,
            on_branch=None):
        """Run until ``HALT`` or the instruction budget.

        Parameters
        ----------
        state:
            Initial :class:`ArchState`; a fresh zeroed state if ``None``.
        max_instructions:
            Dynamic instruction budget (loop-protection and scale knob).
        trace:
            A :class:`~repro.emulator.trace.Trace` (compact columns,
            recorded without per-entry objects) or a list (every
            retired instruction appended as a
            :class:`DynamicInstruction`).
        on_branch:
            Optional callback ``(pc, taken)`` invoked for every retired
            conditional branch — the profiler's hook; combined with
            ``trace`` it collects trace and profile in one pass.
        """
        state = state if state is not None else ArchState()
        program = self.program
        instructions = program.instructions
        pc = program.entry
        count = 0
        halted = False
        if trace is None:
            record = None
        elif isinstance(trace, Trace):
            record = trace.record
        else:
            append = trace.append

            def record(pc, next_pc, address=None):
                append(DynamicInstruction(pc, next_pc, address))

        while count < max_instructions:
            if not 0 <= pc < len(instructions):
                raise EmulationError(f"pc out of range: {pc}")
            inst = instructions[pc]
            count += 1
            op = inst.op
            next_pc = pc + 1
            address = None

            if op is Opcode.HALT:
                halted = True
                if record is not None:
                    record(pc, pc)
                break
            if op is Opcode.BEQZ:
                taken = state.regs[inst.src1] == 0
                if taken:
                    next_pc = inst.target
                if on_branch is not None:
                    on_branch(pc, taken)
            elif op is Opcode.BNEZ:
                taken = state.regs[inst.src1] != 0
                if taken:
                    next_pc = inst.target
                if on_branch is not None:
                    on_branch(pc, taken)
            elif op is Opcode.JMP:
                next_pc = inst.target
            elif op is Opcode.CALL:
                state.push_return(pc + 1)
                next_pc = inst.target
            elif op is Opcode.RET:
                next_pc = state.pop_return()
            elif op is Opcode.LD:
                address = state.regs[inst.src1] + inst.imm
                state.write_reg(inst.dest, state.load(address))
            elif op is Opcode.ST:
                address = state.regs[inst.src1] + inst.imm
                state.store(address, state.regs[inst.src2])
            elif op is Opcode.MOV:
                state.write_reg(inst.dest, state.regs[inst.src1])
            elif op is Opcode.MOVI:
                state.write_reg(inst.dest, inst.imm)
            elif op is Opcode.CMOV:
                if state.regs[inst.src1] != 0:
                    state.write_reg(inst.dest, state.regs[inst.src2])
            elif op is Opcode.NOP:
                pass
            else:
                self._execute_alu(state, inst)

            if record is not None:
                record(pc, next_pc, address)
            pc = next_pc

        return RunResult(instruction_count=count, halted=halted, state=state)

    @staticmethod
    def _execute_alu(state, inst):
        a = state.regs[inst.src1]
        b = inst.imm if inst.src2 is None else state.regs[inst.src2]
        op = inst.op
        if op is Opcode.ADD:
            result = _wrap64(a + b)
        elif op is Opcode.SUB:
            result = _wrap64(a - b)
        elif op is Opcode.MUL:
            result = _wrap64(a * b)
        elif op is Opcode.DIV:
            # Division by zero yields zero, like a trap handler returning
            # a defined value; synthetic workloads must not crash the run.
            # Truncate toward zero without the float detour of int(a / b),
            # which loses precision for operands above 2**53.
            if b == 0:
                result = 0
            elif (a < 0) != (b < 0):
                result = -(-a // b) if a < 0 else -(a // -b)
            else:
                result = _wrap64(abs(a) // abs(b))
        elif op is Opcode.AND:
            result = a & b
        elif op is Opcode.OR:
            result = a | b
        elif op is Opcode.XOR:
            result = a ^ b
        elif op is Opcode.SHL:
            result = _wrap64(a << (b & _SHIFT_MASK))
        elif op is Opcode.SHR:
            result = (a % _WRAP) >> (b & _SHIFT_MASK)
        elif op is Opcode.CMPLT:
            result = int(a < b)
        elif op is Opcode.CMPLE:
            result = int(a <= b)
        elif op is Opcode.CMPEQ:
            result = int(a == b)
        elif op is Opcode.CMPNE:
            result = int(a != b)
        elif op is Opcode.CMPGT:
            result = int(a > b)
        elif op is Opcode.CMPGE:
            result = int(a >= b)
        else:  # pragma: no cover - opcode set is closed
            raise EmulationError(f"unhandled opcode {op}")
        state.write_reg(inst.dest, result)


def execute(program, memory=None, max_instructions=1_000_000,
            collect_trace=True, metrics=None, on_branch=None,
            compact=False):
    """Convenience wrapper: run ``program`` and return ``(trace, result)``.

    ``memory`` pre-loads the sparse word memory (this is how workload
    input sets are supplied).  When ``collect_trace`` is False the trace
    is ``None`` and only the :class:`RunResult` matters.  With
    ``compact=True`` the trace is a parallel-array
    :class:`~repro.emulator.trace.Trace` instead of a
    ``list[DynamicInstruction]`` (severalfold less memory, same replay
    semantics).  ``on_branch`` is forwarded to :meth:`Emulator.run`, so
    a profiler can observe the same single pass that records the trace.

    ``metrics`` (default: the active telemetry registry) accumulates
    functional-run totals — end-of-run increments only, the emulation
    loop itself stays uninstrumented.
    """
    from repro.obs.context import get_metrics

    if collect_trace:
        trace = Trace() if compact else []
    else:
        trace = None
    emulator = Emulator(program)
    state = ArchState(memory=memory)
    result = emulator.run(
        state=state, max_instructions=max_instructions, trace=trace,
        on_branch=on_branch,
    )
    registry = metrics if metrics is not None else get_metrics()
    registry.counter("emulator_runs_total").inc()
    registry.counter("emulator_instructions_total").inc(
        result.instruction_count
    )
    return trace, result
