"""Compact dynamic-instruction traces.

A functional trace at the paper's scale is tens of thousands of
retired instructions per benchmark, and a full suite run holds dozens
of them alive at once.  Storing each instruction as a
:class:`~repro.emulator.emulator.DynamicInstruction` object costs
~100 bytes of Python object overhead per entry; :class:`Trace` stores
the same three fields in parallel ``array('q')`` columns — 24 bytes
per entry, several-fold less memory, and column iteration the timing
simulator can replay without materializing one object per instruction.

The column layout is also the persistent artifact cache's on-disk
format: :meth:`Trace.to_bytes` / :meth:`Trace.from_bytes` round-trip
the raw column buffers with no per-entry encoding work.
"""

from array import array

#: Column sentinel for "no effective address" (loads/stores always
#: carry a real non-negative word address).
NO_ADDRESS = -1


class TraceView:
    """One trace entry, materialized on demand from the columns.

    Field-compatible with
    :class:`~repro.emulator.emulator.DynamicInstruction` so code that
    indexes a trace (``trace[i].pc``) works on either representation.
    """

    __slots__ = ("pc", "next_pc", "address")

    def __init__(self, pc, next_pc, address=None):
        self.pc = pc
        self.next_pc = next_pc
        self.address = address

    def taken(self):
        """For control instructions: True if the fall-through was not used."""
        return self.next_pc != self.pc + 1

    def __repr__(self):
        return f"TraceView(pc={self.pc}, next_pc={self.next_pc})"


class Trace:
    """Parallel-array dynamic trace: pc / next_pc / address columns."""

    __slots__ = ("pcs", "next_pcs", "addresses")

    def __init__(self):
        self.pcs = array("q")
        self.next_pcs = array("q")
        self.addresses = array("q")

    # -- recording (the emulator's hot path) ---------------------------

    def record(self, pc, next_pc, address=None):
        """Append one retired instruction."""
        self.pcs.append(pc)
        self.next_pcs.append(next_pc)
        self.addresses.append(NO_ADDRESS if address is None else address)

    def append(self, dyn):
        """List-protocol compatibility: append a DynamicInstruction."""
        self.record(dyn.pc, dyn.next_pc, dyn.address)

    # -- consumption ---------------------------------------------------

    def rows(self):
        """Iterate ``(pc, next_pc, address)`` int triples.

        ``address`` is :data:`NO_ADDRESS` where the entry carried none;
        consumers that only read addresses for loads/stores (the timing
        simulator) never observe the sentinel.
        """
        return zip(self.pcs, self.next_pcs, self.addresses)

    def __len__(self):
        return len(self.pcs)

    def __getitem__(self, index):
        address = self.addresses[index]
        return TraceView(
            self.pcs[index],
            self.next_pcs[index],
            None if address == NO_ADDRESS else address,
        )

    def __iter__(self):
        for pc, next_pc, address in self.rows():
            yield TraceView(
                pc, next_pc, None if address == NO_ADDRESS else address
            )

    @property
    def nbytes(self):
        """Memory held by the column buffers."""
        return (
            self.pcs.itemsize * len(self.pcs)
            + self.next_pcs.itemsize * len(self.next_pcs)
            + self.addresses.itemsize * len(self.addresses)
        )

    # -- (de)serialization for the persistent artifact cache -----------

    def to_bytes(self):
        """The three column buffers as raw bytes (pc, next_pc, address)."""
        return (
            self.pcs.tobytes(),
            self.next_pcs.tobytes(),
            self.addresses.tobytes(),
        )

    @classmethod
    def from_bytes(cls, pc_bytes, next_pc_bytes, address_bytes):
        trace = cls()
        trace.pcs.frombytes(pc_bytes)
        trace.next_pcs.frombytes(next_pc_bytes)
        trace.addresses.frombytes(address_bytes)
        if not len(trace.pcs) == len(trace.next_pcs) == len(trace.addresses):
            raise ValueError("trace column lengths disagree")
        return trace


def trace_rows(trace):
    """``(pc, next_pc, address)`` triples for a Trace *or* a plain list.

    The shared consumption protocol: the timing simulator replays
    either representation through the same loop.  For object traces the
    address may be ``None`` — as before, only load/store entries are
    ever dereferenced.
    """
    if isinstance(trace, Trace):
        return trace.rows()
    return ((dyn.pc, dyn.next_pc, dyn.address) for dyn in trace)
