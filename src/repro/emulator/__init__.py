"""Functional (ISA-level) execution.

The emulator executes a :class:`repro.isa.Program` to completion and can
record the dynamic instruction trace.  The trace is the ground truth the
profiler (:mod:`repro.profiling`) and the trace-driven timing simulator
(:mod:`repro.uarch`) consume — it plays the role of the "execution-driven"
part of the paper's simulator at a fidelity Python can afford.
"""

from repro.emulator.state import ArchState
from repro.emulator.trace import NO_ADDRESS, Trace, TraceView, trace_rows
from repro.emulator.emulator import (
    DynamicInstruction,
    Emulator,
    RunResult,
    execute,
)

__all__ = [
    "ArchState",
    "DynamicInstruction",
    "Emulator",
    "NO_ADDRESS",
    "RunResult",
    "Trace",
    "TraceView",
    "execute",
    "trace_rows",
]
