"""Architectural state for functional execution."""

from repro.errors import EmulationError
from repro.isa.registers import NUM_REGISTERS, ZERO_REGISTER


class ArchState:
    """Registers, word-addressed memory, and the call stack.

    Memory is a sparse ``dict`` mapping word address -> integer value;
    uninitialized words read as zero.  The call stack holds return pcs
    for ``CALL``/``RET`` (an architectural link stack — this keeps the
    ISA minimal; the timing model separately models a return address
    stack *predictor*).
    """

    __slots__ = ("regs", "memory", "call_stack")

    def __init__(self, memory=None):
        self.regs = [0] * NUM_REGISTERS
        self.memory = dict(memory) if memory else {}
        self.call_stack = []

    def read_reg(self, index):
        return self.regs[index]

    def write_reg(self, index, value):
        """Write a register; writes to the zero register are discarded."""
        if index != ZERO_REGISTER:
            self.regs[index] = value

    def load(self, address):
        return self.memory.get(address, 0)

    def store(self, address, value):
        self.memory[address] = value

    def push_return(self, pc):
        if len(self.call_stack) > 10_000:
            raise EmulationError("call stack overflow (runaway recursion?)")
        self.call_stack.append(pc)

    def pop_return(self):
        if not self.call_stack:
            raise EmulationError("RET with empty call stack")
        return self.call_stack.pop()

    def copy(self):
        """Deep-enough copy for checkpoint/restore in tests."""
        clone = ArchState()
        clone.regs = list(self.regs)
        clone.memory = dict(self.memory)
        clone.call_stack = list(self.call_stack)
        return clone
