"""A set-associative cache with true-LRU replacement.

Addresses are *word* addresses (the ISA's memory unit); with the
paper's 64-byte lines and 8-byte words a line holds 8 words, so the
default ``words_per_line`` is 8.  Instruction caches index by pc with
``words_per_line`` = instructions per line.
"""

from collections import OrderedDict

from repro.errors import SimulationError


class Cache:
    """One cache level.

    Parameters mirror Table 1 (sizes are given in lines rather than KB
    so instruction- and data-side caches share the implementation).
    """

    def __init__(self, name, num_sets, associativity, words_per_line=8):
        if num_sets <= 0 or associativity <= 0 or words_per_line <= 0:
            raise SimulationError(f"cache {name!r}: bad geometry")
        self.name = name
        self.num_sets = num_sets
        self.associativity = associativity
        self.words_per_line = words_per_line
        self.hits = 0
        self.misses = 0
        # One OrderedDict per set: line_tag -> None, LRU order = insertion.
        self._sets = [OrderedDict() for _ in range(num_sets)]

    @classmethod
    def from_kilobytes(cls, name, kilobytes, associativity,
                       line_bytes=64, word_bytes=8):
        """Build a cache from a Table 1 style size description."""
        num_lines = (kilobytes * 1024) // line_bytes
        num_sets = max(1, num_lines // associativity)
        return cls(name, num_sets, associativity,
                   words_per_line=line_bytes // word_bytes)

    def _locate(self, address):
        line = address // self.words_per_line
        return line % self.num_sets, line

    def access(self, address):
        """Access ``address``; returns True on hit.  Misses allocate."""
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        cache_set[tag] = None
        if len(cache_set) > self.associativity:
            cache_set.popitem(last=False)
        return False

    def contains(self, address):
        """Non-mutating presence probe (no stat or LRU change)."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self):
        self.hits = 0
        self.misses = 0
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
