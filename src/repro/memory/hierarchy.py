"""The I-cache / D-cache / L2 / memory hierarchy of Table 1.

Latencies (cycles): L1 I 2, L1 D 2, unified L2 10, memory 300 minimum.
The hierarchy exposes two queries the timing model uses:

- :meth:`instruction_latency` — latency to fetch the line holding a pc;
- :meth:`data_latency` — latency for a load/store to a word address.

Both walk the levels, allocating on miss, and return the total access
latency.  Bank/bus contention is not modelled (documented limitation);
the 300-cycle memory latency dominates where it matters.
"""

from repro.memory.cache import Cache

#: Instructions per I-cache line (64B line / 4B instruction encoding).
INSTRUCTIONS_PER_LINE = 16


class MemoryHierarchy:
    """Two L1s over a unified L2 over fixed-latency memory."""

    def __init__(
        self,
        icache_kb=64,
        icache_assoc=2,
        icache_latency=2,
        dcache_kb=64,
        dcache_assoc=4,
        dcache_latency=2,
        l2_kb=1024,
        l2_assoc=8,
        l2_latency=10,
        memory_latency=300,
        prefetch_next_line=True,
    ):
        self.prefetch_next_line = prefetch_next_line
        self.icache = Cache.from_kilobytes(
            "il1", icache_kb, icache_assoc,
            line_bytes=64, word_bytes=64 // INSTRUCTIONS_PER_LINE,
        )
        self.dcache = Cache.from_kilobytes("dl1", dcache_kb, dcache_assoc)
        self.l2 = Cache.from_kilobytes("l2", l2_kb, l2_assoc)
        self.icache_latency = icache_latency
        self.dcache_latency = dcache_latency
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency

    def instruction_latency(self, pc):
        """Fetch latency for the I-cache line containing ``pc``."""
        if self.icache.access(pc):
            return self.icache_latency
        if self.l2.access(self._iline_to_l2_address(pc)):
            return self.icache_latency + self.l2_latency
        return self.icache_latency + self.l2_latency + self.memory_latency

    def data_latency(self, address):
        """Access latency for a load/store to word ``address``."""
        if self.dcache.access(address):
            return self.dcache_latency
        # Miss: a simple next-line prefetcher hides sequential streams
        # (per-iteration input arrays) without helping pointer chases.
        if self.prefetch_next_line:
            next_line = address + self.dcache.words_per_line
            self.dcache.access(next_line)
            self.l2.access(next_line)
        if self.l2.access(address):
            return self.dcache_latency + self.l2_latency
        return self.dcache_latency + self.l2_latency + self.memory_latency

    def _iline_to_l2_address(self, pc):
        # Map instruction lines into a distinct L2 address space half so
        # code and data do not alias in the unified L2.
        return (1 << 40) + pc // INSTRUCTIONS_PER_LINE * self.l2.words_per_line

    def reset(self):
        self.icache.reset()
        self.dcache.reset()
        self.l2.reset()
