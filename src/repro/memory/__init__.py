"""Cache hierarchy (Table 1's memory system)."""

from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["Cache", "MemoryHierarchy"]
