"""Return CFM points (paper §3.5).

Some hammocks inside functions end with *different* return instructions
on the taken and not-taken paths; control merges at the caller's next
instruction, whose address is unknown at compile time.  The compiler
marks such branches with a special *return CFM*: at run time dpred-mode
ends when a return instruction executes rather than at a fixed pc.
"""

from repro.core.alg_exact import HammockCandidate
from repro.core.marks import CFMKind, CFMPoint, DivergeKind


def find_return_cfm_candidates(analysis, thresholds, exclude_pcs=frozenset()):
    """Branches whose both directions reach returns within the bounds.

    Only branches not already selected (``exclude_pcs``) are examined.
    The "merge probability" is the product of each direction's profiled
    probability of reaching a return before the enumeration bounds.
    """
    candidates = []
    for branch_pc in analysis.hammock_candidate_pcs():
        if branch_pc in exclude_pcs:
            continue
        path_set = analysis.paths(
            branch_pc,
            max_instr=thresholds.max_instr,
            max_cbr=thresholds.max_cbr,
            min_exec_prob=thresholds.min_exec_prob,
            stop_at_iposdom=True,
        )
        p_taken = path_set.return_prob("taken")
        p_nottaken = path_set.return_prob("nottaken")
        merge_prob = p_taken * p_nottaken
        if merge_prob < thresholds.return_cfm_min_merge_prob:
            continue
        cfm = CFMPoint(pc=None, kind=CFMKind.RETURN,
                       merge_prob=min(1.0, merge_prob))
        candidates.append(
            HammockCandidate(
                branch_pc=branch_pc,
                kind=DivergeKind.FREQUENTLY_HAMMOCK,
                cfm_points=(cfm,),
                path_set=path_set,
            )
        )
    return candidates
