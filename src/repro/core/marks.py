"""Diverge branch / CFM point data model and the binary annotation.

The output of the compiler is "a list of diverge branches and CFM
points that is attached to the binary and passed to [the] cycle-accurate
execution-driven performance simulator" (paper §6.1).
:class:`BinaryAnnotation` is that list; the DMP timing simulator keys
its dpred-mode decisions off it.
"""

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple


class DivergeKind(enum.Enum):
    """CFG type of a diverge branch (paper Figure 3)."""

    SIMPLE_HAMMOCK = "simple"
    NESTED_HAMMOCK = "nested"
    FREQUENTLY_HAMMOCK = "frequently"
    LOOP = "loop"


class CFMKind(enum.Enum):
    """Exactness class of a CFM point (paper §3.1, §3.5)."""

    EXACT = "exact"             # the IPOSDOM, always reached
    APPROXIMATE = "approximate"  # reached on frequent paths only
    RETURN = "return"            # merge at a return instruction (§3.5)
    LOOP_EXIT = "loop_exit"      # the code after a diverge loop


@dataclass(frozen=True)
class CFMPoint:
    """One control-flow merge point of a diverge branch.

    ``pc`` is the merge target instruction index (``None`` for RETURN
    CFMs, whose merge address depends on the caller).  ``merge_prob``
    is the profiled probability that both paths reach this point
    (pT·pNT, §3.3); exact CFMs carry 1.0.
    """

    pc: Optional[int]
    kind: CFMKind
    merge_prob: float = 1.0

    def __post_init__(self):
        if self.kind is CFMKind.RETURN:
            if self.pc is not None:
                raise ValueError("return CFM points carry no pc")
        elif self.pc is None:
            raise ValueError(f"{self.kind.value} CFM point needs a pc")
        if not 0.0 <= self.merge_prob <= 1.0 + 1e-9:
            raise ValueError(f"bad merge_prob {self.merge_prob}")


@dataclass(frozen=True)
class DivergeBranch:
    """One compiler-marked diverge branch.

    ``select_registers`` is the set of architectural registers written
    on either side of the hammock (or in the loop body) — the registers
    select-µops must reconcile at merge time; its size is the
    N(select_uops) of the cost model.  ``always_predicate`` marks short
    hammocks (§3.4).  For loops, ``loop_direction`` is the branch
    direction that *continues* the loop and ``loop_body_size`` the
    static body instruction count.
    """

    branch_pc: int
    kind: DivergeKind
    cfm_points: Tuple[CFMPoint, ...]
    select_registers: FrozenSet[int] = frozenset()
    always_predicate: bool = False
    loop_direction: Optional[bool] = None
    loop_body_size: int = 0
    #: Which selection pass produced this mark (reporting only).
    source: str = ""

    def __post_init__(self):
        # An empty CFM list is legal: the §7.2 simple baselines mark
        # branches without CFM points, and the processor then stays in
        # dpred-mode until resolution (pure dual-path execution).
        if self.kind is DivergeKind.LOOP and self.loop_direction is None:
            raise ValueError("loop diverge branch needs loop_direction")

    @property
    def cfm_pcs(self):
        """The concrete merge pcs (excludes return CFMs)."""
        return frozenset(
            point.pc for point in self.cfm_points if point.pc is not None
        )

    @property
    def has_return_cfm(self):
        return any(p.kind is CFMKind.RETURN for p in self.cfm_points)

    @property
    def num_select_uops(self):
        return len(self.select_registers)


class BinaryAnnotation:
    """The diverge-branch list attached to a program binary."""

    def __init__(self, program_name, branches=()):
        self.program_name = program_name
        self._branches = {}
        for branch in branches:
            self.add(branch)

    def add(self, branch):
        if branch.branch_pc in self._branches:
            raise ValueError(
                f"duplicate diverge mark at pc {branch.branch_pc}"
            )
        self._branches[branch.branch_pc] = branch

    def get(self, pc):
        """The :class:`DivergeBranch` at ``pc`` or ``None``."""
        return self._branches.get(pc)

    def is_diverge(self, pc):
        return pc in self._branches

    def __len__(self):
        return len(self._branches)

    def __iter__(self):
        return iter(sorted(self._branches.values(),
                           key=lambda b: b.branch_pc))

    def branches_of_kind(self, kind):
        return [b for b in self if b.kind is kind]

    @property
    def average_cfm_points(self):
        """Table 2's "Avg. # CFM" column."""
        if not self._branches:
            return 0.0
        total = sum(len(b.cfm_points) for b in self._branches.values())
        return total / len(self._branches)

    def summary(self):
        """Counts by kind, for reports."""
        counts = {kind: 0 for kind in DivergeKind}
        for branch in self._branches.values():
            counts[branch.kind] += 1
        return {
            "total": len(self._branches),
            "by_kind": {kind.value: n for kind, n in counts.items()},
            "avg_cfm_points": self.average_cfm_points,
        }
