"""Diverge loop branch heuristics (paper §5.2).

The full per-case loop cost model (§5.1, in
:mod:`repro.core.cost_model`) needs DMP-specific profiling the paper
deems impractical, so selection uses three profile-driven filters that
encode the model's insights.  A loop-exit branch is *not* selected when
any of the following holds:

1. the static loop body exceeds ``STATIC_LOOP_SIZE`` instructions;
2. the average dynamic instructions from loop entrance to exit (body
   size × average trip count) exceed ``DYNAMIC_LOOP_SIZE``;
3. the average trip count exceeds ``LOOP_ITER`` (high-iteration loops
   mostly produce the no-exit case, which has cost and no benefit).
"""

from dataclasses import dataclass

from repro.core.marks import CFMKind, CFMPoint, DivergeBranch, DivergeKind


@dataclass
class LoopCandidateReport:
    """Why a loop-exit branch was accepted or rejected (diagnostics)."""

    branch_pc: int
    static_size: int
    avg_iterations: float
    dynamic_size: float
    accepted: bool
    reject_reason: str = ""


def select_loop_diverge_branches(analysis, thresholds):
    """Selected loop diverge branches plus per-candidate reports."""
    profile = analysis.profile
    selected = []
    reports = []
    for branch_pc in analysis.loop_exit_branch_pcs():
        if profile.edge_profile.exec_count(branch_pc) == 0:
            continue
        info = analysis.loop_exit_info(branch_pc)
        loop = info.loop
        avg_iters = profile.loop_profile.average_iterations(
            branch_pc, info.loop_direction
        )
        dynamic_size = loop.static_size * avg_iters

        reject = ""
        if loop.static_size > thresholds.static_loop_size:
            reject = "static body too large"
        elif dynamic_size > thresholds.dynamic_loop_size:
            reject = "dynamic loop size too large"
        elif avg_iters > thresholds.loop_iter:
            reject = "too many iterations"

        reports.append(
            LoopCandidateReport(
                branch_pc=branch_pc,
                static_size=loop.static_size,
                avg_iterations=avg_iters,
                dynamic_size=dynamic_size,
                accepted=not reject,
                reject_reason=reject,
            )
        )
        if reject:
            continue

        cfg = analysis.cfg_of(branch_pc)
        select_registers = analysis.loop_body_registers(loop, cfg)
        selected.append(
            DivergeBranch(
                branch_pc=branch_pc,
                kind=DivergeKind.LOOP,
                cfm_points=(
                    CFMPoint(pc=info.exit_pc, kind=CFMKind.LOOP_EXIT,
                             merge_prob=1.0),
                ),
                select_registers=select_registers,
                loop_direction=info.loop_direction,
                loop_body_size=loop.static_size,
                source="loop",
            )
        )
    return selected, reports
