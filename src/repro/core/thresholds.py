"""Every tunable the paper's heuristics use, with the paper's values.

§7.1.1: MAX_INSTR = 50, MAX_CBR = MAX_INSTR/10 = 5, MIN_MERGE_PROB = 1%
give the best average performance.  §3.3: MIN_EXEC_PROB = 0.001,
MAX_CFM = 3.  §3.4: short hammocks predicate ≤ 10 instructions per
path, ≥ 95% merge probability, ≥ 5% misprediction rate.  §5.2:
STATIC_LOOP_SIZE = 30, DYNAMIC_LOOP_SIZE = 80, LOOP_ITER = 15.
Footnote 4: the cost model enumerates with MAX_INSTR = 200 and
MAX_CBR = 20 and replaces the MIN_MERGE_PROB filter with the
cost-benefit analysis.  §4.1: Acc_Conf = 40%.
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SelectionThresholds:
    """Threshold bundle for the heuristic-based selection algorithms."""

    max_instr: int = 50
    #: Derived from ``max_instr`` by the paper's rule when left None.
    max_cbr: int = None
    min_merge_prob: float = 0.01
    min_exec_prob: float = 0.001
    max_cfm: int = 3

    # Short-hammock heuristic (§3.4).
    short_hammock_max_insts: int = 10
    short_hammock_min_merge_prob: float = 0.95
    short_hammock_min_misp_rate: float = 0.05

    # Return-CFM heuristic (§3.5): minimum probability that both
    # directions end at a return before the bounds.
    return_cfm_min_merge_prob: float = 0.90

    # Diverge-loop heuristics (§5.2).
    static_loop_size: int = 30
    dynamic_loop_size: int = 80
    loop_iter: int = 15

    def __post_init__(self):
        if self.max_cbr is None:
            object.__setattr__(self, "max_cbr", max(1, self.max_instr // 10))

    def with_overrides(self, **kwargs):
        """A copy with some thresholds replaced (used in sweeps)."""
        if "max_instr" in kwargs and "max_cbr" not in kwargs:
            kwargs["max_cbr"] = max(1, kwargs["max_instr"] // 10)
        return replace(self, **kwargs)


#: The paper's best-performing heuristic thresholds (§7.1.1).
BEST_HEURISTIC = SelectionThresholds()

#: The three bounds footnote 4 pins in cost-model mode.  Applied as
#: overrides on top of whatever thresholds a config carries, so custom
#: non-bound thresholds (short-hammock, loop, MIN_EXEC_PROB) survive.
COST_MODEL_BOUNDS = {"max_instr": 200, "max_cbr": 20,
                     "min_merge_prob": 0.0}

#: Enumeration bounds the cost model uses (footnote 4).
COST_MODEL = SelectionThresholds(**COST_MODEL_BOUNDS)

#: §4.1: the single confidence-estimator accuracy the compiler assumes.
DEFAULT_ACC_CONF = 0.40
