"""Algorithm 1 (Alg-exact): simple/nested hammocks with exact CFM points.

For each conditional branch executed during profiling, compute its
IPOSDOM and enumerate all paths (working list, bounded by MAX_INSTR
instructions and MAX_CBR conditional branches, following only branch
directions executed with at least MIN_EXEC_PROB).  The branch is a
candidate iff *every* enumerated path reconverges at the IPOSDOM within
the bounds — then the IPOSDOM is its single exact CFM point.

A candidate whose hammock contains no conditional branches or calls is
a *simple* hammock; otherwise it is a *nested* hammock.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.marks import CFMKind, CFMPoint, DivergeKind


@dataclass
class HammockCandidate:
    """A diverge branch candidate plus the artifacts later passes need.

    ``cfm_points`` are ordered by decreasing merge probability.
    ``path_set`` is the bounded enumeration used to find them, reused
    by the short-hammock pass, the select-µop computation, and the
    cost-benefit model.
    """

    branch_pc: int
    kind: DivergeKind
    cfm_points: Tuple[CFMPoint, ...]
    path_set: object

    @property
    def cfm_pcs(self):
        return frozenset(p.pc for p in self.cfm_points if p.pc is not None)


def find_exact_candidates(analysis, thresholds):
    """All Alg-exact candidates of the program.

    Returns a list of :class:`HammockCandidate` with kind
    SIMPLE_HAMMOCK or NESTED_HAMMOCK and one exact CFM point each.
    """
    candidates = []
    for branch_pc in analysis.hammock_candidate_pcs():
        candidate = _classify_exact(analysis, thresholds, branch_pc)
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def _classify_exact(analysis, thresholds, branch_pc):
    iposdom = analysis.iposdom_pc(branch_pc)
    if iposdom is None:
        return None
    path_set = analysis.paths(
        branch_pc,
        max_instr=thresholds.max_instr,
        max_cbr=thresholds.max_cbr,
        min_exec_prob=thresholds.min_exec_prob,
        stop_at_iposdom=True,
    )
    all_paths = path_set.taken_paths + path_set.nottaken_paths
    if not all_paths:
        return None
    # Every followed path must reconverge at the IPOSDOM within bounds.
    if any(path.reason != "stop" for path in all_paths):
        return None
    kind = (
        DivergeKind.SIMPLE_HAMMOCK
        if _is_simple(path_set)
        else DivergeKind.NESTED_HAMMOCK
    )
    cfm = CFMPoint(pc=iposdom, kind=CFMKind.EXACT, merge_prob=1.0)
    return HammockCandidate(
        branch_pc=branch_pc,
        kind=kind,
        cfm_points=(cfm,),
        path_set=path_set,
    )


def _is_simple(path_set):
    """True when the hammock contains no conditional branches or calls.

    Unconditional jumps are permitted — the if-else shape needs one to
    skip the else side.
    """
    cfg = path_set.cfg
    program = cfg.program
    for direction in ("taken", "nottaken"):
        for path in path_set.paths(direction):
            if path.cbrs > 0:
                return False
            for block_id in path.block_ids:
                block = cfg.blocks[block_id]
                for pc in range(block.start, block.end):
                    if program[pc].is_call:
                        return False
    return True
