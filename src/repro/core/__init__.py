"""The paper's contribution: profile-driven diverge-branch selection.

This package implements every selection algorithm and model in the
paper:

- :mod:`repro.core.alg_exact` — Algorithm 1 (simple/nested hammocks,
  exact CFM points at the IPOSDOM).
- :mod:`repro.core.alg_freq` — Algorithm 2 (frequently-hammocks,
  approximate CFM points) including the chain-of-CFM-points reduction.
- :mod:`repro.core.short_hammocks` — the always-predicate heuristic.
- :mod:`repro.core.return_cfm` — return CFM points.
- :mod:`repro.core.loop_selection` — diverge loop branch heuristics.
- :mod:`repro.core.cost_model` — the analytical cost-benefit model of
  §4 (hammocks) and §5.1 (loops).
- :mod:`repro.core.simple_algorithms` — the §7.2 baselines
  (Every-br, Random-50, High-BP-5, Immediate, If-else).
- :mod:`repro.core.selector` — the end-to-end pipeline producing a
  :class:`repro.core.marks.BinaryAnnotation` for the DMP simulator.
"""

from repro.core.marks import (
    BinaryAnnotation,
    CFMKind,
    CFMPoint,
    DivergeBranch,
    DivergeKind,
)
from repro.core.thresholds import SelectionThresholds
from repro.core.selector import DivergeSelector, SelectionConfig, select_diverge_branches

__all__ = [
    "BinaryAnnotation",
    "CFMKind",
    "CFMPoint",
    "DivergeBranch",
    "DivergeKind",
    "SelectionThresholds",
    "DivergeSelector",
    "SelectionConfig",
    "select_diverge_branches",
]
