"""Shared per-program analysis context for the selection algorithms.

Bundles the CFGs, post-dominator trees and natural loops of every
function, and provides the queries all selection passes share: the
IPOSDOM of a branch, bounded path enumeration with profiled edge
probabilities, loop-exit classification, and select-µop register sets.
"""

from repro.cfg import build_cfgs, enumerate_paths, find_natural_loops
from repro.cfg.dominators import compute_postdominators, immediate_postdominator_pc
from repro.isa.registers import ZERO_REGISTER
from repro.obs.context import get_metrics


class LoopExitInfo:
    """A conditional branch that exits a natural loop."""

    __slots__ = ("branch_pc", "exit_pc", "loop", "loop_direction")

    def __init__(self, branch_pc, exit_pc, loop, loop_direction):
        self.branch_pc = branch_pc
        self.exit_pc = exit_pc
        self.loop = loop
        #: Branch direction (taken?) that stays in the loop.
        self.loop_direction = loop_direction


class ProgramAnalysis:
    """All static analyses of one program, computed once."""

    def __init__(self, program, profile):
        self.program = program
        self.profile = profile
        self.cfgs = build_cfgs(program)
        self._postdoms = {
            name: compute_postdominators(cfg)
            for name, cfg in self.cfgs.items()
        }
        self._cfg_of_pc = {}
        for cfg in self.cfgs.values():
            func = cfg.function
            for pc in range(func.start, func.end):
                self._cfg_of_pc[pc] = cfg
        self._loop_exits = self._find_loop_exits()
        self._path_cache = {}

    # -- basic queries ----------------------------------------------------

    def cfg_of(self, pc):
        return self._cfg_of_pc[pc]

    def iposdom_pc(self, branch_pc):
        """The exact CFM point candidate (IPOSDOM entry pc) or None."""
        cfg = self.cfg_of(branch_pc)
        postdoms = self._postdoms[cfg.function.name]
        return immediate_postdominator_pc(cfg, postdoms, branch_pc)

    def executed_conditional_branches(self):
        """Branch pcs executed during profiling, in program order.

        Algorithm 1/2 iterate over "each conditional branch B executed
        during profiling".
        """
        return self.profile.edge_profile.executed_branch_pcs()

    # -- loops --------------------------------------------------------------

    def _find_loop_exits(self):
        exits = {}
        for cfg in self.cfgs.values():
            for loop in find_natural_loops(cfg):
                for branch_pc, exit_pc in loop.exit_branches:
                    block = cfg.block_containing(branch_pc)
                    taken_in = (
                        block.taken_successor is not None
                        and block.taken_successor in loop.body
                    )
                    info = LoopExitInfo(
                        branch_pc, exit_pc, loop, loop_direction=taken_in
                    )
                    # A branch can exit nested loops; keep the innermost
                    # (smallest) loop, which is the one it iterates.
                    existing = exits.get(branch_pc)
                    if existing is None or len(loop.body) < len(
                        existing.loop.body
                    ):
                        exits[branch_pc] = info
        return exits

    def loop_exit_info(self, branch_pc):
        """The :class:`LoopExitInfo` for ``branch_pc`` or None."""
        return self._loop_exits.get(branch_pc)

    def loop_exit_branch_pcs(self):
        return sorted(self._loop_exits)

    def hammock_candidate_pcs(self):
        """Executed conditional branches eligible for hammock selection.

        Loop-exit branches are considered by the diverge-loop pass
        instead (paper Figure 3 keeps the types disjoint).
        """
        return [
            pc
            for pc in self.executed_conditional_branches()
            if pc not in self._loop_exits
        ]

    # -- path enumeration -----------------------------------------------------

    def paths(self, branch_pc, max_instr, max_cbr, min_exec_prob,
              stop_at_iposdom=True):
        """Bounded path enumeration with profiled edge probabilities.

        Results are memoized per parameter set — the heuristic passes
        and the cost model ask for the same enumerations repeatedly.
        """
        stop_pc = self.iposdom_pc(branch_pc) if stop_at_iposdom else None
        key = (branch_pc, max_instr, max_cbr, min_exec_prob, stop_pc)
        cached = self._path_cache.get(key)
        if cached is not None:
            get_metrics().counter("analysis_cache_hits_total").inc()
            return cached
        get_metrics().counter("analysis_cache_misses_total").inc()
        cfg = self.cfg_of(branch_pc)
        stop_pcs = frozenset() if stop_pc is None else frozenset({stop_pc})
        path_set = enumerate_paths(
            cfg,
            branch_pc,
            self.profile.edge_prob,
            max_instr=max_instr,
            max_cbr=max_cbr,
            min_exec_prob=min_exec_prob,
            stop_pcs=stop_pcs,
        )
        self._path_cache[key] = path_set
        return path_set

    def invalidate_paths(self):
        """Drop memoized path sets (dominators/loops stay valid).

        Path sets depend on the edge profile *and* their bound
        parameters; the structural analyses depend only on the program.
        The :class:`repro.compiler.AnalysisManager` calls this when a
        caller asserts the profile changed in place.
        """
        self._path_cache.clear()

    def path_cache_size(self):
        """Number of memoized path sets (cache-correctness tests)."""
        return len(self._path_cache)

    # -- select-µop register sets ----------------------------------------------

    def select_registers_for_paths(self, path_set, cfm_pcs):
        """Registers select-µops must reconcile for a hammock.

        The union of architectural registers written in any block on
        any enumerated path on either side, up to the first CFM point.
        Callee-side writes of calls inside the hammock are not included
        (intraprocedural approximation; the paper's select-µop overhead
        is reported as negligible either way, §4.4 item 4).
        """
        cfg = path_set.cfg
        program = cfg.program
        registers = set()
        for direction in ("taken", "nottaken"):
            for path in path_set.paths(direction):
                for block_id in path.block_ids:
                    block = cfg.blocks[block_id]
                    if block.start in cfm_pcs:
                        break
                    for pc in range(block.start, block.end):
                        written = program[pc].written_register()
                        if written is not None and written != ZERO_REGISTER:
                            registers.add(written)
        return frozenset(registers)

    def loop_body_registers(self, loop, cfg):
        """Registers written inside a loop body (loop select-µops)."""
        registers = set()
        for block_id in loop.body:
            block = cfg.blocks[block_id]
            for pc in range(block.start, block.end):
                written = cfg.program[pc].written_register()
                if written is not None and written != ZERO_REGISTER:
                    registers.add(written)
        return frozenset(registers)
