"""The analytical cost-benefit model (paper §4 and §5.1).

The model estimates, in fetch cycles, the cost of dynamically
predicating a branch:

    dpred_cost = dpred_overhead · P(enter dpred | correct)
               + (dpred_overhead − misp_penalty) · P(enter dpred | misp)   (1)

with P(enter|misp) = Acc_Conf, the confidence estimator's PVN (2)-(3).
A branch is selected when dpred_cost < 0 (4).

``dpred_overhead`` is the fetch cost of the useless (wrong-path)
instructions:

- simple/nested hammocks: N(useless)/fw (13)-(15), with N(dpred_insts)
  estimated from the longest path (method 2) or the edge-profile
  average (method 3) of §4.1.1;
- frequently-hammocks: weighted by the merge probability, with the
  non-merging case costing half the branch resolution time (16);
- multiple CFM points: the independence-weighted combination (17);
- loops: select-µop cost per iteration (18), plus the extra-iteration
  cost in the late-exit case (19), combined over the four outcome
  cases (20).

Model limitations are the paper's own (§4.4): perfect fetch, no nested
dpred, half-useful fetch when paths do not merge, select-µops ignored
for hammocks.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.thresholds import DEFAULT_ACC_CONF


@dataclass(frozen=True)
class CostModelParams:
    """Machine parameters the compiler plugs into the model.

    ``misp_penalty`` is the machine's *minimum* branch misprediction
    penalty (Table 1: 25 cycles); ``branch_resolution_cycles`` defaults
    to the same value, as in Equation (16)'s definition.
    """

    fetch_width: int = 8
    misp_penalty: float = 25.0
    acc_conf: float = DEFAULT_ACC_CONF
    branch_resolution_cycles: Optional[float] = None

    @property
    def resolution(self):
        if self.branch_resolution_cycles is not None:
            return self.branch_resolution_cycles
        return self.misp_penalty


@dataclass
class HammockCostReport:
    """The model's verdict on one hammock candidate."""

    branch_pc: int
    dpred_overhead: float
    dpred_cost: float
    useless_by_cfm: Dict[int, float]
    merge_prob_total: float

    @property
    def selected(self):
        return self.dpred_cost < 0.0

    def as_dict(self):
        """JSON-ready form (trace events and reports embed this)."""
        return {
            "branch_pc": self.branch_pc,
            "dpred_overhead": self.dpred_overhead,
            "dpred_cost": self.dpred_cost,
            "selected": self.selected,
            "merge_prob_total": self.merge_prob_total,
            "useless_by_cfm": {
                # Return CFMs key on None; JSON needs string keys.
                ("return" if pc is None else str(pc)): value
                for pc, value in self.useless_by_cfm.items()
            },
        }


def dpred_cost(dpred_overhead, params):
    """Equation (1): total cost given the overhead and Acc_Conf."""
    p_misp = params.acc_conf
    p_correct = 1.0 - params.acc_conf
    return (
        dpred_overhead * p_correct
        + (dpred_overhead - params.misp_penalty) * p_misp
    )


def estimate_side_insts(path_set, direction, cfm_pc, method):
    """N(BH)/N(CH) of §4.1.1 for one side of the hammock.

    ``method`` is ``"long"`` (method 2: longest possible path) or
    ``"edge"`` (method 3: edge-profile expected instructions).
    """
    if method == "long":
        return float(path_set.longest_insts_to(direction, cfm_pc))
    if method == "edge":
        return path_set.expected_insts_to(direction, cfm_pc)
    raise ValueError(f"unknown estimation method {method!r}")


def useless_insts_for_cfm(path_set, cfm_pc, p_taken, method):
    """Equations (5)-(13): useless instructions assuming one CFM point."""
    n_taken = estimate_side_insts(path_set, "taken", cfm_pc, method)
    n_nottaken = estimate_side_insts(path_set, "nottaken", cfm_pc, method)
    n_dpred = n_taken + n_nottaken                              # (5)
    n_useful = p_taken * n_taken + (1.0 - p_taken) * n_nottaken  # (12)
    return max(0.0, n_dpred - n_useful)                          # (13)


def hammock_overhead(candidate, p_taken, params, method):
    """Equations (14), (16), (17): dpred overhead of a hammock candidate.

    Exact CFM points carry merge probability 1.0, so the frequently-
    hammock formula (16)/(17) degenerates to the simple-hammock formula
    (14) for them.
    """
    useless_by_cfm = {}
    weighted_useless = 0.0
    merge_total = 0.0
    for cfm in candidate.cfm_points:
        if cfm.pc is None:
            # Return CFMs: merging happens at a return; approximate the
            # wrong-path length by the full enumerated path lengths.
            n_useless = _return_cfm_useless(candidate.path_set, p_taken,
                                            method)
        else:
            n_useless = useless_insts_for_cfm(
                candidate.path_set, cfm.pc, p_taken, method
            )
        useless_by_cfm[cfm.pc] = n_useless
        weighted_useless += n_useless * cfm.merge_prob
        merge_total += cfm.merge_prob
    merge_total = min(1.0, merge_total)
    overhead = weighted_useless / params.fetch_width + (
        1.0 - merge_total
    ) * (params.resolution / 2.0)                                # (17)
    return overhead, useless_by_cfm, merge_total


def _return_cfm_useless(path_set, p_taken, method):
    """Useless-instruction estimate when the merge point is a return."""
    if method == "long":
        n_taken = float(max((p.insts for p in path_set.taken_paths),
                            default=0))
        n_nottaken = float(max((p.insts for p in path_set.nottaken_paths),
                               default=0))
    else:
        n_taken = _expected_path_insts(path_set.taken_paths)
        n_nottaken = _expected_path_insts(path_set.nottaken_paths)
    n_dpred = n_taken + n_nottaken
    n_useful = p_taken * n_taken + (1.0 - p_taken) * n_nottaken
    return max(0.0, n_dpred - n_useful)


def _expected_path_insts(paths):
    mass = sum(p.prob for p in paths)
    if mass == 0.0:
        return 0.0
    return sum(p.prob * p.insts for p in paths) / mass


def evaluate_hammock(candidate, profile, params, method="edge"):
    """Run the full §4 model on one candidate (Equation (15)/(17) + (1))."""
    p_taken = profile.edge_profile.taken_prob(candidate.branch_pc)
    overhead, useless_by_cfm, merge_total = hammock_overhead(
        candidate, p_taken, params, method
    )
    cost = dpred_cost(overhead, params)
    return HammockCostReport(
        branch_pc=candidate.branch_pc,
        dpred_overhead=overhead,
        dpred_cost=cost,
        useless_by_cfm=useless_by_cfm,
        merge_prob_total=merge_total,
    )


# -- loops (§5.1) -----------------------------------------------------------


@dataclass(frozen=True)
class LoopCaseProbabilities:
    """P of each dynamic-predication outcome for a loop branch.

    Probabilities must sum to 1 (correct + early + late + no-exit).
    The paper notes collecting these requires DMP-emulating profiling;
    the model is exposed for analysis and the ablation benchmarks while
    the production selector uses the §5.2 heuristics.
    """

    correct: float
    early_exit: float
    late_exit: float
    no_exit: float

    def __post_init__(self):
        total = self.correct + self.early_exit + self.late_exit + self.no_exit
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"loop case probabilities sum to {total}")


def loop_select_overhead(n_select_uops, dpred_iter, params):
    """Equation (18): select-µop fetch cost over the dpred iterations."""
    return n_select_uops * dpred_iter / params.fetch_width


def loop_late_exit_overhead(loop_body_size, extra_iter, n_select_uops,
                            dpred_iter, params):
    """Equation (19): extra-iteration NOPs plus select-µops."""
    return (
        loop_body_size * extra_iter / params.fetch_width
        + loop_select_overhead(n_select_uops, dpred_iter, params)
    )


def loop_dpred_cost(loop_body_size, n_select_uops, dpred_iter,
                    dpred_extra_iter, case_probs, params):
    """Equation (20): expected cost of dynamically predicating a loop.

    Only the late-exit case carries the benefit of avoiding the flush
    (−misp_penalty); every case pays its overhead.
    """
    overhead_select = loop_select_overhead(n_select_uops, dpred_iter, params)
    overhead_late = loop_late_exit_overhead(
        loop_body_size, dpred_extra_iter, n_select_uops, dpred_iter, params
    )
    return (
        case_probs.correct * overhead_select
        + case_probs.early_exit * overhead_select
        + case_probs.no_exit * overhead_select
        + case_probs.late_exit * (overhead_late - params.misp_penalty)
    )
