"""The end-to-end diverge-branch selection pipeline.

Combines the selection passes into the configurations the paper
evaluates:

- Figure 5 (left), cumulative heuristics: ``exact`` → ``exact+freq`` →
  ``+short`` → ``+ret`` → ``+loop`` ("All-best-heur");
- Figure 5 (right), cost-benefit model: ``cost-long`` / ``cost-edge``
  (± short/ret/loop), "All-best-cost".

Since the pass-manager refactor the actual work lives in
:mod:`repro.compiler`: :class:`DivergeSelector` and
:func:`select_diverge_branches` are thin shims that build the canonical
pipeline for their config and run it — with byte-identical
:class:`BinaryAnnotation` output (pinned by the equivalence tests) and
analyses shared through the process-wide
:func:`repro.compiler.shared_manager`.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cost_model import CostModelParams
from repro.core.thresholds import COST_MODEL_BOUNDS, SelectionThresholds
from repro.obs.context import get_tracer


@dataclass(frozen=True)
class SelectionConfig:
    """Which passes run and with what parameters.

    ``cost_model`` is ``None`` (threshold heuristics), ``"long"``
    (method 2 overhead estimation) or ``"edge"`` (method 3).  When the
    cost model is active the enumeration bounds widen to footnote 4's
    MAX_INSTR=200 / MAX_CBR=20 and MIN_MERGE_PROB filtering is replaced
    by the cost decision.
    """

    enable_exact: bool = True
    enable_freq: bool = True
    enable_short: bool = False
    enable_return_cfm: bool = False
    enable_loop: bool = False
    cost_model: Optional[str] = None
    thresholds: SelectionThresholds = field(
        default_factory=SelectionThresholds
    )
    cost_params: CostModelParams = field(default_factory=CostModelParams)
    #: §4.1 option: instead of the fixed Acc_Conf (40%), use the
    #: confidence-estimator accuracy *measured on this application's
    #: profiling run* ("the compiler ... can obtain the accuracy of the
    #: confidence estimator for each individual application").
    per_app_acc_conf: bool = False
    #: §8.3 extension (the paper's future work): exclude branches whose
    #: profiled misprediction rate is below this floor.  Always-easy
    #: branches gain nothing from dynamic predication but enlarge the
    #: static mark list and alias in the confidence estimator; the
    #: paper proposes 2D-profiling to filter them.  0.0 disables.
    min_misp_rate: float = 0.0
    #: Static if-conversion (§6 software-predication baseline): ``None``
    #: disables, ``"short"`` melds profitable short hammocks before
    #: selection, ``"all"`` melds every structural candidate.  A
    #: non-``None`` value schedules the program-rewriting
    #: :class:`~repro.compiler.transform.MeldPass` first, so the
    #: annotation's pcs refer to the *transformed* program — callers
    #: must simulate against it (see ``repro.experiments.meldcompare``),
    #: not the original trace.
    meld: Optional[str] = None
    name: str = "custom"

    @classmethod
    def all_best_heur(cls, thresholds=None):
        """Fig. 5's exact+freq+short+ret+loop with the best thresholds."""
        return cls(
            enable_exact=True,
            enable_freq=True,
            enable_short=True,
            enable_return_cfm=True,
            enable_loop=True,
            thresholds=thresholds or SelectionThresholds(),
            name="all-best-heur",
        )

    @classmethod
    def all_best_cost(cls, method="edge", thresholds=None):
        """Fig. 5's cost-edge+short+ret+loop ("All-best-cost")."""
        return cls(
            enable_exact=True,
            enable_freq=True,
            enable_short=True,
            enable_return_cfm=True,
            enable_loop=True,
            cost_model=method,
            thresholds=thresholds or SelectionThresholds(),
            name="all-best-cost",
        )

    @property
    def effective_thresholds(self):
        """The thresholds every pass actually runs with.

        In cost-model mode the three footnote-4 bounds (MAX_INSTR=200,
        MAX_CBR=20, MIN_MERGE_PROB=0) override whatever the config
        carries, but all other thresholds — short-hammock, loop,
        MIN_EXEC_PROB — survive.  This is the single source of truth:
        the short-hammock partition, record construction, and loop
        selection all see the same bundle (historically the short pass
        read ``thresholds`` while finishing read the footnote-4
        constant, which silently dropped custom thresholds in
        cost-model mode).
        """
        if self.cost_model is None:
            return self.thresholds
        return self.thresholds.with_overrides(**COST_MODEL_BOUNDS)


class DivergeSelector:
    """Runs the configured passes and emits a :class:`BinaryAnnotation`.

    A thin shim over :mod:`repro.compiler`: the constructor resolves
    the shared analysis (through ``analysis_manager``, default the
    process-wide manager) and :meth:`select` runs the canonical
    pipeline for the config.
    """

    def __init__(self, program, profile, config=None, two_d_profile=None,
                 tracer=None, analysis_manager=None, ledger=None):
        from repro.compiler.analysis_manager import shared_manager

        self.program = program
        self.profile = profile
        self.config = config or SelectionConfig()
        #: Optional :class:`repro.obs.ledger.SelectionLedger`; every
        #: pass verdict (accept/reject + cost numbers) lands here.
        self.ledger = ledger
        #: Optional §8.3 extension: a
        #: :class:`repro.profiling.two_d.TwoDProfile`; when present,
        #: always-easy branches (easy *and* phase-stable) are dropped
        #: from hammock candidacy.
        self.two_d_profile = two_d_profile
        #: Trace events (``select.branch.selected``/``.rejected``) go
        #: here; defaults to the active telemetry context's tracer.
        self.tracer = tracer if tracer is not None else get_tracer()
        self._manager = (
            analysis_manager if analysis_manager is not None
            else shared_manager()
        )
        self.analysis = self._manager.analysis(program, profile)
        #: Per-candidate cost reports (populated in cost-model mode).
        self.cost_reports = []
        #: Loop-candidate accept/reject diagnostics.
        self.loop_reports = []

    def select(self):
        from repro.compiler.pipeline import run_selection_pipeline

        state = run_selection_pipeline(
            self.program,
            self.profile,
            self.config,
            two_d_profile=self.two_d_profile,
            tracer=self.tracer,
            manager=self._manager,
            ledger=self.ledger,
        )
        self.cost_reports = state.cost_reports
        self.loop_reports = state.loop_reports
        return state.annotation


def select_diverge_branches(program, profile, config=None,
                            two_d_profile=None):
    """One-call pipeline: profile-driven selection → annotation."""
    return DivergeSelector(
        program, profile, config, two_d_profile=two_d_profile
    ).select()
