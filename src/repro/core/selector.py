"""The end-to-end diverge-branch selection pipeline.

Combines the selection passes into the configurations the paper
evaluates:

- Figure 5 (left), cumulative heuristics: ``exact`` → ``exact+freq`` →
  ``+short`` → ``+ret`` → ``+loop`` ("All-best-heur");
- Figure 5 (right), cost-benefit model: ``cost-long`` / ``cost-edge``
  (± short/ret/loop), "All-best-cost".

:func:`select_diverge_branches` is the public convenience entry point.
"""

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.alg_exact import find_exact_candidates
from repro.core.alg_freq import find_freq_candidates
from repro.core.analysis import ProgramAnalysis
from repro.core.cost_model import CostModelParams, evaluate_hammock
from repro.core.loop_selection import select_loop_diverge_branches
from repro.core.marks import BinaryAnnotation, DivergeBranch, DivergeKind
from repro.core.return_cfm import find_return_cfm_candidates
from repro.core.short_hammocks import apply_short_hammock_heuristic
from repro.core.thresholds import COST_MODEL, SelectionThresholds
from repro.obs.context import get_metrics, get_tracer
from repro.obs.events import BranchRejected, BranchSelected


@dataclass(frozen=True)
class SelectionConfig:
    """Which passes run and with what parameters.

    ``cost_model`` is ``None`` (threshold heuristics), ``"long"``
    (method 2 overhead estimation) or ``"edge"`` (method 3).  When the
    cost model is active the enumeration bounds widen to footnote 4's
    MAX_INSTR=200 / MAX_CBR=20 and MIN_MERGE_PROB filtering is replaced
    by the cost decision.
    """

    enable_exact: bool = True
    enable_freq: bool = True
    enable_short: bool = False
    enable_return_cfm: bool = False
    enable_loop: bool = False
    cost_model: Optional[str] = None
    thresholds: SelectionThresholds = field(
        default_factory=SelectionThresholds
    )
    cost_params: CostModelParams = field(default_factory=CostModelParams)
    #: §4.1 option: instead of the fixed Acc_Conf (40%), use the
    #: confidence-estimator accuracy *measured on this application's
    #: profiling run* ("the compiler ... can obtain the accuracy of the
    #: confidence estimator for each individual application").
    per_app_acc_conf: bool = False
    #: §8.3 extension (the paper's future work): exclude branches whose
    #: profiled misprediction rate is below this floor.  Always-easy
    #: branches gain nothing from dynamic predication but enlarge the
    #: static mark list and alias in the confidence estimator; the
    #: paper proposes 2D-profiling to filter them.  0.0 disables.
    min_misp_rate: float = 0.0
    name: str = "custom"

    @classmethod
    def all_best_heur(cls, thresholds=None):
        """Fig. 5's exact+freq+short+ret+loop with the best thresholds."""
        return cls(
            enable_exact=True,
            enable_freq=True,
            enable_short=True,
            enable_return_cfm=True,
            enable_loop=True,
            thresholds=thresholds or SelectionThresholds(),
            name="all-best-heur",
        )

    @classmethod
    def all_best_cost(cls, method="edge"):
        """Fig. 5's cost-edge+short+ret+loop ("All-best-cost")."""
        return cls(
            enable_exact=True,
            enable_freq=True,
            enable_short=True,
            enable_return_cfm=True,
            enable_loop=True,
            cost_model=method,
            name="all-best-cost",
        )

    @property
    def effective_thresholds(self):
        """Wider bounds in cost-model mode (footnote 4)."""
        if self.cost_model is None:
            return self.thresholds
        return COST_MODEL


class DivergeSelector:
    """Runs the configured passes and emits a :class:`BinaryAnnotation`."""

    def __init__(self, program, profile, config=None, two_d_profile=None,
                 tracer=None):
        self.program = program
        self.profile = profile
        self.config = config or SelectionConfig()
        #: Optional §8.3 extension: a
        #: :class:`repro.profiling.two_d.TwoDProfile`; when present,
        #: always-easy branches (easy *and* phase-stable) are dropped
        #: from hammock candidacy.
        self.two_d_profile = two_d_profile
        #: Trace events (``select.branch.selected``/``.rejected``) go
        #: here; defaults to the active telemetry context's tracer.
        self.tracer = tracer if tracer is not None else get_tracer()
        self.analysis = ProgramAnalysis(program, profile)
        #: Per-candidate cost reports (populated in cost-model mode).
        self.cost_reports = []
        #: Loop-candidate accept/reject diagnostics.
        self.loop_reports = []

    def _emit_selected(self, branch, report=None):
        if not self.tracer.enabled:
            return
        self.tracer.emit(BranchSelected(
            branch_pc=branch.branch_pc,
            kind=branch.kind.value,
            source=branch.source,
            always_predicate=branch.always_predicate,
            num_cfm_points=len(branch.cfm_points),
            num_select_uops=branch.num_select_uops,
            dpred_cost=report.dpred_cost if report else None,
            dpred_overhead=report.dpred_overhead if report else None,
            merge_prob_total=report.merge_prob_total if report else None,
        ))

    def _emit_rejected(self, branch_pc, reason, report=None):
        if not self.tracer.enabled:
            return
        self.tracer.emit(BranchRejected(
            branch_pc=branch_pc,
            reason=reason,
            dpred_cost=report.dpred_cost if report else None,
            dpred_overhead=report.dpred_overhead if report else None,
            merge_prob_total=report.merge_prob_total if report else None,
        ))

    def select(self):
        config = self.config
        thresholds = config.effective_thresholds
        annotation = BinaryAnnotation(self.program.name)

        candidates = []
        if config.enable_exact:
            candidates.extend(
                find_exact_candidates(self.analysis, thresholds)
            )
        if config.enable_freq:
            exclude = frozenset(c.branch_pc for c in candidates)
            candidates.extend(
                find_freq_candidates(self.analysis, thresholds, exclude)
            )
        if config.min_misp_rate > 0.0:
            branch_profile = self.profile.branch_profile
            kept = []
            for candidate in candidates:
                if branch_profile.misprediction_rate(candidate.branch_pc) \
                        >= config.min_misp_rate:
                    kept.append(candidate)
                else:
                    self._emit_rejected(candidate.branch_pc,
                                        "easy-branch-filter")
            candidates = kept
        if self.two_d_profile is not None:
            kept = []
            for candidate in candidates:
                if self.two_d_profile.keep_branch(candidate.branch_pc):
                    kept.append(candidate)
                else:
                    self._emit_rejected(candidate.branch_pc,
                                        "2d-profile-filter")
            candidates = kept

        # Short hammocks are always predicated; they bypass the cost /
        # threshold decision and drop their non-qualifying CFM points.
        short = {}
        if config.enable_short:
            short, candidates = apply_short_hammock_heuristic(
                candidates, self.profile, self.config.thresholds
            )

        cost_params = config.cost_params
        if config.cost_model is not None and config.per_app_acc_conf:
            measured = self.profile.measured_acc_conf
            if measured > 0.0:
                cost_params = replace(cost_params, acc_conf=measured)

        cost_by_pc = {}
        if config.cost_model is not None:
            selected = []
            for candidate in candidates:
                report = evaluate_hammock(
                    candidate,
                    self.profile,
                    cost_params,
                    method=config.cost_model,
                )
                self.cost_reports.append(report)
                if report.selected:
                    cost_by_pc[candidate.branch_pc] = report
                    selected.append(candidate)
                else:
                    self._emit_rejected(candidate.branch_pc,
                                        "cost-model", report)
            candidates = selected

        for candidate in candidates:
            branch = self._finish_hammock(candidate, always=False)
            annotation.add(branch)
            self._emit_selected(branch, cost_by_pc.get(branch.branch_pc))

        for branch_pc, cfm_points in sorted(short.items()):
            branch = self._finish_short(branch_pc, cfm_points)
            annotation.add(branch)
            self._emit_selected(branch)

        if config.enable_return_cfm:
            exclude = frozenset(
                branch.branch_pc for branch in annotation
            )
            ret_candidates = find_return_cfm_candidates(
                self.analysis, thresholds, exclude
            )
            if config.cost_model is not None:
                kept = []
                for candidate in ret_candidates:
                    report = evaluate_hammock(
                        candidate,
                        self.profile,
                        cost_params,
                        method=config.cost_model,
                    )
                    self.cost_reports.append(report)
                    if report.selected:
                        cost_by_pc[candidate.branch_pc] = report
                        kept.append(candidate)
                    else:
                        self._emit_rejected(candidate.branch_pc,
                                            "cost-model", report)
                ret_candidates = kept
            for candidate in ret_candidates:
                branch = self._finish_hammock(candidate, always=False,
                                              source="return-cfm")
                annotation.add(branch)
                self._emit_selected(
                    branch, cost_by_pc.get(branch.branch_pc)
                )

        if config.enable_loop:
            loops, self.loop_reports = select_loop_diverge_branches(
                self.analysis, self.config.thresholds
            )
            for branch in loops:
                if not annotation.is_diverge(branch.branch_pc):
                    annotation.add(branch)
                    self._emit_selected(branch)
            if self.tracer.enabled:
                for report in self.loop_reports:
                    if not report.accepted:
                        self._emit_rejected(
                            report.branch_pc,
                            f"loop:{report.reject_reason}",
                        )

        metrics = get_metrics()
        metrics.counter("selection_runs_total").inc()
        metrics.counter("selection_branches_selected_total").inc(
            len(annotation)
        )
        return annotation

    # -- record construction -------------------------------------------------

    def _finish_hammock(self, candidate, always, source=None):
        select_registers = self.analysis.select_registers_for_paths(
            candidate.path_set, candidate.cfm_pcs
        )
        return DivergeBranch(
            branch_pc=candidate.branch_pc,
            kind=candidate.kind,
            cfm_points=candidate.cfm_points,
            select_registers=select_registers,
            always_predicate=always,
            source=source or candidate.kind.value,
        )

    def _finish_short(self, branch_pc, cfm_points):
        thresholds = self.config.effective_thresholds
        path_set = self.analysis.paths(
            branch_pc,
            max_instr=thresholds.max_instr,
            max_cbr=thresholds.max_cbr,
            min_exec_prob=thresholds.min_exec_prob,
            stop_at_iposdom=True,
        )
        cfm_pcs = {p.pc for p in cfm_points if p.pc is not None}
        select_registers = self.analysis.select_registers_for_paths(
            path_set, cfm_pcs
        )
        kind = (
            DivergeKind.SIMPLE_HAMMOCK
            if all(p.merge_prob >= 0.999 for p in cfm_points)
            else DivergeKind.FREQUENTLY_HAMMOCK
        )
        return DivergeBranch(
            branch_pc=branch_pc,
            kind=kind,
            cfm_points=tuple(cfm_points),
            select_registers=select_registers,
            always_predicate=True,
            source="short-hammock",
        )


def select_diverge_branches(program, profile, config=None,
                            two_d_profile=None):
    """One-call pipeline: profile-driven selection → annotation."""
    return DivergeSelector(
        program, profile, config, two_d_profile=two_d_profile
    ).select()
