"""Algorithm 2 (Alg-freq): frequently-hammocks, approximate CFM points.

For each conditional branch (not already an Alg-exact selection), paths
on both directions are enumerated under the same bounds as Algorithm 1.
Every basic block entry reached on *both* directions is a CFM point
candidate with merge probability pT(X)·pNT(X) (paper §3.3 lines 4-7).
Candidates below MIN_MERGE_PROB are dropped; chains of CFM points are
reduced to their best member (§3.3.1, using first-merge probabilities);
finally the best MAX_CFM candidates are kept.
"""

from repro.core.alg_exact import HammockCandidate
from repro.core.marks import CFMKind, CFMPoint, DivergeKind


def find_freq_candidates(analysis, thresholds, exclude_pcs=frozenset()):
    """All Alg-freq candidates, excluding ``exclude_pcs`` (Alg-exact wins)."""
    candidates = []
    for branch_pc in analysis.hammock_candidate_pcs():
        if branch_pc in exclude_pcs:
            continue
        candidate = _classify_freq(analysis, thresholds, branch_pc)
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def _classify_freq(analysis, thresholds, branch_pc):
    path_set = analysis.paths(
        branch_pc,
        max_instr=thresholds.max_instr,
        max_cbr=thresholds.max_cbr,
        min_exec_prob=thresholds.min_exec_prob,
        stop_at_iposdom=True,
    )
    if not path_set.taken_paths or not path_set.nottaken_paths:
        return None

    reach_taken = path_set.reach_prob("taken")
    reach_nottaken = path_set.reach_prob("nottaken")
    merge_prob = {
        pc: reach_taken[pc] * reach_nottaken[pc]
        for pc in reach_taken.keys() & reach_nottaken.keys()
    }
    merge_prob = {
        pc: prob
        for pc, prob in merge_prob.items()
        if prob >= max(thresholds.min_merge_prob, 1e-9)
    }
    if not merge_prob:
        return None

    reduced = _reduce_chains(path_set, merge_prob)
    best = sorted(reduced.items(), key=lambda item: (-item[1], item[0]))
    best = best[: thresholds.max_cfm]

    cfm_points = tuple(
        CFMPoint(pc=pc, kind=CFMKind.APPROXIMATE, merge_prob=min(1.0, prob))
        for pc, prob in best
    )
    return HammockCandidate(
        branch_pc=branch_pc,
        kind=DivergeKind.FREQUENTLY_HAMMOCK,
        cfm_points=cfm_points,
        path_set=path_set,
    )


def _reduce_chains(path_set, merge_prob):
    """Collapse chains of CFM candidates (paper §3.3.1).

    Two candidates chain when one lies on a path from the branch to the
    other: dpred-mode always stops at the first CFM point reached, so
    only one member of each chain can ever be the merge point.  The
    survivor is the member with the highest *first*-merge probability
    (footnote 3's correction), and it keeps that corrected probability.
    """
    candidates = sorted(merge_prob)
    if len(candidates) <= 1:
        return dict(merge_prob)

    # Build the "appears before" relation over candidate pcs from the
    # enumerated paths of both directions.
    order = {pc: set() for pc in candidates}  # pc -> pcs seen after it
    candidate_set = set(candidates)
    blocks = path_set.cfg.blocks
    for direction in ("taken", "nottaken"):
        for path in path_set.paths(direction):
            seen = []
            for block_id in path.block_ids:
                pc = blocks[block_id].start
                if pc in candidate_set:
                    for earlier in seen:
                        if earlier != pc:
                            order[earlier].add(pc)
                    if pc not in seen:
                        seen.append(pc)
            if path.reason == "stop" and path.stop_pc in candidate_set:
                for earlier in seen:
                    if earlier != path.stop_pc:
                        order[earlier].add(path.stop_pc)

    # Union-find chain groups: chained if either reaches the other.
    parent = {pc: pc for pc in candidates}

    def find(pc):
        while parent[pc] != pc:
            parent[pc] = parent[parent[pc]]
            pc = parent[pc]
        return pc

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for pc, afters in order.items():
        for other in afters:
            union(pc, other)

    groups = {}
    for pc in candidates:
        groups.setdefault(find(pc), []).append(pc)

    reduced = {}
    for members in groups.values():
        if len(members) == 1:
            pc = members[0]
            reduced[pc] = merge_prob[pc]
            continue
        first_taken = path_set.first_reach_prob("taken", members)
        first_nottaken = path_set.first_reach_prob("nottaken", members)
        first_merge = {
            pc: first_taken[pc] * first_nottaken[pc] for pc in members
        }
        winner = max(members, key=lambda pc: (first_merge[pc], -pc))
        reduced[winner] = first_merge[winner]
    return reduced
