"""Short-hammock always-predicate heuristic (paper §3.4).

Frequently-mispredicted hammocks with few instructions before the CFM
point are predicated on *every* execution, not only on low confidence:
mispredicting them flushes mostly control-independent work, while
predicating them wastes almost nothing.  The paper's empirically best
rule: fewer than 10 instructions on each path, merge probability at
least 95%, misprediction rate at least 5%.

A branch that qualifies keeps only its qualifying CFM points (§3.4's
final note) and is flagged ``always_predicate``.
"""


def apply_short_hammock_heuristic(candidates, profile, thresholds):
    """Partition ``candidates`` into short hammocks and the rest.

    Returns ``(short, regular)``: ``short`` maps branch pc to the tuple
    of qualifying CFM points; ``regular`` is the list of candidates
    that did not qualify (unchanged).
    """
    short = {}
    regular = []
    for candidate in candidates:
        qualifying = _qualifying_cfms(candidate, profile, thresholds)
        if qualifying:
            short[candidate.branch_pc] = qualifying
        else:
            regular.append(candidate)
    return short, regular


def _qualifying_cfms(candidate, profile, thresholds):
    misp_rate = profile.branch_profile.misprediction_rate(
        candidate.branch_pc
    )
    if misp_rate < thresholds.short_hammock_min_misp_rate:
        return ()
    qualifying = []
    for cfm in candidate.cfm_points:
        if cfm.pc is None:
            continue  # return CFMs never qualify as short hammocks
        if cfm.merge_prob < thresholds.short_hammock_min_merge_prob:
            continue
        longest_taken = candidate.path_set.longest_insts_to("taken", cfm.pc)
        longest_nottaken = candidate.path_set.longest_insts_to(
            "nottaken", cfm.pc
        )
        if longest_taken < thresholds.short_hammock_max_insts \
                and longest_nottaken < thresholds.short_hammock_max_insts:
            qualifying.append(cfm)
    return tuple(qualifying)
