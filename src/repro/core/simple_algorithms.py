"""The simple diverge-branch selection baselines of §7.2.

Six algorithms are compared in Figure 8; the five baselines live here:

- **Every-br** — every conditional branch executed during profiling;
- **Random-50** — a random half of them (seeded, reproducible);
- **High-BP-5** — branches above 5% profiled misprediction rate;
- **Immediate** — branches that have an IPOSDOM;
- **If-else** — only simple hammocks (no intervening control flow).

Per footnote 10, when a branch has an IPOSDOM it is used as the CFM
point; branches without one get no CFM point and degrade to dual-path
execution at run time.
"""

import random

from repro.core.alg_exact import find_exact_candidates
from repro.core.analysis import ProgramAnalysis
from repro.core.marks import (
    BinaryAnnotation,
    CFMKind,
    CFMPoint,
    DivergeBranch,
    DivergeKind,
)
from repro.core.thresholds import SelectionThresholds


def _mark_with_iposdom(analysis, branch_pc, thresholds, source):
    """A DivergeBranch using the IPOSDOM as CFM (or CFM-less)."""
    iposdom = analysis.iposdom_pc(branch_pc)
    if iposdom is None:
        return DivergeBranch(
            branch_pc=branch_pc,
            kind=DivergeKind.FREQUENTLY_HAMMOCK,
            cfm_points=(),
            source=source,
        )
    path_set = analysis.paths(
        branch_pc,
        max_instr=thresholds.max_instr,
        max_cbr=thresholds.max_cbr,
        min_exec_prob=thresholds.min_exec_prob,
        stop_at_iposdom=True,
    )
    select_registers = analysis.select_registers_for_paths(
        path_set, {iposdom}
    )
    return DivergeBranch(
        branch_pc=branch_pc,
        kind=DivergeKind.NESTED_HAMMOCK,
        cfm_points=(
            CFMPoint(pc=iposdom, kind=CFMKind.EXACT, merge_prob=1.0),
        ),
        select_registers=select_registers,
        source=source,
    )


def _annotate(program, analysis, branch_pcs, thresholds, source):
    annotation = BinaryAnnotation(program.name)
    for branch_pc in branch_pcs:
        annotation.add(
            _mark_with_iposdom(analysis, branch_pc, thresholds, source)
        )
    return annotation


def select_every_br(program, profile, thresholds=None):
    """Every-br: all profiled conditional branches become diverge branches."""
    thresholds = thresholds or SelectionThresholds()
    analysis = ProgramAnalysis(program, profile)
    return _annotate(
        program,
        analysis,
        analysis.executed_conditional_branches(),
        thresholds,
        "every-br",
    )


def select_random_50(program, profile, seed=0, fraction=0.5,
                     thresholds=None):
    """Random-50: a seeded random ``fraction`` of profiled branches."""
    thresholds = thresholds or SelectionThresholds()
    analysis = ProgramAnalysis(program, profile)
    branches = analysis.executed_conditional_branches()
    rng = random.Random(seed)
    chosen = sorted(rng.sample(branches, int(len(branches) * fraction)))
    return _annotate(program, analysis, chosen, thresholds, "random-50")


def select_high_bp(program, profile, min_misp_rate=0.05, thresholds=None):
    """High-BP-5: branches above ``min_misp_rate`` profiled misprediction."""
    thresholds = thresholds or SelectionThresholds()
    analysis = ProgramAnalysis(program, profile)
    chosen = [
        pc
        for pc in analysis.executed_conditional_branches()
        if profile.branch_profile.misprediction_rate(pc) > min_misp_rate
    ]
    return _annotate(program, analysis, chosen, thresholds, "high-bp-5")


def select_immediate(program, profile, thresholds=None):
    """Immediate: every profiled branch that has an IPOSDOM."""
    thresholds = thresholds or SelectionThresholds()
    analysis = ProgramAnalysis(program, profile)
    chosen = [
        pc
        for pc in analysis.executed_conditional_branches()
        if analysis.iposdom_pc(pc) is not None
    ]
    return _annotate(program, analysis, chosen, thresholds, "immediate")


def select_if_else(program, profile, thresholds=None):
    """If-else: only simple hammocks (no intervening control flow)."""
    thresholds = thresholds or SelectionThresholds()
    analysis = ProgramAnalysis(program, profile)
    annotation = BinaryAnnotation(program.name)
    for candidate in find_exact_candidates(analysis, thresholds):
        if candidate.kind is not DivergeKind.SIMPLE_HAMMOCK:
            continue
        select_registers = analysis.select_registers_for_paths(
            candidate.path_set, candidate.cfm_pcs
        )
        annotation.add(
            DivergeBranch(
                branch_pc=candidate.branch_pc,
                kind=candidate.kind,
                cfm_points=candidate.cfm_points,
                select_registers=select_registers,
                source="if-else",
            )
        )
    return annotation


def select_dual_path(program, profile):
    """Selective dual-path execution (Heil & Smith [8]) as marks.

    Every profiled conditional branch is marked with *no* CFM points:
    on low confidence the processor forks fetch and stays in dpred-mode
    until resolution — pure dual-path execution, the mechanism DMP
    generalizes.  Used by the prior-work comparison, not by Figure 8.
    """
    analysis = ProgramAnalysis(program, profile)
    annotation = BinaryAnnotation(program.name)
    for branch_pc in analysis.executed_conditional_branches():
        annotation.add(
            DivergeBranch(
                branch_pc=branch_pc,
                kind=DivergeKind.FREQUENTLY_HAMMOCK,
                cfm_points=(),
                source="dual-path",
            )
        )
    return annotation


def select_dynamic_hammock(program, profile, max_hammock_insts=16):
    """Dynamic hammock predication (Klauser et al. [15]) as marks.

    Klauser et al. predicate only *simple* hammocks (no intervening
    control flow) chosen by a size-based method: hammocks whose sides
    are at most ``max_hammock_insts`` instructions.  DMP's Alg-exact +
    Alg-freq generalize exactly this.
    """
    thresholds = SelectionThresholds().with_overrides(
        max_instr=max_hammock_insts
    )
    analysis = ProgramAnalysis(program, profile)
    annotation = BinaryAnnotation(program.name)
    for candidate in find_exact_candidates(analysis, thresholds):
        if candidate.kind is not DivergeKind.SIMPLE_HAMMOCK:
            continue
        select_registers = analysis.select_registers_for_paths(
            candidate.path_set, candidate.cfm_pcs
        )
        annotation.add(
            DivergeBranch(
                branch_pc=candidate.branch_pc,
                kind=candidate.kind,
                cfm_points=candidate.cfm_points,
                select_registers=select_registers,
                source="dynamic-hammock",
            )
        )
    return annotation


#: Names Figure 8 uses, mapped to the implementations.
SIMPLE_ALGORITHMS = {
    "every-br": select_every_br,
    "random-50": select_random_50,
    "high-bp-5": select_high_bp,
    "immediate": select_immediate,
    "if-else": select_if_else,
}
