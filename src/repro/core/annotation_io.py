"""Serialization of binary annotations.

The paper's toolflow attaches "a list of diverge branches and CFM
points ... to the binary and passed to [the] performance simulator"
(§6.1).  This module provides that artifact: a JSON representation of a
:class:`~repro.core.marks.BinaryAnnotation` that round-trips exactly,
plus helpers for bundling a program image and its annotation into one
"annotated binary" file.
"""

import json

from repro.core.marks import (
    BinaryAnnotation,
    CFMKind,
    CFMPoint,
    DivergeBranch,
    DivergeKind,
)
from repro.errors import SelectionError

FORMAT = "dmp-annotation"
VERSION = 1


def annotation_to_dict(annotation):
    """Plain-dict form of an annotation (stable field order)."""
    return {
        "format": FORMAT,
        "version": VERSION,
        "program": annotation.program_name,
        "branches": [
            {
                "pc": branch.branch_pc,
                "kind": branch.kind.value,
                "cfm_points": [
                    {
                        "pc": point.pc,
                        "kind": point.kind.value,
                        "merge_prob": round(point.merge_prob, 6),
                    }
                    for point in branch.cfm_points
                ],
                "select_registers": sorted(branch.select_registers),
                "always_predicate": branch.always_predicate,
                "loop_direction": branch.loop_direction,
                "loop_body_size": branch.loop_body_size,
                "source": branch.source,
            }
            for branch in annotation
        ],
    }


def annotation_from_dict(data):
    """Rebuild a :class:`BinaryAnnotation` from its dict form."""
    if data.get("format") != FORMAT:
        raise SelectionError("not a DMP annotation document")
    if data.get("version") != VERSION:
        raise SelectionError(
            f"unsupported annotation version {data.get('version')}"
        )
    annotation = BinaryAnnotation(data["program"])
    for entry in data["branches"]:
        cfm_points = tuple(
            CFMPoint(
                pc=point["pc"],
                kind=CFMKind(point["kind"]),
                merge_prob=point["merge_prob"],
            )
            for point in entry["cfm_points"]
        )
        annotation.add(
            DivergeBranch(
                branch_pc=entry["pc"],
                kind=DivergeKind(entry["kind"]),
                cfm_points=cfm_points,
                select_registers=frozenset(entry["select_registers"]),
                always_predicate=entry["always_predicate"],
                loop_direction=entry["loop_direction"],
                loop_body_size=entry["loop_body_size"],
                source=entry.get("source", ""),
            )
        )
    return annotation


def dumps(annotation, indent=2):
    """Annotation → JSON text."""
    return json.dumps(annotation_to_dict(annotation), indent=indent)


def loads(text):
    """JSON text → annotation."""
    return annotation_from_dict(json.loads(text))


def save(annotation, path):
    """Write the annotation next to its binary."""
    with open(path, "w") as handle:
        handle.write(dumps(annotation))


def load(path):
    with open(path) as handle:
        return loads(handle.read())


def validate_against_program(annotation, program):
    """Check an annotation is structurally consistent with a program.

    Every marked pc must hold a conditional branch; every concrete CFM
    pc must be a valid instruction index.  Returns a list of problem
    strings (empty = valid) so callers can choose to raise or report.
    """
    problems = []
    for branch in annotation:
        if not 0 <= branch.branch_pc < len(program):
            problems.append(f"branch pc {branch.branch_pc} out of range")
            continue
        if not program[branch.branch_pc].is_conditional_branch:
            problems.append(
                f"pc {branch.branch_pc} is not a conditional branch"
            )
        for point in branch.cfm_points:
            if point.pc is not None and not 0 <= point.pc < len(program):
                problems.append(
                    f"CFM pc {point.pc} of branch {branch.branch_pc} "
                    f"out of range"
                )
    return problems
