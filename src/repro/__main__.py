"""Command-line entry point: ``python -m repro <artifact> [options]``.

Regenerates the paper's tables and figures from the command line::

    python -m repro table1
    python -m repro fig5 --scale 0.5 --benchmarks gzip,twolf
    python -m repro all --scale 1.0
"""

import argparse
import sys

from repro.experiments import (
    ablations,
    priorwork,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
)

ARTIFACTS = {
    "table1": table1,
    "table2": table2,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "priorwork": priorwork,
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate tables/figures of 'Profile-assisted Compiler "
            "Support for Dynamic Predication in Diverge-Merge "
            "Processors' (CGO 2007)."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all", "ablations", "coverage"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-length multiplier (1.0 ≈ 60k insts per benchmark)",
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated benchmark subset (default: all 17)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render speedup figures as ASCII bar charts",
    )
    args = parser.parse_args(argv)

    benchmarks = (
        [b.strip() for b in args.benchmarks.split(",") if b.strip()]
        or None
    )

    if args.artifact == "coverage":
        from repro.experiments import coverage

        for name in benchmarks or ["gcc"]:
            print(coverage.format_result(
                coverage.run(name, scale=args.scale)))
            print()
        return 0

    if args.artifact == "ablations":
        for run in (
            ablations.run_acc_conf,
            ablations.run_max_cfm,
            ablations.run_confidence_threshold,
            ablations.run_easy_branch_filter,
            ablations.run_predictor_sensitivity,
            ablations.run_per_app_acc_conf,
        ):
            result = run(scale=args.scale, benchmarks=benchmarks)
            print(ablations.format_result(result))
            print()
        return 0

    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        module = ARTIFACTS[name]
        if name == "table1":
            result = module.run()
        else:
            result = module.run(scale=args.scale, benchmarks=benchmarks)
        print(module.format_result(result))
        if args.chart and "means" in result and "series" in result:
            from repro.experiments.charts import (
                chart_flush_result,
                chart_speedup_result,
            )
            chart = (
                chart_flush_result(result, name)
                if name == "fig6"
                else chart_speedup_result(result, name)
            )
            print()
            print(chart)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
