"""Command-line entry point: ``python -m repro <artifact> [options]``.

Regenerates the paper's tables and figures from the command line::

    python -m repro table1
    python -m repro fig5 --scale 0.5 --benchmarks gzip,twolf
    python -m repro all --scale 1.0

Telemetry (see ``docs/observability.md``)::

    python -m repro fig5 --trace run.jsonl --metrics run.json
    python -m repro trace-report run.jsonl
    python -m repro trace-report run.jsonl --trace-id 4bf92f35...
    python -m repro all --manifest results/run_manifest.json

Distributed tracing (see ``docs/observability.md``)::

    python -m repro fig5 --trace-dir results/trace
    python -m repro trace list --dir results/trace
    python -m repro trace show <trace_id> --dir results/trace

Performance (see ``docs/performance.md``)::

    python -m repro all --jobs 8          # process-pool fan-out
    python -m repro fig5 --jobs 1         # serial (the old behaviour)
    python -m repro cache info            # persistent artifact cache
    python -m repro cache clear

Campaigns (see ``docs/campaigns.md``)::

    python -m repro campaign run fig7 --scale 0.5 --jobs 8
    python -m repro campaign status fig7
    python -m repro campaign resume fig7     # after a crash or ^C
    python -m repro campaign report fig7

Compiler pipeline (see ``docs/compiler.md``)::

    python -m repro compile --benchmark twolf --config all-best-heur
    python -m repro compile --benchmark twolf \
        --pipeline "exact,freq,short,ret,loop,cost:edge" -o marks.json

Decision ledger (see ``docs/observability.md``)::

    python -m repro explain mcf --config All-best-cost
    python -m repro explain mcf --branch 137
    python -m repro explain mcf --json -o results/explain_mcf.json

Simulator cost profile (see ``docs/observability.md``)::

    python -m repro profile gzip --scale 0.5
    python -m repro profile gzip --folded -o gzip.folded
    python -m repro profile gzip --json -o results/profile_gzip.json

Serving daemon (see ``docs/serving.md``)::

    python -m repro serve --port 8642 --warm gzip,twolf
    curl -d '{"benchmark": "twolf"}' localhost:8642/v1/compile
"""

import argparse
import sys
from contextlib import ExitStack

from repro.exec import artifact_cache, default_jobs
from repro.experiments import (
    ablations,
    meldcompare,
    priorwork,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
)
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    PhaseProfile,
    activate,
    build_manifest,
    format_trace_report,
    jsonl_tracer,
    span,
    summarize_trace,
    telemetry,
    write_manifest,
)

ARTIFACTS = {
    "table1": table1,
    "table2": table2,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "priorwork": priorwork,
    "meldcompare": meldcompare,
}

#: Where ``python -m repro all`` writes its combined manifest unless
#: ``--manifest`` overrides it.
DEFAULT_ALL_MANIFEST = "results/run_manifest.json"


def main(argv=None):
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "compile":
        from repro.compiler.cli import main as compile_main

        return compile_main(argv[1:])
    if argv and argv[0] == "explain":
        from repro.obs.explain import main as explain_main

        return explain_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.obs.profile_cli import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.daemon import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.traceview import main as trace_main

        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate tables/figures of 'Profile-assisted Compiler "
            "Support for Dynamic Predication in Diverge-Merge "
            "Processors' (CGO 2007)."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + [
            "all", "ablations", "coverage", "trace-report", "cache",
        ],
        help="which table/figure to regenerate (or trace-report to "
             "summarize an event log, or cache to manage the artifact "
             "cache; 'campaign run/resume/status/report' manages "
             "durable sweeps — see docs/campaigns.md)",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="for trace-report: the JSONL trace log to summarize; "
             "for cache: the action (info or clear)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for experiment cells "
             f"(default: all {default_jobs()} CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent artifact cache directory (default: "
             f"$REPRO_CACHE_DIR or {artifact_cache.DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="skip the persistent artifact cache for this run",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-length multiplier (1.0 ≈ 60k insts per benchmark)",
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated benchmark subset (default: all 17)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render speedup figures as ASCII bar charts",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        default=None,
        help="write structured telemetry events (episodes, flushes, "
             "selection decisions) as JSONL",
    )
    parser.add_argument(
        "--trace-id",
        metavar="ID",
        default=None,
        help="for trace-report: keep only events stamped with this "
             "distributed trace id",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="span spool directory for distributed tracing: the run "
             "becomes one trace ('python -m repro trace show <id>' "
             "merges it with any worker processes)",
    )
    parser.add_argument(
        "--metrics",
        metavar="OUT.json",
        default=None,
        help="write the metrics-registry snapshot as JSON",
    )
    parser.add_argument(
        "--metrics-format",
        choices=("json", "openmetrics"),
        default="json",
        help="format for --metrics output (openmetrics = Prometheus "
             "text exposition)",
    )
    parser.add_argument(
        "--manifest",
        metavar="OUT.json",
        default=None,
        help="write a run manifest (config, git rev, phase timings, "
             f"metrics); 'all' defaults to {DEFAULT_ALL_MANIFEST}",
    )
    parser.add_argument(
        "--sim-engine",
        choices=("auto", "scalar", "vectorized"),
        default=None,
        help="timing-simulator engine: 'vectorized' is the numpy "
             "batch-replay fast path, 'auto' (the default) uses it "
             "whenever it is bit-identical to 'scalar' "
             "(see docs/performance.md)",
    )
    args = parser.parse_args(argv)

    if args.sim_engine is not None:
        from repro.uarch import set_default_engine

        set_default_engine(args.sim_engine)
    if args.cache_dir:
        artifact_cache.set_cache_dir(args.cache_dir)
    if args.no_disk_cache:
        artifact_cache.set_disabled(True)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.artifact == "cache":
        return _run_cache_command(parser, args.path)

    if args.artifact == "trace-report":
        if not args.path:
            parser.error("trace-report requires a trace log path")
        try:
            summary = summarize_trace(args.path, trace_id=args.trace_id)
        except OSError as exc:
            print(f"python -m repro: error: cannot read trace: {exc}",
                  file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"python -m repro: error: {exc}", file=sys.stderr)
            return 1
        print(format_trace_report(summary))
        return 0
    if args.path is not None:
        parser.error(
            f"unexpected positional argument {args.path!r} "
            f"(only trace-report and cache take one)"
        )

    benchmarks = (
        [b.strip() for b in args.benchmarks.split(",") if b.strip()]
        or None
    )

    registry = MetricsRegistry()
    phases = PhaseProfile()
    tracer = jsonl_tracer(args.trace) if args.trace else NULL_TRACER
    telemetry_requested = bool(
        args.trace or args.metrics or args.manifest
    )

    ctx = None
    if args.trace_dir:
        from repro.obs import tracectx

        ctx = tracectx.TraceContext.root(
            service="repro", trace_dir=args.trace_dir,
            attrs={"artifact": args.artifact},
        )
    try:
        with ExitStack() as stack:
            stack.enter_context(
                telemetry(tracer=tracer, metrics=registry,
                          phases=phases))
            stack.enter_context(activate(ctx))
            if ctx is not None:
                stack.enter_context(span(f"repro.{args.artifact}"))
            status = _run_artifact(args, benchmarks)
    finally:
        tracer.close()
    if status:
        return status

    if ctx is not None:
        print(f"[obs] trace {ctx.trace_id} spooled to {args.trace_dir} "
              f"(python -m repro trace show {ctx.trace_id} "
              f"--dir {args.trace_dir})")

    if args.trace:
        print(f"[obs] trace written to {args.trace}")
    if args.metrics:
        if args.metrics_format == "openmetrics":
            registry.write_openmetrics(args.metrics)
        else:
            registry.write_json(args.metrics)
        print(f"[obs] metrics written to {args.metrics} "
              f"({args.metrics_format})")

    manifest_path = args.manifest
    if manifest_path is None and args.artifact == "all":
        manifest_path = DEFAULT_ALL_MANIFEST
    if manifest_path:
        manifest = build_manifest(
            command=f"python -m repro {args.artifact}",
            args={
                "artifact": args.artifact,
                "scale": args.scale,
                "benchmarks": args.benchmarks or "all",
                "trace": args.trace,
                "metrics": args.metrics,
                "sim_engine": args.sim_engine or "auto",
            },
            benchmarks=benchmarks,
            scale=args.scale,
            phases=phases,
            metrics=registry,
        )
        write_manifest(manifest_path, manifest)
        print(f"[obs] run manifest written to {manifest_path}")

    if telemetry_requested or args.artifact == "all":
        print()
        print(phases.report())
    return 0


def _run_cache_command(parser, action):
    """``python -m repro cache {info,clear}``."""
    action = action or "info"
    if action == "info":
        info = artifact_cache.info()
        state = "enabled" if info["enabled"] else "disabled"
        print(f"artifact cache at {info['dir']} ({state})")
        print(
            f"  {info['entries']} entries, {info['bytes']:,} bytes "
            f"({artifact_cache.format_size(info['bytes'])}), "
            f"format v{info['format_version']}"
        )
        for kind in sorted(info["kinds"]):
            bucket = info["kinds"][kind]
            print(
                f"    {kind}: {bucket['entries']} entries, "
                f"{artifact_cache.format_size(bucket['bytes'])}"
            )
        return 0
    if action == "clear":
        removed = artifact_cache.clear()
        print(
            f"artifact cache at {artifact_cache.cache_dir()}: "
            f"removed {removed} entries"
        )
        return 0
    parser.error(f"unknown cache action {action!r} (use info or clear)")


def _run_artifact(args, benchmarks):
    """Dispatch one artifact run under the active telemetry context."""
    jobs = args.jobs if args.jobs is not None else default_jobs()

    if args.artifact == "coverage":
        from repro.experiments import coverage

        results = coverage.run_many(
            benchmarks or ["gcc"], scale=args.scale, jobs=jobs
        )
        for result in results:
            print(coverage.format_result(result))
            print()
        return 0

    if args.artifact == "ablations":
        for run in (
            ablations.run_acc_conf,
            ablations.run_max_cfm,
            ablations.run_confidence_threshold,
            ablations.run_easy_branch_filter,
            ablations.run_predictor_sensitivity,
            ablations.run_per_app_acc_conf,
        ):
            result = run(scale=args.scale, benchmarks=benchmarks,
                         jobs=jobs)
            print(ablations.format_result(result))
            print()
        return 0

    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        module = ARTIFACTS[name]
        if name == "table1":
            result = module.run()
        else:
            result = module.run(scale=args.scale, benchmarks=benchmarks,
                                jobs=jobs)
        print(module.format_result(result))
        if args.chart and "means" in result and "series" in result:
            from repro.experiments.charts import (
                chart_flush_result,
                chart_speedup_result,
            )
            chart = (
                chart_flush_result(result, name)
                if name == "fig6"
                else chart_speedup_result(result, name)
            )
            print()
            print(chart)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
