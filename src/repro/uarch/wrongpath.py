"""Wrong-path instruction synthesis for dpred-mode.

In the real DMP the front end fetches *both* sides of a diverge branch,
following the branch predictor on each.  A trace-driven simulator only
has the true path, so the other side is synthesized by walking the
static program from the not-taken-by-the-trace successor, following a
per-branch dynamic bias for conditional branches encountered on the
way, until a CFM point of the diverge branch (or a return, for
return-CFMs) or the instruction budget.

The bias table is a bimodal predictor updated with every true-path
branch outcome the simulator retires — a faithful stand-in for "the
branch predictor's current opinion" without checkpointing the real
predictor's global history down a path that never really executed
(documented approximation, DESIGN.md §5).
"""

from repro.isa.instructions import Opcode


class BiasTable:
    """2-bit dynamic per-pc direction bias."""

    __slots__ = ("_counters",)

    def __init__(self):
        self._counters = {}

    def record(self, pc, taken):
        counter = self._counters.get(pc, 2)
        if taken:
            self._counters[pc] = min(3, counter + 1)
        else:
            self._counters[pc] = max(0, counter - 1)

    def predict(self, pc):
        return self._counters.get(pc, 2) >= 2


class WrongPathWalker:
    """Synthesizes the non-trace side of a dpred episode.

    The walker tallies its walks, how many reached a CFM point, and
    the instructions synthesized in plain int fields — cheap enough
    for the hot path; the simulator folds them into the metrics
    registry once per run via :meth:`record_metrics`.
    """

    def __init__(self, program, bias, metrics=None):
        self.program = program
        self.bias = bias
        #: Kept for signature compatibility; totals are recorded into
        #: a registry via :meth:`record_metrics`, not per walk.
        self.metrics = metrics
        self.walks = 0
        self.walks_merged = 0
        self.insts_synthesized = 0

    def record_metrics(self, metrics=None, prefix="wrongpath"):
        """Fold the walk tallies into a metrics registry (idempotent
        per call site: counters advance by the delta since last fold)."""
        registry = metrics if metrics is not None else self.metrics
        if registry is None:
            return
        registry.counter(f"{prefix}_walks_total").inc(self.walks)
        registry.counter(f"{prefix}_walks_merged_total").inc(
            self.walks_merged
        )
        registry.counter(f"{prefix}_insts_total").inc(
            self.insts_synthesized
        )
        self.walks = self.walks_merged = self.insts_synthesized = 0

    def walk(self, start_pc, cfm_pcs, return_cfm, max_insts):
        """Walk from ``start_pc``; returns ``(insts_fetched, merged)``.

        ``merged`` is True when the walk reached a CFM point of the
        diverge branch: a pc in ``cfm_pcs``, or — for return-CFM
        branches — a return executed at the hammock's own call depth.
        ``insts_fetched`` counts instructions the wrong path consumed
        (capped at ``max_insts``).
        """
        count, merged = self._walk(start_pc, cfm_pcs, return_cfm,
                                   max_insts)
        self.walks += 1
        self.insts_synthesized += count
        if merged:
            self.walks_merged += 1
        return count, merged

    def _walk(self, start_pc, cfm_pcs, return_cfm, max_insts):
        instructions = self.program.instructions
        bias = self.bias
        pc = start_pc
        count = 0
        call_stack = []
        while count < max_insts:
            if not 0 <= pc < len(instructions):
                return count, False
            if pc in cfm_pcs:
                return count, True
            inst = instructions[pc]
            op = inst.op
            count += 1
            if op is Opcode.JMP:
                pc = inst.target
            elif op is Opcode.CALL:
                call_stack.append(pc + 1)
                pc = inst.target
            elif op is Opcode.RET:
                if not call_stack:
                    # Returning out of the hammock's own function: a
                    # return CFM merges exactly here; any other path
                    # escapes the analysis scope unmerged.
                    return count, bool(return_cfm)
                pc = call_stack.pop()
            elif op in (Opcode.BEQZ, Opcode.BNEZ):
                pc = inst.target if bias.predict(pc) else pc + 1
            elif op is Opcode.HALT:
                return count, False
            else:
                pc += 1
        return count, False


def walk_wrong_path(program, bias, start_pc, cfm_pcs, return_cfm,
                    max_insts):
    """Stateless convenience wrapper around :class:`WrongPathWalker`."""
    walker = WrongPathWalker(program, bias)
    return walker.walk(start_pc, cfm_pcs, return_cfm, max_insts)
