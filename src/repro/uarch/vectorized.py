"""numpy batch-replay fast path for the timing simulator.

:class:`VectorizedTimingSimulator` produces **bit-identical**
:class:`~repro.uarch.stats.SimStats` (and identical ledger counters and
trace events) to the scalar :class:`~repro.uarch.simulator.TimingSimulator`
while replaying the trace an order of magnitude faster.  The key
observation is that the branch machinery — perceptron, JRS confidence,
BTB, RAS — and the cache hierarchy evolve purely from *trace-determined*
inputs (pc, taken, next_pc, address), never from timing state.  So the
trace is consumed in windows and, per window:

1. **Decode gather** — static per-pc tables (kind, latency, sources,
   destination) are gathered for the window's rows in one numpy indexing
   operation.
2. **D-cache pre-pass** — ``memory.data_latency`` is replayed over the
   window's loads/stores in trace order (the scalar engine calls it for
   every memory row unconditionally, and the instruction side never
   misses after the warm pass — see :func:`supports` — so the D-cache/L2
   access sequence is trace-order pure).  Load latencies are scattered
   into the window's latency vector.
3. **Branch pre-pass** — predictor outcomes and confidence queries for
   the window's conditional branches.  For the perceptron, per-branch
   histories are materialized as one sliding-window matrix over
   ``initial history ⊕ outcomes`` and training happens in-place per
   branch; prediction and update share one dot product (the scalar path
   computes the same dot twice).
4. **Control pre-pass** — BTB bubbles and RAS return predictions for
   the window's control rows, emitted as compact cursor-indexed lists.
5. **Lean replay** — a single python loop advances the front-end /
   dataflow / ROB clocks over plain python lists (one ``tolist`` per
   column), with the in-order retire state folded into a closed-form
   counter (``p = retire_width * last_retire_cycle + retired_in_cycle
   - 1`` advances as ``p' = max(p + 1, retire_width * complete)`` per
   retired entry).  Dpred episodes, flushes, and wrong-path walks fall
   back to the exact scalar semantics via the shared helpers on the
   base class — the bias table and wrong-path walker stay interleaved
   in the replay loop because the walker reads the bias table as of the
   (timing-dependent) episode entry row.

With ``profiler=None`` the replay loop carries **no** per-row stopwatch
checks (same zero-overhead guarantee as the scalar engine, proven by
``benchmarks/test_sim_profiler.py``).  With a profiler, each batched
kernel is charged to its component: window setup/gathers → fetch,
D-cache pre-pass → dcache, branch/control pre-passes → branch_predict,
replay loop → dataflow, warm pass → icache, drain → rob_retire, episode
construction/walks → dpred_episode/wrong_path.  The stopwatch partition
still sums exactly to the instrumented run; event counts match the
scalar engine except ``icache`` (the vectorized engine proves the
instruction side resident once instead of probing it per fetch group)
and the per-kernel (instead of per-row) fetch/dataflow attribution.
"""

import weakref

import numpy as np

from repro.branchpred.confidence import COUNTER_MAX
from repro.branchpred.perceptron import (
    WEIGHT_MAX,
    WEIGHT_MIN,
    PerceptronPredictor,
)
from repro.core.marks import DivergeKind
from repro.emulator.windows import trace_columns, window_bounds
from repro.errors import SimulationError
from repro.isa.registers import NUM_REGISTERS
from repro.memory.hierarchy import INSTRUCTIONS_PER_LINE
from repro.obs import events as obs_events
from repro.uarch.profiler import (
    BRANCH_PRED,
    DATAFLOW,
    DCACHE,
    DPRED_EPISODE,
    FETCH,
    ICACHE,
    NUM_COMPONENTS,
    OTHER,
    ROB_RETIRE,
    WRONG_PATH,
)
from repro.uarch.simulator import TimingSimulator
from repro.uarch.stats import SimStats

#: Row classes in the static decode tables.  Memory rows collapse to
#: ``_PLAIN`` in the replay-kind table (their latency is precomputed),
#: so the replay loop only branches on control kinds.
_PLAIN, _COND, _JMP, _CALL, _RET, _LOAD, _STORE = range(7)

#: Default replay window (rows).  Large enough to amortize the numpy
#: pre-passes, small enough that the gathered columns stay cache-warm.
DEFAULT_WINDOW = 1 << 15

#: Sentinel register indices: decode tables map "no destination" (NOP,
#: store, branch, or an architectural r0 write) to a scratch slot that
#: is written but never read, and "no source" to a null slot that is
#: read but never written (so it always reports ready-at-0).  This
#: keeps the replay loop branch-free on operand presence.
_SCRATCH_REG = NUM_REGISTERS
_NULL_REG = NUM_REGISTERS + 1

#: Static decode tables are pure functions of the program, shared
#: across simulator instances (constructing a simulator per run is the
#: common pattern in the experiment drivers).
_DECODE_CACHE = weakref.WeakKeyDictionary()


def supports(program, config):
    """Can the vectorized engine replay ``program`` bit-identically?

    Returns ``(ok, reason)``.  The one structural precondition is that
    the static code stays I-cache resident after the warm pass both
    engines run: the scalar engine probes the I-cache once per fetch
    group, and skipping those probes (which is what makes batch replay
    fast) is only sound when every probe would hit — otherwise probe
    misses would stall fetch and interleave extra L2 accesses into the
    D-cache pre-pass's access sequence.  Program pcs occupy contiguous
    lines ``0 .. L-1``, so residency reduces to per-set occupancy
    ``ceil(L / num_sets) <= associativity``.
    """
    num_lines = (config.icache_kb * 1024) // 64
    num_sets = max(1, num_lines // config.icache_assoc)
    program_lines = -(-len(program.instructions) // INSTRUCTIONS_PER_LINE)
    if -(-program_lines // num_sets) > config.icache_assoc:
        return False, (
            f"program ({len(program.instructions)} instructions, "
            f"{program_lines} lines) exceeds I-cache residency "
            f"({num_sets} sets x {config.icache_assoc} ways)"
        )
    return True, ""


class VectorizedTimingSimulator(TimingSimulator):
    """Drop-in :class:`TimingSimulator` with a batch-replay ``run``.

    Construction, configuration, and the dpred episode machinery are
    shared with the scalar engine (same predictor, confidence, BTB,
    RAS, memory hierarchy, bias table, and wrong-path walker state),
    so a given (program, config, annotation) triple runs through
    exactly the same model — only faster.  ``window_size`` is the
    replay window in trace rows (tests sweep tiny windows to pin the
    window-boundary behaviour).
    """

    def __init__(self, program, config=None, annotation=None,
                 collect_per_branch=False, tracer=None, metrics=None,
                 ledger=None, profiler=None, window_size=None):
        super().__init__(
            program, config=config, annotation=annotation,
            collect_per_branch=collect_per_branch, tracer=tracer,
            metrics=metrics, ledger=ledger, profiler=profiler,
        )
        ok, reason = supports(program, self.config)
        if not ok:
            raise SimulationError(
                f"vectorized engine cannot replay this program "
                f"bit-identically: {reason}"
            )
        self.window_size = (
            DEFAULT_WINDOW if window_size is None else int(window_size)
        )
        if self.window_size < 1:
            raise SimulationError(
                f"window_size must be >= 1, got {self.window_size}"
            )
        self._build_decode_tables()

    # ------------------------------------------------------------------
    # Static decode tables
    # ------------------------------------------------------------------

    def _build_decode_tables(self):
        program = self.program
        instructions = program.instructions
        n = len(instructions)
        try:
            cached = _DECODE_CACHE.get(program)
        except TypeError:         # unweakrefable program stand-in
            cached = None
        if cached is None:
            kind = np.zeros(n, dtype=np.int64)
            lat = np.empty(n, dtype=np.int64)
            src1 = np.full(n, _NULL_REG, dtype=np.int64)
            src2 = np.full(n, _NULL_REG, dtype=np.int64)
            src3 = np.full(n, _NULL_REG, dtype=np.int64)
            dest = np.full(n, _SCRATCH_REG, dtype=np.int64)
            targets = [-1] * n
            for pc, inst in enumerate(instructions):
                if inst.is_conditional_branch:
                    kind[pc] = _COND
                elif inst.is_call:
                    kind[pc] = _CALL
                elif inst.is_return:
                    kind[pc] = _RET
                elif inst.is_control:
                    kind[pc] = _JMP
                elif inst.is_load:
                    kind[pc] = _LOAD
                elif inst.is_store:
                    kind[pc] = _STORE
                lat[pc] = inst.latency
                reads = inst.read_registers()
                if reads:
                    src1[pc] = reads[0]
                    if len(reads) > 1:
                        src2[pc] = reads[1]
                        if len(reads) > 2:    # CMOV reads its old dest
                            src3[pc] = reads[2]
                written = inst.written_register()
                if written:   # None and r0 both mean "no dataflow dest"
                    dest[pc] = written
                if inst.target is not None:
                    targets[pc] = inst.target
            cached = (kind, np.where(kind >= _LOAD, _PLAIN, kind),
                      lat, src1, src2, src3, dest, targets)
            try:
                _DECODE_CACHE[program] = cached
            except TypeError:
                pass
        (self._kind_table, self._replay_kind_table, self._lat_table,
         self._src1_table, self._src2_table, self._src3_table,
         self._dest_table, self._target_by_pc) = cached
        # Diverge marks by pc (same truthiness rule as the scalar row
        # loop: an empty annotation never yields a diverge branch).
        if self.annotation:
            diverge_by_pc = [None] * n
            for mark in self.annotation:
                diverge_by_pc[mark.branch_pc] = mark
            self._diverge_by_pc = diverge_by_pc
        else:
            self._diverge_by_pc = None

    # ------------------------------------------------------------------
    # Per-window pre-passes
    # ------------------------------------------------------------------

    def _branch_prepass(self, cond_pcs, cond_taken):
        """Replay predictor + confidence over a window's cond branches.

        Returns ``(predicted, low_conf, mispredicted)`` python lists
        plus the window's (mispredictions, low-confidence, low-and-mis)
        counts.  Predictor and confidence state advance exactly as the
        scalar per-branch ``predict``/``update`` calls would.
        """
        m = cond_pcs.shape[0]
        pcs_list = cond_pcs.tolist()
        taken_list = cond_taken.tolist()
        pred_l = []
        low_l = []
        mis_l = []
        ap_pred = pred_l.append
        ap_low = low_l.append
        ap_mis = mis_l.append
        predictor = self.predictor
        conf = self.confidence
        counters = conf._counters
        centries = conf.num_entries
        cthreshold = conf.threshold
        chist = conf._history
        chist_mask = conf._history_mask
        cidx_mask = centries - 1
        n_mis = 0
        n_low = 0
        n_low_mis = 0
        if isinstance(predictor, PerceptronPredictor):
            h = predictor.history_bits
            # Chronological outcome stream: initial history (oldest
            # first) followed by this window's outcomes; branch j's
            # most-recent-first history is a reversed length-h slice
            # ending just before outcome j.
            outcomes = cond_taken.astype(np.int32) * 2 - 1
            chron = np.concatenate((predictor._history[::-1], outcomes))
            windows = np.lib.stride_tricks.sliding_window_view(
                chron[::-1], h
            )
            hist_rows = windows[np.arange(m, 0, -1)]
            weights = predictor._weights
            num_perceptrons = predictor.num_perceptrons
            pthreshold = predictor.threshold
            for j in range(m):
                pc = pcs_list[j]
                taken = taken_list[j]
                row = weights[pc % num_perceptrons]
                history = hist_rows[j]
                output = int(row[0]) + int(row[1:] @ history)
                pred = output >= 0
                mis = pred != taken
                if mis or (output if pred else -output) <= pthreshold:
                    # minimum+maximum ufuncs with out= do what np.clip
                    # does without its (much slower) dispatch wrapper.
                    weight_tail = row[1:]
                    if taken:
                        bias_weight = int(row[0]) + 1
                        row[0] = (bias_weight if bias_weight <= WEIGHT_MAX
                                  else WEIGHT_MAX)
                        np.add(weight_tail, history, out=weight_tail)
                        np.minimum(weight_tail, WEIGHT_MAX,
                                   out=weight_tail)
                        np.maximum(weight_tail, WEIGHT_MIN,
                                   out=weight_tail)
                    else:
                        bias_weight = int(row[0]) - 1
                        row[0] = (bias_weight if bias_weight >= WEIGHT_MIN
                                  else WEIGHT_MIN)
                        np.subtract(weight_tail, history, out=weight_tail)
                        np.maximum(weight_tail, WEIGHT_MIN,
                                   out=weight_tail)
                        np.minimum(weight_tail, WEIGHT_MAX,
                                   out=weight_tail)
                index = (pc ^ (chist & cidx_mask)) % centries
                low = counters[index] < cthreshold
                if low:
                    n_low += 1
                    if mis:
                        n_low_mis += 1
                if mis:
                    n_mis += 1
                    counters[index] = 0
                    chist = ((chist << 1) | 1) & chist_mask
                else:
                    bumped = counters[index] + 1
                    if bumped <= COUNTER_MAX:
                        counters[index] = bumped
                    chist = (chist << 1) & chist_mask
                ap_pred(pred)
                ap_low(low)
                ap_mis(mis)
            predictor._history = chron[len(chron) - h:][::-1].copy()
        else:
            predict = predictor.predict
            update = predictor.update
            for j in range(m):
                pc = pcs_list[j]
                taken = taken_list[j]
                pred = predict(pc)
                mis = pred != taken
                update(pc, taken)
                index = (pc ^ (chist & cidx_mask)) % centries
                low = counters[index] < cthreshold
                if low:
                    n_low += 1
                    if mis:
                        n_low_mis += 1
                if mis:
                    n_mis += 1
                    counters[index] = 0
                    chist = ((chist << 1) | 1) & chist_mask
                else:
                    bumped = counters[index] + 1
                    if bumped <= COUNTER_MAX:
                        counters[index] = bumped
                    chist = (chist << 1) & chist_mask
                ap_pred(pred)
                ap_low(low)
                ap_mis(mis)
        conf._history = chist
        conf.queries += m
        conf.low_confidence_count += n_low
        conf.low_confidence_mispredicted += n_low_mis
        return pred_l, low_l, mis_l, n_mis, n_low, n_low_mis

    def _control_prepass(self, kinds_w, pcs_w, next_w, cond_mis):
        """Replay BTB + RAS over a window's control rows.

        Returns ``(ctl_taken, ctl_extra)`` aligned with the window's
        control rows in trace order: for cond/jmp/call rows ``extra``
        is the BTB bubble to charge (0 when none), for ret rows it is
        the RAS-correct flag.  ``cond_mis`` is the branch pre-pass's
        misprediction list (cond rows are a subsequence of control
        rows, so a cond-ordinal cursor lines them up).
        """
        ctrl_rows = np.nonzero((kinds_w >= _COND) & (kinds_w <= _RET))[0]
        if not ctrl_rows.size:
            return [], []
        kinds = kinds_w[ctrl_rows].tolist()
        pcs = pcs_w[ctrl_rows].tolist()
        nexts = next_w[ctrl_rows].tolist()
        btb = self.btb
        tags = btb._tags
        btb_targets = btb._targets
        num_entries = btb.num_entries
        bubble = btb.miss_bubble_cycles
        push = self.ras.push
        pop_predict = self.ras.pop_predict
        taken_l = []
        extra_l = []
        ap_taken = taken_l.append
        ap_extra = extra_l.append
        hits = 0
        misses = 0
        cond_cursor = 0
        for k, pc, nxt in zip(kinds, pcs, nexts):
            taken = nxt != pc + 1
            ap_taken(taken)
            if k == _COND:
                mis = cond_mis[cond_cursor]
                cond_cursor += 1
                if not taken or mis:
                    ap_extra(0)
                    continue
            elif k == _RET:
                ap_extra(1 if pop_predict(nxt) else 0)
                continue
            elif k == _CALL:
                push(pc + 1)
            # Taken control: the scalar _btb_miss_bubble lookup/insert.
            index = pc % num_entries
            if tags[index] == pc:
                hits += 1
                if btb_targets[index] == nxt:
                    ap_extra(0)
                    continue
            else:
                misses += 1
            tags[index] = pc
            btb_targets[index] = nxt
            ap_extra(bubble)
        btb.hits += hits
        btb.misses += misses
        return taken_l, extra_l

    # ------------------------------------------------------------------
    # Batch replay
    # ------------------------------------------------------------------

    def run(self, trace, label=""):
        """Simulate ``trace`` and return :class:`SimStats`."""
        if not trace:
            raise SimulationError("empty trace")
        cfg = self.config
        stats = SimStats(label=label)
        instructions = self.program.instructions
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.emit(obs_events.SimRunStart(
                label=label,
                trace_length=len(trace),
                dmp_enabled=self.annotation is not None,
            ))
        hist_episode_cycles = self._hist_episode_cycles

        # Same stopwatch-partition contract as the scalar engine, but
        # charged per batched kernel instead of per row — the replay
        # loop itself carries no per-row charge sites (its residual
        # bills to dataflow at the window boundary), so profiler=None
        # stays allocation- and check-free on the hot path.
        profiler = self.profiler
        profiling = profiler is not None
        if profiling:
            from time import perf_counter as _perf

            comp_sec = [0.0] * NUM_COMPONENTS
            comp_events = [0] * NUM_COMPONENTS
            mark = _perf()

            def charge(index):
                nonlocal mark
                now = _perf()
                comp_sec[index] += now - mark
                mark = now
        else:
            charge = None

        # Columnar view of the trace (zero-copy for compact traces).
        pcs_np, next_np, addr_np = trace_columns(trace)
        n = pcs_np.shape[0]
        if profiling:
            charge(OTHER)

        # Warm the instruction side (identical to the scalar engine);
        # supports() guarantees every later probe would hit, which is
        # why the replay loop can skip them.
        warm_step = max(1, self.memory.icache.words_per_line)
        for pc in range(0, len(instructions), warm_step):
            self.memory.instruction_latency(pc)
        if profiling:
            charge(ICACHE)
            comp_events[ICACHE] += -(-len(instructions) // warm_step)

        # Hoisted configuration and machinery.
        fetch_width = cfg.fetch_width
        half_width = max(1, fetch_width // 2)
        frontend_depth = cfg.frontend_depth
        redirect = cfg.redirect_penalty
        retire_width = cfg.retire_width
        rob_size = cfg.rob_size
        max_cond = cfg.max_cond_branches_per_cycle
        max_wrong_path = cfg.dpred_max_wrong_path_insts
        memory = self.memory
        diverge_by_pc = self._diverge_by_pc
        dmp = diverge_by_pc is not None
        bias_counters = self.bias._counters
        kind_table = self._kind_table
        replay_kind_table = self._replay_kind_table
        lat_table = self._lat_table
        src1_table = self._src1_table
        src2_table = self._src2_table
        src3_table = self._src3_table
        dest_table = self._dest_table
        target_by_pc = self._target_by_pc

        # Front-end / dataflow / ROB state (carried across windows).
        cycle = 0
        slots_used = 0
        cond_used = 0
        # Two extra slots for the decode-table sentinels: _NULL_REG is
        # never written (always ready at 0), _SCRATCH_REG never read.
        reg_ready = [0] * (NUM_REGISTERS + 2)
        rob = []
        rob_append = rob.append
        rob_extend = rob.extend
        rob_head = 0
        rob_occ = 0                      # == len(rob) - rob_head
        last_complete = 0
        episode = None
        # In-order retire clock, closed form: with the scalar engine's
        # (last_retire_cycle, retired_in_cycle) state, p =
        # retire_width * last_retire_cycle + retired_in_cycle - 1, and
        # retiring an entry completed at cycle c advances it as
        # p' = max(p + 1, retire_width * c).  last_retire_cycle is
        # recovered as p // retire_width.
        p = -1

        ledger = self.ledger
        per_branch = (
            {} if (self.collect_per_branch or ledger is not None)
            else None
        )
        track = per_branch is not None

        def branch_counters(pc):
            counters = per_branch.get(pc)
            if counters is None:
                # Slot order matches repro.obs.ledger.RUNTIME_COUNTERS
                # (same comment as the scalar engine).
                counters = [0] * 11
                per_branch[pc] = counters
            return counters

        def end_episode_unmerged(reason="resolved-unmerged"):
            nonlocal episode, cycle
            ep = episode
            episode = None
            if ep.resolve > cycle:
                cycle = ep.resolve
            duration = ep.resolve - ep.start_cycle
            if duration < 0:
                duration = 0
            hist_episode_cycles.observe(duration)
            if track:
                counters = branch_counters(ep.branch_pc)
                counters[6] += 1
                counters[10] += duration
            if traced:
                tracer.emit(obs_events.DpredEpisodeEnd(
                    branch_pc=ep.branch_pc,
                    cycle=cycle,
                    duration_cycles=duration,
                    reason=reason,
                ))
            if ep.kind == "loop":
                resolve = ep.resolve
                for reg in ep.select_registers:
                    if resolve > reg_ready[reg]:
                        reg_ready[reg] = resolve

        def charge_fetch_slots(count):
            nonlocal cycle, slots_used
            slots_used += count
            while slots_used >= fetch_width:
                cycle += 1
                slots_used -= fetch_width

        def end_episode_merged(merge_cycle):
            nonlocal episode, cycle, rob_occ
            ep = episode
            episode = None
            if merge_cycle > cycle:
                cycle = merge_cycle
            stats.dpred_episodes_merged += 1
            duration = merge_cycle - ep.start_cycle
            if duration < 0:
                duration = 0
            hist_episode_cycles.observe(duration)
            if track:
                counters = branch_counters(ep.branch_pc)
                counters[5] += 1
                counters[9] += ep.num_selects
                counters[10] += duration
            if traced:
                tracer.emit(obs_events.DpredEpisodeMerge(
                    branch_pc=ep.branch_pc,
                    cycle=cycle,
                    duration_cycles=duration,
                    select_uops=ep.num_selects,
                ))
            stats.dpred_select_uops += ep.num_selects
            if ep.num_selects:
                rob_extend([ep.resolve] * ep.num_selects)
                rob_occ += ep.num_selects
                charge_fetch_slots(ep.num_selects)
            resolve = ep.resolve
            for reg in ep.select_registers:
                if resolve > reg_ready[reg]:
                    reg_ready[reg] = resolve

        for window_start, window_stop in window_bounds(
            n, self.window_size
        ):
            pcs_w = pcs_np[window_start:window_stop]
            next_w = next_np[window_start:window_stop]
            kinds_w = kind_table[pcs_w]
            kinds_l = replay_kind_table[pcs_w].tolist()
            pcs_l = pcs_w.tolist()
            lat_w = lat_table[pcs_w]
            src1_l = src1_table[pcs_w].tolist()
            src2_l = src2_table[pcs_w].tolist()
            src3_l = src3_table[pcs_w].tolist()
            dest_l = dest_table[pcs_w].tolist()
            if profiling:
                charge(FETCH)

            # D-cache pre-pass (trace-order pure access sequence).
            mem_rows = np.nonzero(kinds_w >= _LOAD)[0]
            if mem_rows.size:
                data_latency = memory.data_latency
                load_mask = kinds_w[mem_rows] == _LOAD
                addresses = addr_np[window_start:window_stop]
                addr_list = addresses[mem_rows].tolist()
                load_list = load_mask.tolist()
                load_lats = []
                ap_lat = load_lats.append
                for address, is_load in zip(addr_list, load_list):
                    latency = data_latency(address)
                    if is_load:
                        ap_lat(latency)
                if load_lats:
                    lat_w[mem_rows[load_mask]] = load_lats
            lat_l = lat_w.tolist()
            if profiling:
                charge(DCACHE)
                comp_events[DCACHE] += int(mem_rows.size)

            # Branch-predictor / confidence pre-pass.
            cond_rows = np.nonzero(kinds_w == _COND)[0]
            m = int(cond_rows.size)
            if m:
                (cond_pred, cond_low, cond_mis,
                 n_mis, n_low, n_low_mis) = self._branch_prepass(
                    pcs_w[cond_rows],
                    next_w[cond_rows] != pcs_w[cond_rows] + 1,
                )
            else:
                cond_pred = cond_low = cond_mis = ()
                n_mis = n_low = n_low_mis = 0
            stats.conditional_branches += m
            stats.mispredictions += n_mis
            stats.low_confidence_branches += n_low
            stats.low_confidence_mispredicted += n_low_mis

            # BTB / RAS pre-pass.
            ctl_taken, ctl_extra = self._control_prepass(
                kinds_w, pcs_w, next_w, cond_mis
            )
            if profiling:
                charge(BRANCH_PRED)
                comp_events[BRANCH_PRED] += len(ctl_taken)

            cond_cursor = 0
            ctl_cursor = 0

            # ---- lean replay over the window ------------------------
            for k, pc, lat, src1, src2, src3, dest in zip(
                kinds_l, pcs_l, lat_l, src1_l, src2_l, src3_l, dest_l
            ):
                # ---- episode bookkeeping at the fetch boundary ------
                if episode is not None:
                    if profiling:
                        charge(DATAFLOW)
                    if cycle >= episode.resolve:
                        end_episode_unmerged()
                    elif episode.kind == "hammock" \
                            and not episode.true_merged:
                        if pc in episode.cfm_pcs or (
                            episode.return_cfm and k == _RET
                        ):
                            episode.true_merged = True
                            if episode.false_merged and \
                                    episode.false_done_cycle \
                                    <= episode.resolve:
                                end_episode_merged(
                                    episode.false_done_cycle)
                            else:
                                end_episode_unmerged("true-path-waits")
                    if profiling:
                        charge(DPRED_EPISODE)

                # ---- ROB slot ---------------------------------------
                if rob_occ >= rob_size:
                    if profiling:
                        charge(DATAFLOW)
                    need = rob_occ - rob_size + 1
                    rob_occ = rob_size - 1
                    if need == 1:
                        ready = retire_width * rob[rob_head]
                        rob_head += 1
                        p += 1
                        if ready > p:
                            p = ready
                    else:
                        best = p + need
                        base = rob_head
                        for offset in range(need):
                            ready = (retire_width * rob[base + offset]
                                     + need - offset - 1)
                            if ready > best:
                                best = ready
                        p = best
                        rob_head = base + need
                    free_at = p // retire_width
                    if free_at > cycle:
                        cycle = free_at
                        slots_used = 0
                        cond_used = 0
                    if profiling:
                        charge(ROB_RETIRE)

                # ---- fetch slot -------------------------------------
                if episode is not None and episode.half_width \
                        and cycle < episode.false_done_cycle:
                    width = half_width
                else:
                    width = fetch_width
                if slots_used >= width or (
                    k == _COND and cond_used >= max_cond
                ):
                    cycle += 1
                    slots_used = 0
                    cond_used = 0
                fetch_cycle = cycle
                slots_used += 1

                # ---- dataflow timing --------------------------------
                start = fetch_cycle + frontend_depth
                ready = reg_ready[src1]
                if ready > start:
                    start = ready
                ready = reg_ready[src2]
                if ready > start:
                    start = ready
                ready = reg_ready[src3]
                if ready > start:
                    start = ready
                complete = start + lat
                reg_ready[dest] = complete
                rob_append(complete)
                rob_occ += 1
                last_complete = complete

                # ---- control flow -----------------------------------
                if k:
                    taken = ctl_taken[ctl_cursor]
                    extra = ctl_extra[ctl_cursor]
                    ctl_cursor += 1
                    if k == _COND:
                        cond_used += 1
                        predicted = cond_pred[cond_cursor]
                        low_conf = cond_low[cond_cursor]
                        mispredicted = cond_mis[cond_cursor]
                        cond_cursor += 1
                        if track:
                            counters = branch_counters(pc)
                            counters[0] += 1
                            if mispredicted:
                                counters[1] += 1
                        resolve = complete
                        if dmp:
                            bias_count = bias_counters.get(pc, 2)
                            if taken:
                                if bias_count < 3:
                                    bias_counters[pc] = bias_count + 1
                                else:
                                    bias_counters[pc] = bias_count
                            elif bias_count > 0:
                                bias_counters[pc] = bias_count - 1
                            else:
                                bias_counters[pc] = bias_count
                            diverge = diverge_by_pc[pc]
                        else:
                            diverge = None
                        entered = False
                        if diverge is not None:
                            expected_remaining = 1.0
                            if diverge.kind is DivergeKind.LOOP:
                                expected_remaining = \
                                    self._observe_loop_outcome(
                                        pc,
                                        taken == diverge.loop_direction,
                                    )
                            if episode is None and (
                                diverge.always_predicate or low_conf
                            ):
                                if profiling:
                                    charge(DATAFLOW)
                                if diverge.kind is DivergeKind.LOOP:
                                    entered = self._enter_loop_episode(
                                        stats, diverge, predicted, taken,
                                        fetch_cycle, resolve,
                                        expected_remaining,
                                        counters=(
                                            branch_counters(pc)
                                            if track else None
                                        ),
                                    )
                                    if entered:
                                        episode = self._loop_episode
                                else:
                                    episode = self._make_hammock_episode(
                                        stats, diverge, taken,
                                        target_by_pc[pc],
                                        fetch_cycle, resolve,
                                        mispredicted,
                                        charge=charge,
                                    )
                                    entered = True
                            if entered:
                                ep = episode
                                if track:
                                    counters = branch_counters(pc)
                                    counters[2] += 1
                                    counters[8] += ep.false_insts
                                    if ep.kind == "loop":
                                        counters[9] += ep.num_selects
                                if ep.mispredicted:
                                    stats.dpred_flushes_avoided += 1
                                    if track:
                                        counters[3] += 1
                                stats.dpred_wrong_path_insts += \
                                    ep.false_insts
                                if ep.false_insts:
                                    rob_extend(
                                        [ep.resolve] * ep.false_insts)
                                    rob_occ += ep.false_insts
                                if ep.kind == "loop" and ep.num_selects:
                                    charge_fetch_slots(ep.num_selects)
                                    stats.dpred_select_uops += \
                                        ep.num_selects
                                    rob_extend(
                                        [ep.resolve] * ep.num_selects)
                                    rob_occ += ep.num_selects
                                if profiling:
                                    charge(DPRED_EPISODE)
                                    comp_events[DPRED_EPISODE] += 1
                                    comp_events[WRONG_PATH] += \
                                        ep.false_insts
                        if not entered:
                            if mispredicted and episode is not None \
                                    and episode.kind == "loop" \
                                    and episode.branch_pc == pc \
                                    and diverge is not None \
                                    and predicted \
                                    == diverge.loop_direction:
                                if profiling:
                                    charge(DATAFLOW)
                                stats.dpred_flushes_avoided += 1
                                if resolve > episode.resolve:
                                    episode.resolve = resolve
                                episode.half_width = True
                                extra_insts = \
                                    max(1, diverge.loop_body_size) * 2
                                if extra_insts > max_wrong_path:
                                    extra_insts = max_wrong_path
                                if track:
                                    counters = branch_counters(pc)
                                    counters[3] += 1
                                    counters[8] += extra_insts
                                if traced:
                                    tracer.emit(
                                        obs_events.DpredEpisodeExtend(
                                            branch_pc=pc, cycle=cycle,
                                            extra_insts=extra_insts,
                                        ))
                                episode.false_insts += extra_insts
                                stats.dpred_wrong_path_insts += \
                                    extra_insts
                                rob_extend([resolve] * extra_insts)
                                rob_occ += extra_insts
                                done = fetch_cycle + max(
                                    1, -(-extra_insts // half_width)
                                )
                                if done > episode.false_done_cycle:
                                    episode.false_done_cycle = done
                                if profiling:
                                    charge(DPRED_EPISODE)
                                    comp_events[DPRED_EPISODE] += 1
                                    comp_events[WRONG_PATH] += \
                                        extra_insts
                            elif mispredicted:
                                if profiling:
                                    charge(DATAFLOW)
                                if episode is not None:
                                    duration = \
                                        cycle - episode.start_cycle
                                    if duration < 0:
                                        duration = 0
                                    hist_episode_cycles.observe(
                                        duration)
                                    if track:
                                        counters = branch_counters(
                                            episode.branch_pc)
                                        counters[7] += 1
                                        counters[10] += duration
                                    if traced:
                                        tracer.emit(
                                            obs_events.DpredEpisodeFlush(
                                                branch_pc=(
                                                    episode.branch_pc),
                                                cycle=cycle,
                                                duration_cycles=duration,
                                                flushed_by_pc=pc,
                                                source=(
                                                    "branch-mispredict"),
                                            ))
                                    episode = None
                                stats.pipeline_flushes += 1
                                if traced:
                                    tracer.emit(obs_events.PipelineFlush(
                                        pc=pc, cycle=cycle,
                                        source="branch-mispredict",
                                    ))
                                if track:
                                    branch_counters(pc)[4] += 1
                                redirected = resolve + redirect
                                if redirected > cycle:
                                    cycle = redirected
                                slots_used = 0
                                cond_used = 0
                                if profiling:
                                    charge(BRANCH_PRED)
                        # extra is nonzero only for taken,
                        # correctly-predicted cond rows (the pre-pass
                        # encodes the scalar taken/!mispredicted gate).
                        if extra:
                            cycle += extra
                            slots_used = 0
                            cond_used = 0
                    elif k == _RET:
                        if not extra:        # RAS mispredicted
                            if profiling:
                                charge(DATAFLOW)
                            stats.pipeline_flushes += 1
                            if track:
                                branch_counters(pc)[4] += 1
                            if traced:
                                tracer.emit(obs_events.PipelineFlush(
                                    pc=pc, cycle=cycle,
                                    source="return-mispredict",
                                ))
                            if episode is not None:
                                duration = cycle - episode.start_cycle
                                if duration < 0:
                                    duration = 0
                                hist_episode_cycles.observe(duration)
                                if track:
                                    counters = branch_counters(
                                        episode.branch_pc)
                                    counters[7] += 1
                                    counters[10] += duration
                                if traced:
                                    tracer.emit(
                                        obs_events.DpredEpisodeFlush(
                                            branch_pc=episode.branch_pc,
                                            cycle=cycle,
                                            duration_cycles=duration,
                                            flushed_by_pc=pc,
                                            source="return-mispredict",
                                        ))
                                episode = None
                            redirected = complete + redirect
                            if redirected > cycle:
                                cycle = redirected
                            slots_used = 0
                            cond_used = 0
                            if profiling:
                                charge(BRANCH_PRED)
                    elif extra:              # JMP / CALL BTB bubble
                        cycle += extra
                        slots_used = 0
                        cond_used = 0
                    # Taken control flow ends the fetch group.
                    if taken:
                        slots_used = fetch_width + 1

            if profiling:
                charge(DATAFLOW)
                rows = window_stop - window_start
                comp_events[FETCH] += rows
                comp_events[DATAFLOW] += rows

        # ---- drain -----------------------------------------------------
        remaining = rob_occ
        if remaining:
            completes = np.array(rob[rob_head:], dtype=np.int64)
            offsets = np.arange(remaining - 1, -1, -1, dtype=np.int64)
            best = int((retire_width * completes + offsets).max())
            bumped = p + remaining
            p = best if best > bumped else bumped
            rob_head = len(rob)
        last_retire_cycle = p // retire_width if p >= 0 else 0
        if profiling:
            charge(ROB_RETIRE)
            comp_events[ROB_RETIRE] = len(rob)
        stats.retired_instructions = n
        if cycle < last_retire_cycle:
            cycle = last_retire_cycle
        if cycle < last_complete:
            cycle = last_complete
        stats.cycles = cycle
        stats.dcache_misses = self.memory.dcache.misses
        stats.l2_misses = self.memory.l2.misses
        if self.collect_per_branch:
            stats.per_branch = {
                pc: {
                    "executions": c[0],
                    "mispredictions": c[1],
                    "episodes": c[2],
                    "flushes_avoided": c[3],
                    "flushes": c[4],
                }
                for pc, c in per_branch.items()
                if c[0]
            }
        if ledger is not None:
            ledger.record_run(label, per_branch, stats)
        self._record_run_metrics(stats)
        if traced:
            tracer.emit(obs_events.SimRunEnd(
                label=label,
                cycles=stats.cycles,
                retired_instructions=stats.retired_instructions,
                pipeline_flushes=stats.pipeline_flushes,
                dpred_episodes=stats.dpred_episodes,
                dpred_episodes_merged=stats.dpred_episodes_merged,
                mispredictions=stats.mispredictions,
                dpred_flushes_avoided=stats.dpred_flushes_avoided,
                dpred_wrong_path_insts=stats.dpred_wrong_path_insts,
                dpred_select_uops=stats.dpred_select_uops,
            ))
        if profiling:
            charge(OTHER)
            comp_events[OTHER] += 1
            profiler.record_run(label, comp_sec, comp_events, stats,
                                metrics=self.metrics)
        return stats
