"""The cycle-level timing model: baseline processor and DMP.

A trace-driven out-of-order timing simulator with the Table 1
configuration: 8-wide front end with taken-branch fetch breaks,
perceptron branch prediction, BTB + return address stack, a 512-entry
reorder buffer with 8-wide in-order retire, dataflow-scheduled
execution with cache/memory latencies, and a minimum 25-cycle branch
misprediction penalty.

With a :class:`repro.core.BinaryAnnotation` attached, the simulator
additionally models DMP: confidence-gated dpred-mode on diverge
branches, alternating dual-path fetch, CFG-synthesized wrong-path
instructions, CFM-point reconvergence, select-µop insertion, and
diverge-loop early/late/no-exit behaviour.
"""

from repro.uarch.config import ProcessorConfig
from repro.uarch.engine import (
    ENGINES,
    engine_override,
    get_default_engine,
    make_simulator,
    resolve_engine,
    set_default_engine,
    vectorized_support,
)
from repro.uarch.profiler import COMPONENTS, SimProfiler
from repro.uarch.stats import SimStats
from repro.uarch.simulator import TimingSimulator, simulate
from repro.uarch.vectorized import VectorizedTimingSimulator

__all__ = ["COMPONENTS", "ENGINES", "ProcessorConfig", "SimProfiler",
           "SimStats", "TimingSimulator", "VectorizedTimingSimulator",
           "engine_override", "get_default_engine", "make_simulator",
           "resolve_engine", "set_default_engine", "simulate",
           "vectorized_support"]
