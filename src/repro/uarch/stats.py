"""Simulation statistics."""

from dataclasses import dataclass, field, fields

#: Derived read-only properties included in :meth:`SimStats.as_dict`.
_DERIVED = (
    "ipc",
    "mpki",
    "flushes_per_kilo_inst",
    "measured_acc_conf",
    "merge_rate",
)


@dataclass
class SimStats:
    """Counters and derived metrics from one timing simulation."""

    label: str = ""
    cycles: int = 0
    retired_instructions: int = 0

    # Branch behaviour.
    conditional_branches: int = 0
    mispredictions: int = 0
    pipeline_flushes: int = 0

    # Confidence estimator behaviour (PVN = measured Acc_Conf).
    low_confidence_branches: int = 0
    low_confidence_mispredicted: int = 0

    # DMP behaviour.
    dpred_episodes: int = 0
    dpred_episodes_merged: int = 0
    dpred_episodes_loop: int = 0
    dpred_flushes_avoided: int = 0
    dpred_wrong_path_insts: int = 0
    dpred_select_uops: int = 0

    # Memory behaviour.
    icache_misses: int = 0
    dcache_misses: int = 0
    l2_misses: int = 0

    #: Optional per-branch counters (populated when the simulator runs
    #: with ``collect_per_branch=True``): pc -> dict with keys
    #: ``executions``, ``mispredictions``, ``episodes``,
    #: ``flushes_avoided``, ``flushes``.
    per_branch: dict = field(default_factory=dict)

    @property
    def ipc(self):
        if self.cycles == 0 or self.retired_instructions == 0:
            return 0.0
        return self.retired_instructions / self.cycles

    @property
    def mpki(self):
        """Branch mispredictions per kilo-instruction."""
        if self.retired_instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.retired_instructions

    @property
    def flushes_per_kilo_inst(self):
        """Figure 6's metric."""
        if self.retired_instructions == 0:
            return 0.0
        return 1000.0 * self.pipeline_flushes / self.retired_instructions

    @property
    def measured_acc_conf(self):
        """PVN of the confidence estimator during this run."""
        if self.low_confidence_branches == 0:
            return 0.0
        return self.low_confidence_mispredicted / self.low_confidence_branches

    @property
    def merge_rate(self):
        """Fraction of dpred episodes that reconverged at a CFM point."""
        if self.dpred_episodes == 0:
            return 0.0
        return self.dpred_episodes_merged / self.dpred_episodes

    def as_dict(self, derived=True, per_branch=False):
        """JSON-ready snapshot of the counters (and derived metrics).

        The run manifest and ``--metrics`` output embed this; derived
        properties are all safe at ``retired_instructions == 0``.
        """
        snapshot = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("label", "per_branch")
        }
        snapshot["label"] = self.label
        if derived:
            for name in _DERIVED:
                snapshot[name] = getattr(self, name)
        if per_branch and self.per_branch:
            snapshot["per_branch"] = {
                str(pc): dict(counters)
                for pc, counters in self.per_branch.items()
            }
        return snapshot

    def merge(self, other, label=None):
        """A new :class:`SimStats` with the counters of both runs summed.

        Useful for aggregating shards of one workload; derived
        properties recompute from the combined counters.  Per-branch
        counter dicts are merged by pc.
        """
        merged = SimStats(
            label=label if label is not None
            else (self.label or other.label)
        )
        for f in fields(self):
            if f.name in ("label", "per_branch"):
                continue
            setattr(merged, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        if self.per_branch or other.per_branch:
            combined = {
                pc: dict(counters)
                for pc, counters in self.per_branch.items()
            }
            for pc, counters in other.per_branch.items():
                entry = combined.setdefault(pc, {})
                for key, value in counters.items():
                    entry[key] = entry.get(key, 0) + value
            merged.per_branch = combined
        return merged

    def speedup_over(self, baseline):
        """IPC improvement relative to ``baseline`` (e.g. 0.204 = +20.4%)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc - 1.0

    def report(self):
        """Multi-line human-readable summary."""
        lines = [
            f"[{self.label}] cycles={self.cycles} "
            f"retired={self.retired_instructions} IPC={self.ipc:.3f}",
            f"  branches={self.conditional_branches} "
            f"mispred={self.mispredictions} (MPKI={self.mpki:.2f}) "
            f"flushes={self.pipeline_flushes} "
            f"({self.flushes_per_kilo_inst:.2f}/ki)",
        ]
        if self.dpred_episodes:
            lines.append(
                f"  dpred: episodes={self.dpred_episodes} "
                f"merged={self.dpred_episodes_merged} "
                f"loops={self.dpred_episodes_loop} "
                f"flushes_avoided={self.dpred_flushes_avoided} "
                f"wrong_path={self.dpred_wrong_path_insts} "
                f"selects={self.dpred_select_uops}"
            )
        return "\n".join(lines)
