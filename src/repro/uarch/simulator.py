"""Trace-driven cycle-level timing simulation (baseline and DMP).

The simulator replays the functional trace through a timing model of
the Table 1 machine:

- **Front end**: ``fetch_width`` instructions per cycle, fetch breaks
  on taken control flow, at most ``max_cond_branches_per_cycle``
  conditional branches per cycle, I-cache miss stalls, BTB miss
  bubbles on taken control, return-address-stack prediction of
  returns.
- **Execution**: each instruction dispatches ``frontend_depth`` cycles
  after fetch and completes when its source registers are ready plus
  its latency (loads/stores walk the cache hierarchy).  This dataflow
  ready-time model captures dependence chains without simulating a
  scheduler structurally.
- **Retire**: in-order, ``retire_width`` per cycle, bounded by the
  ``rob_size``-entry reorder buffer; fetch stalls when the ROB fills.
- **Branches**: resolved at their completion cycle; a misprediction
  flushes — the correct path refetches at
  ``resolution + redirect_penalty`` (minimum penalty 25 cycles).

With a :class:`~repro.core.marks.BinaryAnnotation`, diverge branches
additionally trigger **dpred-mode** on low confidence (or always, for
short hammocks): the front end splits, fetching the true path (from
the trace) and a synthesized wrong path (:mod:`repro.uarch.wrongpath`)
on alternating cycles until both reach a CFM point of the branch.  On
merge, select-µops are inserted (consuming fetch slots and making the
hammock-written registers wait for the branch's resolution); on
resolution-before-merge the episode degrades to dual-path execution.
Either way a mispredicted diverge branch in dpred-mode does not flush —
that is DMP's benefit.  Diverge loop branches predicate iterations:
late exits avoid the flush at the cost of fetching the extra (NOPped)
iterations and per-iteration select-µops; early exits flush as usual
(§5.1's three cases).
"""

from repro.branchpred import (
    BranchTargetBuffer,
    JRSConfidenceEstimator,
    ReturnAddressStack,
    make_predictor,
)
from repro.core.marks import DivergeKind
from repro.emulator import trace_rows
from repro.errors import SimulationError
from repro.isa.instructions import Opcode
from repro.memory import MemoryHierarchy
from repro.obs import events as obs_events
from repro.obs.context import get_metrics, get_tracer
from repro.uarch.config import ProcessorConfig
from repro.uarch.profiler import (
    BRANCH_PRED,
    DATAFLOW,
    DCACHE,
    DPRED_EPISODE,
    FETCH,
    ICACHE,
    NUM_COMPONENTS,
    OTHER,
    ROB_RETIRE,
    WRONG_PATH,
)
from repro.uarch.stats import SimStats
from repro.uarch.wrongpath import BiasTable, WrongPathWalker

#: Histogram buckets for dpred episode length in cycles.
EPISODE_CYCLE_BUCKETS = (2, 5, 10, 20, 50, 100, 200, 500)

#: Histogram buckets for wrong-path instructions fetched per episode.
WRONG_PATH_INST_BUCKETS = (0, 5, 10, 25, 50, 100, 200)

#: Histogram buckets for the confidence estimator's per-run PVN.
PVN_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)


class _Episode:
    """One active dpred-mode episode."""

    __slots__ = (
        "kind",
        "branch_pc",
        "resolve",
        "cfm_pcs",
        "return_cfm",
        "false_insts",
        "false_merged",
        "false_done_cycle",
        "true_merged",
        "select_registers",
        "num_selects",
        "mispredicted",
        "half_width",
        "start_cycle",
    )

    def __init__(self, kind, branch_pc, resolve, start_cycle):
        self.kind = kind
        self.branch_pc = branch_pc
        self.resolve = resolve
        self.start_cycle = start_cycle
        self.cfm_pcs = frozenset()
        self.return_cfm = False
        self.false_insts = 0
        self.false_merged = False
        self.false_done_cycle = resolve
        self.true_merged = False
        self.select_registers = frozenset()
        self.num_selects = 0
        self.mispredicted = False
        self.half_width = True


class TimingSimulator:
    """Replays a dynamic trace through the timing model.

    Parameters
    ----------
    program:
        The static program the trace came from.
    config:
        :class:`ProcessorConfig`; defaults to the Table 1 machine.
    annotation:
        Diverge-branch marks.  ``None`` simulates the baseline
        processor (DMP support idle).
    tracer:
        A :class:`repro.obs.tracer.Tracer` emitting typed events
        (episodes, flushes, cache misses).  Defaults to the active
        telemetry context — the no-op null tracer unless the CLI (or a
        test) installed one, in which case the hot loop pays a single
        ``tracer.enabled`` check per site.
    metrics:
        A :class:`repro.obs.metrics.MetricsRegistry`; always on.
        Per-run totals and per-episode histograms are recorded here
        (never per-instruction work).
    ledger:
        A :class:`repro.obs.ledger.RuntimeLedger`, or ``None`` (the
        default — zero overhead).  When present, per-pc episode
        outcome counters are collected and folded in once per run via
        :meth:`~repro.obs.ledger.RuntimeLedger.record_run`.
    profiler:
        A :class:`repro.uarch.profiler.SimProfiler`, or ``None`` (the
        default — zero overhead, same opt-in pattern as the ledger).
        When present, the run loop charges its own wall-clock to
        per-component buckets (stopwatch partition: the buckets sum to
        the instrumented run time exactly) plus deterministic event
        counts, folded in once per run via
        :meth:`~repro.uarch.profiler.SimProfiler.record_run`.
    """

    def __init__(self, program, config=None, annotation=None,
                 collect_per_branch=False, tracer=None, metrics=None,
                 ledger=None, profiler=None):
        self.program = program
        self.config = (config or ProcessorConfig()).validate()
        self.annotation = annotation
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else get_metrics()
        self.ledger = ledger
        self.profiler = profiler
        self._hist_episode_cycles = self.metrics.histogram(
            "dpred_episode_cycles", EPISODE_CYCLE_BUCKETS,
            help="dpred episode length in cycles",
        )
        self._hist_wrong_path = self.metrics.histogram(
            "dpred_wrong_path_insts_per_episode", WRONG_PATH_INST_BUCKETS,
            help="wrong-path instructions fetched per dpred episode",
        )
        #: When True, SimStats.per_branch records executions,
        #: mispredictions, episodes, avoided and taken flushes per pc
        #: (used by the coverage report; small runtime overhead).
        self.collect_per_branch = collect_per_branch
        cfg = self.config
        self.predictor = make_predictor(
            cfg.predictor_kind,
            **(
                {
                    "num_perceptrons": cfg.perceptron_entries,
                    "history_bits": cfg.perceptron_history,
                }
                if cfg.predictor_kind == "perceptron"
                else {}
            ),
        )
        self.confidence = JRSConfidenceEstimator(
            num_entries=cfg.confidence_entries,
            history_bits=cfg.confidence_history,
            threshold=cfg.confidence_threshold,
        )
        self.btb = BranchTargetBuffer(cfg.btb_entries)
        self.ras = ReturnAddressStack(cfg.ras_depth)
        self.memory = MemoryHierarchy(
            icache_kb=cfg.icache_kb,
            icache_assoc=cfg.icache_assoc,
            icache_latency=cfg.icache_latency,
            dcache_kb=cfg.dcache_kb,
            dcache_assoc=cfg.dcache_assoc,
            dcache_latency=cfg.dcache_latency,
            l2_kb=cfg.l2_kb,
            l2_assoc=cfg.l2_assoc,
            l2_latency=cfg.l2_latency,
            memory_latency=cfg.memory_latency,
        )
        self.bias = BiasTable()
        self.walker = WrongPathWalker(program, self.bias,
                                      metrics=self.metrics)
        self._loop_episode = None
        # Dynamic trip-count tracking for diverge loop branches: the
        # number of predicated iterations in an episode is bounded by
        # how much longer the loop will actually run, estimated from an
        # EWMA of recent continue-run lengths minus the current streak.
        self._loop_streak = {}
        self._loop_run_ewma = {}

    def _observe_loop_outcome(self, pc, continued):
        """Update per-branch trip statistics; returns expected remaining."""
        streak = self._loop_streak.get(pc, 0)
        ewma = self._loop_run_ewma.get(pc, 4.0)
        if continued:
            self._loop_streak[pc] = streak + 1
        else:
            self._loop_run_ewma[pc] = 0.75 * ewma + 0.25 * streak
            self._loop_streak[pc] = 0
        return max(1.0, ewma - streak)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, trace, label=""):
        """Simulate ``trace`` and return :class:`SimStats`."""
        if not trace:
            raise SimulationError("empty trace")
        cfg = self.config
        stats = SimStats(label=label)
        instructions = self.program.instructions
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.emit(obs_events.SimRunStart(
                label=label,
                trace_length=len(trace),
                dmp_enabled=self.annotation is not None,
            ))
        hist_episode_cycles = self._hist_episode_cycles

        # Opt-in cost attribution (see repro.uarch.profiler): a single
        # running timestamp; each charge(i) bills the time since the
        # previous charge point to bucket i, so the buckets partition
        # the instrumented interval exactly.  ``profiling`` is a hoisted
        # local bool — profiler=None pays one check per charge site.
        profiler = self.profiler
        profiling = profiler is not None
        if profiling:
            from time import perf_counter as _perf

            comp_sec = [0.0] * NUM_COMPONENTS
            comp_events = [0] * NUM_COMPONENTS
            mark = _perf()

            def charge(index):
                nonlocal mark
                now = _perf()
                comp_sec[index] += now - mark
                mark = now
        else:
            charge = None

        # Warm the instruction side: at the paper's scale (hundreds of
        # millions of instructions) compulsory I-cache misses are
        # negligible, but at our reduced scale a cold pass over the
        # static code would cost more cycles than the whole benchmark.
        warm_step = max(1, self.memory.icache.words_per_line)
        for pc in range(0, len(instructions), warm_step):
            self.memory.instruction_latency(pc)
        if profiling:
            charge(ICACHE)
            comp_events[ICACHE] += -(-len(instructions) // warm_step)

        # Front-end state.
        cycle = 0
        slots_used = 0
        cond_used = 0
        group_pc = trace[0].pc

        # Dataflow state: architectural register -> ready cycle.
        reg_ready = {}

        # ROB: completion cycles in program order (lazy in-order retire).
        rob = []
        rob_head = 0
        last_retire_cycle = 0
        retired_in_cycle = 0
        last_complete = 0

        episode = None

        ledger = self.ledger
        per_branch = (
            {} if (self.collect_per_branch or ledger is not None)
            else None
        )

        def branch_counters(pc):
            counters = per_branch.get(pc)
            if counters is None:
                # Slot order matches repro.obs.ledger.RUNTIME_COUNTERS:
                # [0 executions, 1 mispredictions, 2 episodes,
                #  3 flushes_avoided, 4 flushes, 5 merged, 6 unmerged,
                #  7 squashed, 8 wrong_path_insts, 9 select_uops,
                #  10 episode_cycles]
                counters = [0] * 11
                per_branch[pc] = counters
            return counters

        fetch_width = cfg.fetch_width
        frontend_depth = cfg.frontend_depth
        redirect = cfg.redirect_penalty
        retire_width = cfg.retire_width
        rob_size = cfg.rob_size
        max_cond = cfg.max_cond_branches_per_cycle
        predictor = self.predictor
        confidence = self.confidence
        bias = self.bias
        memory = self.memory
        annotation = self.annotation

        def retire_one():
            nonlocal rob_head, last_retire_cycle, retired_in_cycle
            complete = rob[rob_head]
            rob_head += 1
            if complete > last_retire_cycle:
                last_retire_cycle = complete
                retired_in_cycle = 1
            else:
                if retired_in_cycle >= retire_width:
                    last_retire_cycle += 1
                    retired_in_cycle = 1
                else:
                    retired_in_cycle += 1
            return last_retire_cycle

        def new_fetch_group(pc):
            nonlocal cycle, slots_used, cond_used, group_pc
            cycle += 1
            slots_used = 0
            cond_used = 0
            group_pc = pc
            if profiling:
                charge(FETCH)
            extra = memory.instruction_latency(pc) - cfg.icache_latency
            if profiling:
                charge(ICACHE)
                comp_events[ICACHE] += 1
            if extra > 0:
                stats.icache_misses += 1
                if traced:
                    tracer.emit(obs_events.CacheMiss(
                        level="icache", pc=pc, cycle=cycle,
                        stall_cycles=extra,
                    ))
                cycle += extra

        def end_episode_unmerged(reason="resolved-unmerged"):
            nonlocal episode, cycle
            ep = episode
            episode = None
            cycle = max(cycle, ep.resolve)
            hist_episode_cycles.observe(max(0, ep.resolve - ep.start_cycle))
            if per_branch is not None:
                counters = branch_counters(ep.branch_pc)
                counters[6] += 1
                counters[10] += max(0, ep.resolve - ep.start_cycle)
            if traced:
                tracer.emit(obs_events.DpredEpisodeEnd(
                    branch_pc=ep.branch_pc,
                    cycle=cycle,
                    duration_cycles=max(0, ep.resolve - ep.start_cycle),
                    reason=reason,
                ))
            if ep.kind == "loop":
                # Post-loop consumers of loop-carried values go through
                # select-µops: ready no earlier than the resolution.
                for reg in ep.select_registers:
                    if ep.resolve > reg_ready.get(reg, 0):
                        reg_ready[reg] = ep.resolve

        def charge_fetch_slots(count):
            # Extra µops (selects) consume fetch slots, spilling into
            # additional cycles only when a group fills — charging whole
            # cycles would make tiny hammocks artificially expensive.
            nonlocal cycle, slots_used
            slots_used += count
            while slots_used >= fetch_width:
                cycle += 1
                slots_used -= fetch_width

        def end_episode_merged(merge_cycle):
            nonlocal episode, cycle, slots_used, cond_used
            ep = episode
            episode = None
            cycle = max(cycle, merge_cycle)
            stats.dpred_episodes_merged += 1
            hist_episode_cycles.observe(max(0, merge_cycle - ep.start_cycle))
            if per_branch is not None:
                counters = branch_counters(ep.branch_pc)
                counters[5] += 1
                counters[9] += ep.num_selects
                counters[10] += max(0, merge_cycle - ep.start_cycle)
            if traced:
                tracer.emit(obs_events.DpredEpisodeMerge(
                    branch_pc=ep.branch_pc,
                    cycle=cycle,
                    duration_cycles=max(0, merge_cycle - ep.start_cycle),
                    select_uops=ep.num_selects,
                ))
            stats.dpred_select_uops += ep.num_selects
            for _ in range(ep.num_selects):
                rob.append(ep.resolve)
            if ep.num_selects:
                charge_fetch_slots(ep.num_selects)
            for reg in ep.select_registers:
                ready = reg_ready.get(reg, 0)
                if ep.resolve > ready:
                    reg_ready[reg] = ep.resolve

        for pc, next_pc, address in trace_rows(trace):
            inst = instructions[pc]

            # ---- episode bookkeeping at the fetch boundary ----------
            if episode is not None:
                if cycle >= episode.resolve:
                    end_episode_unmerged()
                elif episode.kind == "hammock" and not episode.true_merged:
                    at_cfm = pc in episode.cfm_pcs or (
                        episode.return_cfm and inst.is_return
                    )
                    if at_cfm:
                        episode.true_merged = True
                        if episode.false_merged and \
                                episode.false_done_cycle <= episode.resolve:
                            end_episode_merged(episode.false_done_cycle)
                        else:
                            # True path waits for the false path, which
                            # never merges: dual-path until resolution.
                            end_episode_unmerged("true-path-waits")
                if profiling:
                    charge(DPRED_EPISODE)

            # ---- ROB slot ---------------------------------------------
            # Drain until there is space: episodes bulk-insert wrong-path
            # and select-µop entries, so a single pop per instruction
            # would quietly stop enforcing the ROB limit.
            if len(rob) - rob_head >= rob_size:
                while len(rob) - rob_head >= rob_size:
                    free_at = retire_one()
                    if free_at > cycle:
                        cycle = free_at
                        slots_used = 0
                        cond_used = 0
                if profiling:
                    charge(ROB_RETIRE)

            # ---- fetch slot -------------------------------------------
            if episode is not None and episode.half_width \
                    and cycle < episode.false_done_cycle:
                width = max(1, fetch_width // 2)
            else:
                width = fetch_width
            if slots_used >= width or (
                inst.is_conditional_branch and cond_used >= max_cond
            ):
                new_fetch_group(pc)
            fetch_cycle = cycle
            slots_used += 1
            if inst.is_conditional_branch:
                cond_used += 1
            if profiling:
                charge(FETCH)
                comp_events[FETCH] += 1

            # ---- dataflow timing --------------------------------------
            dispatch = fetch_cycle + frontend_depth
            start = dispatch
            for reg in inst.read_registers():
                ready = reg_ready.get(reg, 0)
                if ready > start:
                    start = ready
            if inst.is_load:
                if profiling:
                    charge(DATAFLOW)
                data_latency = memory.data_latency(address)
                if profiling:
                    charge(DCACHE)
                    comp_events[DCACHE] += 1
                complete = start + data_latency
            elif inst.is_store:
                if profiling:
                    charge(DATAFLOW)
                memory.data_latency(address)
                if profiling:
                    charge(DCACHE)
                    comp_events[DCACHE] += 1
                complete = start + inst.latency
            else:
                complete = start + inst.latency
            dest = inst.written_register()
            if dest is not None and dest != 0:
                reg_ready[dest] = complete
            rob.append(complete)
            last_complete = complete
            stats.retired_instructions += 1
            if profiling:
                charge(DATAFLOW)
                comp_events[DATAFLOW] += 1

            # ---- control flow -----------------------------------------
            taken = next_pc != pc + 1
            if inst.is_conditional_branch:
                stats.conditional_branches += 1
                predicted = predictor.predict(pc)
                low_conf = confidence.is_low_confidence(pc)
                mispredicted = predicted != taken
                predictor.update(pc, taken)
                confidence.update(pc, mispredicted,
                                  was_low_confidence=low_conf)
                bias.record(pc, taken)
                if mispredicted:
                    stats.mispredictions += 1
                if low_conf:
                    stats.low_confidence_branches += 1
                    if mispredicted:
                        stats.low_confidence_mispredicted += 1
                if per_branch is not None:
                    counters = branch_counters(pc)
                    counters[0] += 1
                    if mispredicted:
                        counters[1] += 1
                if profiling:
                    charge(BRANCH_PRED)
                    comp_events[BRANCH_PRED] += 1

                resolve = complete
                diverge = annotation.get(pc) if annotation else None
                entered = False
                expected_remaining = 1.0
                if diverge is not None \
                        and diverge.kind is DivergeKind.LOOP:
                    # Trip statistics update on *every* execution.
                    expected_remaining = self._observe_loop_outcome(
                        pc, taken == diverge.loop_direction
                    )
                if diverge is not None and episode is None:
                    trigger = diverge.always_predicate or low_conf
                    if trigger:
                        if diverge.kind is DivergeKind.LOOP:
                            entered = self._enter_loop_episode(
                                stats, diverge, predicted, taken,
                                fetch_cycle, resolve, expected_remaining,
                                counters=(
                                    branch_counters(pc)
                                    if per_branch is not None else None
                                ),
                            )
                            if entered:
                                episode = self._loop_episode
                        else:
                            episode = self._make_hammock_episode(
                                stats, diverge, taken, inst.target,
                                fetch_cycle, resolve, mispredicted,
                                charge=charge,
                            )
                            entered = True
                if entered:
                    ep = episode
                    if per_branch is not None:
                        counters = branch_counters(pc)
                        counters[2] += 1
                        counters[8] += ep.false_insts
                        if ep.kind == "loop":
                            counters[9] += ep.num_selects
                    if ep.mispredicted:
                        stats.dpred_flushes_avoided += 1
                        if per_branch is not None:
                            counters[3] += 1
                    # The wrong path occupies the instruction window for
                    # the whole episode (it retires as NOPs only after
                    # the diverge branch resolves) — this is what makes
                    # dynamically predicating very large hammocks
                    # unprofitable (the §7.1.1 MAX_INSTR effect).
                    stats.dpred_wrong_path_insts += ep.false_insts
                    for _ in range(ep.false_insts):
                        rob.append(ep.resolve)
                    if ep.kind == "loop" and ep.num_selects:
                        # Per-iteration select-µops consume fetch slots
                        # across the episode (Equation 18).
                        charge_fetch_slots(ep.num_selects)
                        stats.dpred_select_uops += ep.num_selects
                        for _ in range(ep.num_selects):
                            rob.append(ep.resolve)
                    if profiling:
                        charge(DPRED_EPISODE)
                        comp_events[DPRED_EPISODE] += 1
                        comp_events[WRONG_PATH] += ep.false_insts
                elif mispredicted and episode is not None \
                        and episode.kind == "loop" \
                        and episode.branch_pc == pc \
                        and diverge is not None \
                        and predicted == diverge.loop_direction:
                    # A later instance of the predicated loop branch
                    # inside the active episode: the over-iteration
                    # (late-exit) misprediction is covered — the extra
                    # iterations become NOPs instead of flushing, but
                    # they do consume fetch bandwidth and ROB space
                    # until the branch resolves.
                    stats.dpred_flushes_avoided += 1
                    episode.resolve = max(episode.resolve, resolve)
                    episode.half_width = True
                    extra = min(
                        max(1, diverge.loop_body_size) * 2,
                        self.config.dpred_max_wrong_path_insts,
                    )
                    if per_branch is not None:
                        counters = branch_counters(pc)
                        counters[3] += 1
                        counters[8] += extra
                    if traced:
                        tracer.emit(obs_events.DpredEpisodeExtend(
                            branch_pc=pc, cycle=cycle, extra_insts=extra,
                        ))
                    episode.false_insts += extra
                    stats.dpred_wrong_path_insts += extra
                    for _ in range(extra):
                        rob.append(resolve)
                    per_cycle = max(1, fetch_width // 2)
                    episode.false_done_cycle = max(
                        episode.false_done_cycle,
                        fetch_cycle + max(1, -(-extra // per_cycle)),
                    )
                    if profiling:
                        charge(DPRED_EPISODE)
                        comp_events[DPRED_EPISODE] += 1
                        comp_events[WRONG_PATH] += extra
                elif mispredicted:
                    if episode is not None:
                        # A mispredicted branch on a predicated path
                        # flushes and squashes the episode.
                        hist_episode_cycles.observe(
                            max(0, cycle - episode.start_cycle))
                        if per_branch is not None:
                            counters = branch_counters(episode.branch_pc)
                            counters[7] += 1
                            counters[10] += max(
                                0, cycle - episode.start_cycle)
                        if traced:
                            tracer.emit(obs_events.DpredEpisodeFlush(
                                branch_pc=episode.branch_pc,
                                cycle=cycle,
                                duration_cycles=max(
                                    0, cycle - episode.start_cycle),
                                flushed_by_pc=pc,
                                source="branch-mispredict",
                            ))
                        episode = None
                    stats.pipeline_flushes += 1
                    if traced:
                        tracer.emit(obs_events.PipelineFlush(
                            pc=pc, cycle=cycle,
                            source="branch-mispredict",
                        ))
                    if per_branch is not None:
                        branch_counters(pc)[4] += 1
                    cycle = max(cycle, resolve + redirect)
                    slots_used = 0
                    cond_used = 0
                if taken and not mispredicted:
                    bubble = self._btb_miss_bubble(pc, next_pc)
                    if bubble:
                        cycle += bubble
                        slots_used = 0
                        cond_used = 0
                if profiling:
                    charge(BRANCH_PRED)
            elif inst.op is Opcode.JMP:
                bubble = self._btb_miss_bubble(pc, next_pc)
                if bubble:
                    cycle += bubble
                    slots_used = 0
                    cond_used = 0
                if profiling:
                    charge(BRANCH_PRED)
                    comp_events[BRANCH_PRED] += 1
            elif inst.is_call:
                self.ras.push(pc + 1)
                bubble = self._btb_miss_bubble(pc, next_pc)
                if bubble:
                    cycle += bubble
                    slots_used = 0
                    cond_used = 0
                if profiling:
                    charge(BRANCH_PRED)
                    comp_events[BRANCH_PRED] += 1
            elif inst.is_return:
                correct = self.ras.pop_predict(next_pc)
                if not correct:
                    stats.pipeline_flushes += 1
                    if per_branch is not None:
                        # Attributed to the return pc; the per-branch
                        # snapshot in SimStats only emits conditional
                        # branches (executions > 0), so this feeds the
                        # ledger without changing the coverage report.
                        branch_counters(pc)[4] += 1
                    if traced:
                        tracer.emit(obs_events.PipelineFlush(
                            pc=pc, cycle=cycle,
                            source="return-mispredict",
                        ))
                    if episode is not None:
                        hist_episode_cycles.observe(
                            max(0, cycle - episode.start_cycle))
                        if per_branch is not None:
                            counters = branch_counters(episode.branch_pc)
                            counters[7] += 1
                            counters[10] += max(
                                0, cycle - episode.start_cycle)
                        if traced:
                            tracer.emit(obs_events.DpredEpisodeFlush(
                                branch_pc=episode.branch_pc,
                                cycle=cycle,
                                duration_cycles=max(
                                    0, cycle - episode.start_cycle),
                                flushed_by_pc=pc,
                                source="return-mispredict",
                            ))
                        episode = None
                    cycle = max(cycle, complete + redirect)
                    slots_used = 0
                    cond_used = 0
                if profiling:
                    charge(BRANCH_PRED)
                    comp_events[BRANCH_PRED] += 1

            # Taken control flow ends the fetch group.
            if taken and inst.is_control:
                slots_used = fetch_width + 1

        # ---- drain -----------------------------------------------------
        while rob_head < len(rob):
            retire_one()
        if profiling:
            charge(ROB_RETIRE)
            # Every ROB entry (true-path, wrong-path, select-µop)
            # retires exactly once, drains included — deterministic.
            comp_events[ROB_RETIRE] = len(rob)
        stats.cycles = max(last_retire_cycle, last_complete, cycle)
        stats.dcache_misses = self.memory.dcache.misses
        stats.l2_misses = self.memory.l2.misses
        if self.collect_per_branch:
            # The coverage-report snapshot keeps its original shape:
            # conditional branches only (executions > 0 — return pcs
            # accrue flushes for the ledger but never execute as
            # branches) with the legacy five keys.
            stats.per_branch = {
                pc: {
                    "executions": c[0],
                    "mispredictions": c[1],
                    "episodes": c[2],
                    "flushes_avoided": c[3],
                    "flushes": c[4],
                }
                for pc, c in per_branch.items()
                if c[0]
            }
        if ledger is not None:
            ledger.record_run(label, per_branch, stats)
        self._record_run_metrics(stats)
        if traced:
            tracer.emit(obs_events.SimRunEnd(
                label=label,
                cycles=stats.cycles,
                retired_instructions=stats.retired_instructions,
                pipeline_flushes=stats.pipeline_flushes,
                dpred_episodes=stats.dpred_episodes,
                dpred_episodes_merged=stats.dpred_episodes_merged,
                mispredictions=stats.mispredictions,
                dpred_flushes_avoided=stats.dpred_flushes_avoided,
                dpred_wrong_path_insts=stats.dpred_wrong_path_insts,
                dpred_select_uops=stats.dpred_select_uops,
            ))
        if profiling:
            charge(OTHER)
            comp_events[OTHER] += 1
            profiler.record_run(label, comp_sec, comp_events, stats,
                                metrics=self.metrics)
        return stats

    def _record_run_metrics(self, stats):
        """Fold one run's totals into the metrics registry."""
        metrics = self.metrics
        for name, value in (
            ("sim_runs_total", 1),
            ("sim_instructions_total", stats.retired_instructions),
            ("sim_cycles_total", stats.cycles),
            ("sim_conditional_branches_total", stats.conditional_branches),
            ("sim_mispredictions_total", stats.mispredictions),
            ("sim_pipeline_flushes_total", stats.pipeline_flushes),
            ("sim_dpred_episodes_total", stats.dpred_episodes),
            ("sim_dpred_episodes_merged_total",
             stats.dpred_episodes_merged),
            ("sim_dpred_flushes_avoided_total",
             stats.dpred_flushes_avoided),
            ("sim_dpred_wrong_path_insts_total",
             stats.dpred_wrong_path_insts),
            ("sim_icache_misses_total", stats.icache_misses),
            ("sim_dcache_misses_total", stats.dcache_misses),
            ("sim_l2_misses_total", stats.l2_misses),
        ):
            if value:
                metrics.counter(name).inc(value)
        if stats.low_confidence_branches:
            metrics.histogram(
                "confidence_pvn_per_run", PVN_BUCKETS,
                help="measured Acc_Conf (PVN) per simulation run",
            ).observe(stats.measured_acc_conf)
        self.walker.record_metrics(metrics)
        self.confidence.record_metrics(metrics)

    # ------------------------------------------------------------------
    # DMP episode construction
    # ------------------------------------------------------------------

    def _make_hammock_episode(self, stats, diverge, taken, false_target,
                              fetch_cycle, resolve, mispredicted,
                              charge=None):
        cfg = self.config
        stats.dpred_episodes += 1
        episode = _Episode("hammock", diverge.branch_pc, resolve,
                           fetch_cycle)
        # Table 1: the hardware tracks at most num_cfm_registers CFM
        # points per dpred episode (the compiler caps MAX_CFM to match,
        # so this only bites on hand-written annotations).
        cfm_pcs = diverge.cfm_pcs
        if len(cfm_pcs) > cfg.num_cfm_registers:
            cfm_pcs = frozenset(sorted(cfm_pcs)[: cfg.num_cfm_registers])
        episode.cfm_pcs = cfm_pcs
        episode.return_cfm = diverge.has_return_cfm
        episode.select_registers = diverge.select_registers
        episode.num_selects = diverge.num_select_uops
        episode.mispredicted = mispredicted
        # Synthesize the path the trace did not take.  The walk is the
        # wrong-path bucket; episode setup around it stays in
        # dpred_episode (``charge`` is the run loop's stopwatch, None
        # when profiling is off).
        false_start = (diverge.branch_pc + 1) if taken else false_target
        if charge is not None:
            charge(DPRED_EPISODE)
        false_insts, false_merged = self.walker.walk(
            false_start,
            episode.cfm_pcs,
            episode.return_cfm,
            cfg.dpred_max_wrong_path_insts,
        )
        if charge is not None:
            charge(WRONG_PATH)
        episode.false_insts = false_insts
        episode.false_merged = false_merged
        per_cycle = max(1, cfg.fetch_width // 2)
        episode.false_done_cycle = fetch_cycle + max(
            1, -(-false_insts // per_cycle)
        )
        self._hist_wrong_path.observe(false_insts)
        if self.tracer.enabled:
            self.tracer.emit(obs_events.DpredEpisodeStart(
                branch_pc=episode.branch_pc,
                kind="hammock",
                cycle=fetch_cycle,
                mispredicted=mispredicted,
                wrong_path_insts=false_insts,
            ))
        return episode

    def _enter_loop_episode(self, stats, diverge, predicted, taken,
                            fetch_cycle, resolve, expected_remaining,
                            counters=None):
        """Handle a low-confidence diverge loop branch instance.

        Returns True when an episode object was installed (stored on
        ``self._loop_episode`` for the caller to pick up).  ``counters``
        is the pc's per-branch ledger slot list; the early-exit path
        (episode counted but dead on arrival) attributes here because
        the caller never sees an episode object for it.
        """
        cfg = self.config
        continue_dir = diverge.loop_direction
        actual_continue = taken == continue_dir
        predicted_continue = predicted == continue_dir

        window = max(1, resolve - fetch_cycle)
        body = max(1, diverge.loop_body_size)
        iter_cycles = max(1, -(-body // cfg.fetch_width))
        # Each predicated iteration consumes a predicate register
        # (Table 1: 32), bounding how deep the loop can be predicated.
        est_iters = max(1, min(window // iter_cycles,
                               int(expected_remaining) + 1,
                               cfg.dpred_max_loop_iterations,
                               cfg.num_predicate_registers))

        stats.dpred_episodes += 1
        stats.dpred_episodes_loop += 1
        episode = _Episode("loop", diverge.branch_pc, resolve, fetch_cycle)
        episode.select_registers = diverge.select_registers
        episode.num_selects = diverge.num_select_uops * est_iters
        episode.mispredicted = predicted != taken

        if predicted_continue and not actual_continue:
            # Late exit: the predictor over-iterates; the extra
            # (predicated) iterations become NOPs — no flush, but the
            # front end wastes half its bandwidth on them and the
            # post-exit code shares fetch until resolution.
            episode.half_width = True
            episode.false_insts = min(
                body * est_iters, cfg.dpred_max_wrong_path_insts
            )
            per_cycle = max(1, cfg.fetch_width // 2)
            episode.false_done_cycle = fetch_cycle + max(
                1, -(-episode.false_insts // per_cycle)
            )
            episode.false_merged = False
        elif not predicted_continue and actual_continue:
            # Early exit: the pipeline must be flushed to re-enter the
            # loop — dpred-mode only added select-µop overhead.  The
            # flush is modelled by *not* suppressing it: report no
            # episode so the caller's normal misprediction path runs,
            # but still charge the select overhead.
            stats.dpred_select_uops += episode.num_selects
            if counters is not None:
                counters[2] += 1
                counters[6] += 1
                counters[9] += episode.num_selects
            self._hist_wrong_path.observe(0)
            if self.tracer.enabled:
                # The episode is counted (stats.dpred_episodes above)
                # but dies immediately, so the trace reflects both.
                self.tracer.emit(obs_events.DpredEpisodeStart(
                    branch_pc=episode.branch_pc, kind="loop",
                    cycle=fetch_cycle, mispredicted=False,
                    wrong_path_insts=0,
                    select_uops=episode.num_selects,
                ))
                self.tracer.emit(obs_events.DpredEpisodeEnd(
                    branch_pc=episode.branch_pc, cycle=fetch_cycle,
                    duration_cycles=0, reason="early-exit-flush",
                ))
            self._loop_episode = None
            return False
        else:
            # Correctly predicted (or no-exit): overhead only.
            episode.half_width = False
            episode.mispredicted = False

        self._hist_wrong_path.observe(episode.false_insts)
        if self.tracer.enabled:
            self.tracer.emit(obs_events.DpredEpisodeStart(
                branch_pc=episode.branch_pc, kind="loop",
                cycle=fetch_cycle, mispredicted=episode.mispredicted,
                wrong_path_insts=episode.false_insts,
                select_uops=episode.num_selects,
            ))
        self._loop_episode = episode
        return True

    def _btb_miss_bubble(self, pc, target):
        """Bubble cycles when a taken control's target misses the BTB.

        Direct targets are discovered at decode on a miss, so the front
        end loses the BTB's ``miss_bubble_cycles``; the entry is filled
        for next time.
        """
        predicted = self.btb.lookup(pc)
        if predicted == target:
            return 0
        self.btb.insert(pc, target)
        return self.btb.miss_bubble_cycles


def simulate(program, trace, config=None, annotation=None, label=""):
    """One-call convenience: build a simulator and run ``trace``.

    Goes through the engine-resolution rules (``config.sim_engine`` /
    process default / ``auto``), so it may pick the vectorized batch
    replay — the result is bit-identical either way.
    """
    from repro.uarch.engine import make_simulator

    simulator = make_simulator(program, config=config,
                               annotation=annotation)
    return simulator.run(trace, label=label)
