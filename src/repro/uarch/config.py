"""Processor configuration (paper Table 1).

Every field mirrors a Table 1 row; the defaults *are* the paper's
baseline + DMP support.  The front-end depth and redirect penalty are
chosen so the minimum branch misprediction penalty is 25 cycles: a
branch fetched at cycle c executes no earlier than
``c + frontend_depth + 1`` and the correct path refetches
``redirect_penalty`` cycles later.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProcessorConfig:
    """Baseline machine plus DMP support parameters."""

    # Front end.
    fetch_width: int = 8
    max_cond_branches_per_cycle: int = 3   # "fetches up to 3 cond not-taken"
    frontend_depth: int = 20
    redirect_penalty: int = 5

    # Branch prediction.
    predictor_kind: str = "perceptron"
    perceptron_entries: int = 256
    perceptron_history: int = 64
    btb_entries: int = 4096
    ras_depth: int = 64

    # Execution core.
    rob_size: int = 512
    retire_width: int = 8

    # Memory system (sizes in KB; latencies in cycles).
    icache_kb: int = 64
    icache_assoc: int = 2
    icache_latency: int = 2
    dcache_kb: int = 64
    dcache_assoc: int = 4
    dcache_latency: int = 2
    l2_kb: int = 1024
    l2_assoc: int = 8
    l2_latency: int = 10
    memory_latency: int = 300

    # DMP support (Table 1 bottom row).  The enhanced JRS indexing
    # (pc XOR 12-bit history, Table 1) is implemented and available,
    # but the default machine indexes by pc alone: the synthetic
    # workloads' branch outcomes carry far more entropy per branch
    # than SPEC's, and XOR-indexing then spreads each branch over the
    # whole table, leaving every counter undertrained (DESIGN.md §6).
    confidence_entries: int = 4096       # 2KB of 4-bit counters
    confidence_history: int = 0
    confidence_threshold: int = 14
    num_predicate_registers: int = 32
    num_cfm_registers: int = 3

    # DMP episode bounds (implementation knobs, see DESIGN.md): the
    # wrong-path walker synthesizes at most this many instructions per
    # path, and loop episodes predicate at most this many iterations.
    dpred_max_wrong_path_insts: int = 256
    dpred_max_loop_iterations: int = 32

    # Simulation engine (not a hardware parameter): "scalar" replays
    # one trace row at a time, "vectorized" uses the numpy batch-replay
    # fast path, and "auto" picks vectorized whenever it can reproduce
    # the scalar run bit-identically for the program at hand (see
    # repro.uarch.engine).  Both engines produce identical SimStats.
    sim_engine: str = "auto"

    @property
    def min_misprediction_penalty(self):
        """Cycles from fetch to earliest correct-path refetch."""
        return self.frontend_depth + 1 + self.redirect_penalty

    def validate(self):
        if self.fetch_width <= 0 or self.rob_size <= 0:
            raise ValueError("fetch_width and rob_size must be positive")
        if self.retire_width <= 0:
            raise ValueError("retire_width must be positive")
        if self.min_misprediction_penalty < 1:
            raise ValueError("misprediction penalty must be at least 1")
        if self.sim_engine not in ("auto", "scalar", "vectorized"):
            raise ValueError(
                f"sim_engine must be one of auto/scalar/vectorized, "
                f"got {self.sim_engine!r}"
            )
        return self


#: The paper's Table 1 machine.
BASELINE = ProcessorConfig()
