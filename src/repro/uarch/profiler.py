"""Opt-in per-component cost attribution for the timing simulator.

Answers *where the simulator's own wall-clock goes* — fetch-group
management, branch prediction, I/D-cache walks, ROB retire, dpred
episode bookkeeping, wrong-path synthesis — so the vectorization work
(ROADMAP item 1) has a per-component baseline to beat and a way to
verify each component's speedup instead of one opaque total.

The accounting is a *stopwatch partition*, not nested timers: the run
loop keeps a single running timestamp and charges the time since the
previous charge point to exactly one component bucket at each segment
boundary.  The buckets therefore sum to the instrumented run's total
wall-clock *exactly* (no double counting, no gaps between the first
and last charge).  Each bucket also carries a deterministic event
count (instructions fetched, predictions made, cache walks, wrong-path
µops synthesized, ...) derived purely from the trace — identical
across repeated runs and across machines, unlike the seconds.

Following the decision-ledger pattern (PR 5), the profiler is opt-in:
``TimingSimulator(..., profiler=None)`` — the default — keeps the hot
loop on the counter-free path (a single hoisted ``profiling`` bool
guards every charge site), which the zero-overhead benchmark in
``benchmarks/test_sim_profiler.py`` pins down.
"""

#: Component bucket names, in charge-index order.
COMPONENTS = (
    "fetch",
    "branch_predict",
    "icache",
    "dcache",
    "rob_retire",
    "dpred_episode",
    "wrong_path",
    "dataflow",
    "other",
)

(FETCH, BRANCH_PRED, ICACHE, DCACHE, ROB_RETIRE, DPRED_EPISODE,
 WRONG_PATH, DATAFLOW, OTHER) = range(len(COMPONENTS))

NUM_COMPONENTS = len(COMPONENTS)

#: What each bucket's event count means (shown in the hotspot table).
EVENT_MEANING = {
    "fetch": "instructions through the front end",
    "branch_predict": "control-flow instructions predicted",
    "icache": "I-cache walks",
    "dcache": "D-cache walks",
    "rob_retire": "µops retired (incl. wrong-path and selects)",
    "dpred_episode": "episodes entered or extended",
    "wrong_path": "wrong-path µops synthesized",
    "dataflow": "instructions issued",
    "other": "run finalization",
}


class SimProfiler:
    """Accumulates per-component seconds and event counts across runs."""

    __slots__ = ("runs", "seconds", "events")

    def __init__(self):
        self.runs = []
        self.seconds = [0.0] * NUM_COMPONENTS
        self.events = [0] * NUM_COMPONENTS

    def record_run(self, label, comp_seconds, comp_events, stats,
                   metrics=None):
        """Fold one run's buckets in; mirror ``simprof_*`` counters.

        Called once per :meth:`TimingSimulator.run` — never from the
        per-instruction loop.
        """
        for index in range(NUM_COMPONENTS):
            self.seconds[index] += comp_seconds[index]
            self.events[index] += comp_events[index]
        self.runs.append({
            "label": label,
            "seconds": {
                name: comp_seconds[i] for i, name in enumerate(COMPONENTS)
            },
            "events": {
                name: comp_events[i] for i, name in enumerate(COMPONENTS)
            },
            "total_seconds": sum(comp_seconds),
            "retired_instructions": stats.retired_instructions,
            "cycles": stats.cycles,
        })
        if metrics is not None:
            for index, name in enumerate(COMPONENTS):
                if comp_seconds[index]:
                    metrics.counter(
                        f"simprof_{name}_seconds_total"
                    ).inc(comp_seconds[index])
                if comp_events[index]:
                    metrics.counter(
                        f"simprof_{name}_events_total"
                    ).inc(comp_events[index])

    def total_seconds(self):
        return sum(self.seconds)

    def components(self):
        """Per-component rows in self-time (seconds) order, largest first."""
        total = self.total_seconds()
        rows = [
            {
                "name": name,
                "seconds": self.seconds[index],
                "events": self.events[index],
                "fraction": (
                    self.seconds[index] / total if total > 0 else 0.0
                ),
            }
            for index, name in enumerate(COMPONENTS)
        ]
        rows.sort(key=lambda row: (-row["seconds"], row["name"]))
        return rows

    def as_dict(self):
        """JSON-ready snapshot (components in self-time order)."""
        return {
            "runs": len(self.runs),
            "total_seconds": self.total_seconds(),
            "components": self.components(),
        }

    def hotspot_table(self):
        """Human-readable hotspot table, self-time order."""
        rows = self.components()
        total = self.total_seconds()
        lines = [
            f"simulator hotspots ({len(self.runs)} run(s), "
            f"{total:.3f}s attributed):",
            f"  {'component':<15} {'seconds':>9} {'%':>6} "
            f"{'events':>12}  events are",
        ]
        for row in rows:
            lines.append(
                f"  {row['name']:<15} {row['seconds']:>9.4f} "
                f"{100.0 * row['fraction']:>5.1f}% "
                f"{row['events']:>12}  "
                f"{EVENT_MEANING.get(row['name'], '')}"
            )
        return "\n".join(lines)

    def folded(self, prefix=("repro", "simulate")):
        """Brendan-Gregg folded-stack lines (µs weights) for flamegraphs.

        One ``a;b;component <microseconds>`` line per non-zero bucket;
        feed to ``flamegraph.pl`` or speedscope directly.
        """
        stack = tuple(prefix)
        lines = []
        for index, name in enumerate(COMPONENTS):
            micros = int(round(self.seconds[index] * 1e6))
            if micros > 0:
                lines.append(";".join(stack + (name,)) + f" {micros}")
        return lines
