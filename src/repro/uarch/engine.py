"""Simulation-engine selection (scalar vs vectorized batch replay).

One small resolution layer so every consumer — the experiment runner,
campaigns, ``explain``/``profile``, tests — builds simulators the same
way:

- :func:`make_simulator` is the factory everything should call.
- Precedence: an explicit ``engine=`` argument beats a non-``"auto"``
  :attr:`ProcessorConfig.sim_engine`, which beats the process default
  (set by ``--sim-engine`` / :envvar:`REPRO_SIM_ENGINE`), which beats
  the ``auto`` heuristic.
- ``auto`` picks the vectorized engine whenever
  :func:`repro.uarch.vectorized.supports` says the replay is
  bit-identical for this (program, config); otherwise it silently
  falls back to the scalar engine.  Requesting ``vectorized``
  explicitly on an unsupported program raises
  :class:`~repro.errors.SimulationError` instead.

Both engines produce bit-identical :class:`~repro.uarch.stats.SimStats`
(and ledger counters and trace events), so engine choice is purely a
throughput knob and is deliberately *not* part of any cache or cell
identity.
"""

import os
import threading
from contextlib import contextmanager

from repro.errors import SimulationError
from repro.uarch.simulator import TimingSimulator

#: Recognized engine names.
ENGINES = ("auto", "scalar", "vectorized")

#: Environment override for the process default (same values).
ENV_SIM_ENGINE = "REPRO_SIM_ENGINE"

_default_engine = None

#: Per-thread override (outranks the process default).  The serving
#: daemon handles each request in its own thread, so a per-request
#: ``engine`` field must not leak into concurrent requests the way a
#: process-global would.
_thread_engine = threading.local()


def get_default_engine():
    """The default engine for *this thread*.

    Precedence: an active :func:`engine_override` on this thread, else
    the process default (CLI ``--sim-engine`` /
    :func:`set_default_engine`), else :envvar:`REPRO_SIM_ENGINE`, else
    ``auto``.
    """
    local = getattr(_thread_engine, "engine", None)
    if local is not None:
        return local
    if _default_engine is not None:
        return _default_engine
    env = os.environ.get(ENV_SIM_ENGINE, "").strip().lower()
    return env if env in ENGINES else "auto"


def set_default_engine(engine):
    """Set (or with ``None`` clear) the process-default engine."""
    global _default_engine
    if engine is not None and engine not in ENGINES:
        raise ValueError(
            f"unknown sim engine {engine!r} "
            f"(choose from {', '.join(ENGINES)})"
        )
    _default_engine = engine


@contextmanager
def engine_override(engine):
    """Temporarily override the engine for this thread (``None`` no-op).

    Thread-local on purpose: concurrent serve requests each resolve
    their own override without racing on the process default, while
    single-threaded callers (the ``profile`` CLI, tests) observe
    exactly the old set-then-restore semantics.
    """
    if engine is None:
        yield
        return
    if engine not in ENGINES:
        raise ValueError(
            f"unknown sim engine {engine!r} "
            f"(choose from {', '.join(ENGINES)})"
        )
    previous = getattr(_thread_engine, "engine", None)
    _thread_engine.engine = engine
    try:
        yield
    finally:
        _thread_engine.engine = previous


def _numpy_available():
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def vectorized_support(program, config=None):
    """``(ok, reason)``: may ``auto`` pick the vectorized engine here?"""
    if not _numpy_available():
        return False, "numpy is not installed"
    from repro.uarch.config import ProcessorConfig
    from repro.uarch.vectorized import supports

    return supports(program, config or ProcessorConfig())


def resolve_engine(program, config=None, engine=None):
    """Resolve the effective engine name (``"scalar"``/``"vectorized"``).

    Raises :class:`SimulationError` for an unknown name, or when
    ``vectorized`` is requested explicitly but unsupported for this
    (program, config).
    """
    requested = engine
    if requested is None:
        configured = getattr(config, "sim_engine", "auto") \
            if config is not None else "auto"
        requested = configured if configured != "auto" \
            else get_default_engine()
    if requested not in ENGINES:
        raise SimulationError(
            f"unknown sim engine {requested!r} "
            f"(choose from {', '.join(ENGINES)})"
        )
    if requested == "auto":
        ok, _ = vectorized_support(program, config)
        return "vectorized" if ok else "scalar"
    if requested == "vectorized":
        ok, reason = vectorized_support(program, config)
        if not ok:
            raise SimulationError(
                f"vectorized sim engine unavailable: {reason}"
            )
    return requested


def make_simulator(program, config=None, annotation=None, engine=None,
                   **kwargs):
    """Build a simulator through the engine-resolution rules.

    ``kwargs`` are forwarded to the simulator constructor
    (``collect_per_branch``, ``tracer``, ``metrics``, ``ledger``,
    ``profiler`` — plus ``window_size`` for the vectorized engine).
    """
    resolved = resolve_engine(program, config, engine)
    if resolved == "vectorized":
        from repro.uarch.vectorized import VectorizedTimingSimulator

        return VectorizedTimingSimulator(
            program, config=config, annotation=annotation, **kwargs
        )
    return TimingSimulator(
        program, config=config, annotation=annotation, **kwargs
    )
