"""The selection passes, as composable pipeline stages.

Each paper algorithm is one :class:`Pass` operating on a shared
:class:`SelectionState`:

- *candidate producers* (exact §3.3, freq §3.3, return-CFM §3.5,
  diverge loops §5.2) append to the pending candidate list or the
  annotation;
- *candidate filters* (min-misprediction-rate, 2D-profile §8.3,
  cost model §4) narrow the pending list — the cost filter is the
  single implementation shared by hammock and return-CFM candidates;
- *finishers* (short-hammock promotion §3.4, record construction)
  turn surviving candidates into :class:`DivergeBranch` records.

Passes read configuration from the :class:`CompileContext`, never from
a :class:`~repro.core.selector.SelectionConfig` directly, so the
pipeline builder stays the only place that interprets configs.
"""

from dataclasses import dataclass, field

from repro.core.alg_exact import find_exact_candidates
from repro.core.alg_freq import find_freq_candidates
from repro.core.cost_model import evaluate_hammock
from repro.core.loop_selection import select_loop_diverge_branches
from repro.core.marks import BinaryAnnotation, DivergeBranch, DivergeKind
from repro.core.return_cfm import find_return_cfm_candidates
from repro.core.short_hammocks import apply_short_hammock_heuristic
from repro.obs.events import BranchRejected, BranchSelected


class CompileContext:
    """Everything a pass may read: inputs, analyses, knobs, tracer."""

    __slots__ = (
        "program", "profile", "analysis", "thresholds", "cost_method",
        "cost_params", "min_misp_rate", "two_d_profile", "tracer",
        "ledger", "current_pass", "manager",
    )

    def __init__(self, program, profile, analysis, thresholds,
                 cost_method=None, cost_params=None, min_misp_rate=0.0,
                 two_d_profile=None, tracer=None, ledger=None,
                 manager=None):
        self.program = program
        self.profile = profile
        self.analysis = analysis
        #: The *effective* thresholds — footnote 4 bounds already
        #: applied in cost-model mode.  Passes never re-derive them.
        self.thresholds = thresholds
        self.cost_method = cost_method
        self.cost_params = cost_params
        self.min_misp_rate = min_misp_rate
        self.two_d_profile = two_d_profile
        self.tracer = tracer
        #: A :class:`repro.obs.ledger.SelectionLedger` (or ``None``)
        #: collecting every verdict, independent of the tracer.
        self.ledger = ledger
        #: The running pass's name — the pipeline maintains this so
        #: ledger decisions attribute to the pass that made them.
        self.current_pass = ""
        #: The :class:`~repro.compiler.analysis_manager.AnalysisManager`
        #: the analysis came from (or ``None``) — transform passes
        #: re-fetch through it after mutating the program.
        self.manager = manager

    # -- verdict emission (shared by every pass) ------------------------

    def emit_selected(self, branch, report=None, rule=None):
        if self.ledger is not None:
            self.ledger.record_selected(
                branch, self.current_pass, report=report, rule=rule,
                params=self.cost_params,
            )
        if self.tracer is None or not self.tracer.enabled:
            return
        self.tracer.emit(BranchSelected(
            branch_pc=branch.branch_pc,
            kind=branch.kind.value,
            source=branch.source,
            always_predicate=branch.always_predicate,
            num_cfm_points=len(branch.cfm_points),
            num_select_uops=branch.num_select_uops,
            dpred_cost=report.dpred_cost if report else None,
            dpred_overhead=report.dpred_overhead if report else None,
            merge_prob_total=report.merge_prob_total if report else None,
        ))

    def emit_rejected(self, branch_pc, reason, report=None, rule=None):
        if self.ledger is not None:
            self.ledger.record_rejected(
                branch_pc, self.current_pass, reason, report=report,
                rule=rule, params=self.cost_params,
            )
        if self.tracer is None or not self.tracer.enabled:
            return
        self.tracer.emit(BranchRejected(
            branch_pc=branch_pc,
            reason=reason,
            dpred_cost=report.dpred_cost if report else None,
            dpred_overhead=report.dpred_overhead if report else None,
            merge_prob_total=report.merge_prob_total if report else None,
        ))


@dataclass
class SelectionState:
    """Mutable state threaded through the pipeline."""

    annotation: BinaryAnnotation
    #: Hammock candidates still awaiting filters / finishing.
    candidates: list = field(default_factory=list)
    #: Short hammocks (§3.4): branch_pc -> qualifying CFM points.
    short: dict = field(default_factory=dict)
    #: Cost reports for *selected* branches, keyed by pc (trace data).
    cost_by_pc: dict = field(default_factory=dict)
    #: Every cost evaluation in order — the Fig. 5 driver renders these.
    cost_reports: list = field(default_factory=list)
    #: Diverge-loop accept/reject diagnostics.
    loop_reports: list = field(default_factory=list)
    #: The context's :class:`~repro.obs.ledger.SelectionLedger` (or
    #: ``None``), mirrored here by the pipeline so callers that only
    #: see the final state can still read the decisions.
    ledger: object = None
    #: The :class:`~repro.compiler.transform.TransformResult` of a
    #: transform pass that mutated the program (or ``None``).  The
    #: annotation's pcs refer to ``transform.program`` when set.
    transform: object = None


class Pass:
    """Base class: a named transformation of the selection state."""

    #: Spec-grammar token / display name; subclasses override.
    name = "pass"

    def run(self, ctx, state):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"


# -- candidate producers -----------------------------------------------------


class ExactCandidatesPass(Pass):
    """Alg-exact (§3.3): simple/frequently-hammock candidates."""

    name = "exact"

    def run(self, ctx, state):
        state.candidates.extend(
            find_exact_candidates(ctx.analysis, ctx.thresholds)
        )


class FreqCandidatesPass(Pass):
    """Alg-freq (§3.3): frequently-hammock candidates, chains reduced."""

    name = "freq"

    def run(self, ctx, state):
        exclude = frozenset(c.branch_pc for c in state.candidates)
        state.candidates.extend(
            find_freq_candidates(ctx.analysis, ctx.thresholds, exclude)
        )


# -- candidate filters -------------------------------------------------------


class MinMispRateFilterPass(Pass):
    """§8.3 easy-branch floor on profiled misprediction rate.

    ``rate=None`` reads the context's configured floor; an explicit
    rate (spec token ``minmisp:0.05``) overrides it.
    """

    name = "minmisp"

    def __init__(self, rate=None):
        self.rate = rate

    def run(self, ctx, state):
        rate = self.rate if self.rate is not None else ctx.min_misp_rate
        if rate <= 0.0:
            return
        branch_profile = ctx.profile.branch_profile
        kept = []
        for candidate in state.candidates:
            if branch_profile.misprediction_rate(candidate.branch_pc) \
                    >= rate:
                kept.append(candidate)
            else:
                ctx.emit_rejected(candidate.branch_pc,
                                  "easy-branch-filter",
                                  rule=f"misp_rate<{rate:g}")
        state.candidates = kept


class TwoDProfileFilterPass(Pass):
    """§8.3 2D-profiling filter; no-op without a 2D profile."""

    name = "2d"

    def run(self, ctx, state):
        if ctx.two_d_profile is None:
            return
        kept = []
        for candidate in state.candidates:
            if ctx.two_d_profile.keep_branch(candidate.branch_pc):
                kept.append(candidate)
            else:
                ctx.emit_rejected(candidate.branch_pc,
                                  "2d-profile-filter",
                                  rule="always-easy-2d")
        state.candidates = kept


def apply_cost_filter(ctx, state, candidates):
    """The one cost-model decision loop (§4).

    Filters any candidate list — pending hammocks and return-CFM
    candidates go through this same code, appending to
    ``state.cost_reports`` in evaluation order (hammocks first, then
    return-CFMs), which the Fig. 5 driver relies on.
    """
    kept = []
    for candidate in candidates:
        report = evaluate_hammock(
            candidate, ctx.profile, ctx.cost_params,
            method=ctx.cost_method,
        )
        state.cost_reports.append(report)
        if report.selected:
            state.cost_by_pc[candidate.branch_pc] = report
            kept.append(candidate)
        else:
            ctx.emit_rejected(candidate.branch_pc, "cost-model", report,
                              rule="dpred_cost>=0")
    return kept


class CostModelFilterPass(Pass):
    """Cost-benefit filter (§4) over the pending hammock candidates."""

    name = "cost"

    def run(self, ctx, state):
        if ctx.cost_method is None:
            return
        state.candidates = apply_cost_filter(ctx, state, state.candidates)


# -- finishers ----------------------------------------------------------------


def finish_hammock(ctx, candidate, always, source=None):
    """Build the :class:`DivergeBranch` record for a hammock candidate."""
    select_registers = ctx.analysis.select_registers_for_paths(
        candidate.path_set, candidate.cfm_pcs
    )
    return DivergeBranch(
        branch_pc=candidate.branch_pc,
        kind=candidate.kind,
        cfm_points=candidate.cfm_points,
        select_registers=select_registers,
        always_predicate=always,
        source=source or candidate.kind.value,
    )


def finish_short(ctx, branch_pc, cfm_points):
    """Build the always-predicated record for a short hammock (§3.4)."""
    thresholds = ctx.thresholds
    path_set = ctx.analysis.paths(
        branch_pc,
        max_instr=thresholds.max_instr,
        max_cbr=thresholds.max_cbr,
        min_exec_prob=thresholds.min_exec_prob,
        stop_at_iposdom=True,
    )
    cfm_pcs = {p.pc for p in cfm_points if p.pc is not None}
    select_registers = ctx.analysis.select_registers_for_paths(
        path_set, cfm_pcs
    )
    kind = (
        DivergeKind.SIMPLE_HAMMOCK
        if all(p.merge_prob >= 0.999 for p in cfm_points)
        else DivergeKind.FREQUENTLY_HAMMOCK
    )
    return DivergeBranch(
        branch_pc=branch_pc,
        kind=kind,
        cfm_points=tuple(cfm_points),
        select_registers=select_registers,
        always_predicate=True,
        source="short-hammock",
    )


class ShortHammockPass(Pass):
    """Partition pending candidates into short hammocks (§3.4).

    Short hammocks bypass the cost/threshold decision (they are
    always-predicated), so this pass must run *before* the cost filter.
    """

    name = "short"

    def run(self, ctx, state):
        state.short, state.candidates = apply_short_hammock_heuristic(
            state.candidates, ctx.profile, ctx.thresholds
        )


class FinishPass(Pass):
    """Record construction: surviving candidates → annotation.

    Hammock candidates first (producer order), then short hammocks in
    pc order — the legacy emission order, preserved bit-for-bit.
    """

    name = "finish"

    def run(self, ctx, state):
        for candidate in state.candidates:
            branch = finish_hammock(ctx, candidate, always=False)
            state.annotation.add(branch)
            ctx.emit_selected(
                branch, state.cost_by_pc.get(branch.branch_pc)
            )
        state.candidates = []
        for branch_pc, cfm_points in sorted(state.short.items()):
            branch = finish_short(ctx, branch_pc, cfm_points)
            state.annotation.add(branch)
            ctx.emit_selected(branch)
        state.short = {}


class ReturnCFMPass(Pass):
    """Return-CFM selection (§3.5): produce, cost-filter, finish.

    Runs after :class:`FinishPass` so already-annotated branches are
    excluded; its candidates flow through the same
    :func:`apply_cost_filter` as hammocks.
    """

    name = "ret"

    def run(self, ctx, state):
        exclude = frozenset(
            branch.branch_pc for branch in state.annotation
        )
        candidates = find_return_cfm_candidates(
            ctx.analysis, ctx.thresholds, exclude
        )
        if ctx.cost_method is not None:
            candidates = apply_cost_filter(ctx, state, candidates)
        for candidate in candidates:
            branch = finish_hammock(
                ctx, candidate, always=False, source="return-cfm"
            )
            state.annotation.add(branch)
            ctx.emit_selected(
                branch, state.cost_by_pc.get(branch.branch_pc)
            )


class LoopPass(Pass):
    """Diverge-loop selection (§5.2); hammock marks win conflicts."""

    name = "loop"

    def run(self, ctx, state):
        loops, state.loop_reports = select_loop_diverge_branches(
            ctx.analysis, ctx.thresholds
        )
        for branch in loops:
            if not state.annotation.is_diverge(branch.branch_pc):
                state.annotation.add(branch)
                ctx.emit_selected(branch)
        for report in state.loop_reports:
            if not report.accepted:
                ctx.emit_rejected(
                    report.branch_pc,
                    f"loop:{report.reject_reason}",
                    rule=report.reject_reason,
                )
