"""Pass-manager pipeline: scheduling, specs, and the run loop.

A :class:`Pipeline` runs an ordered list of passes over one
:class:`~repro.compiler.passes.SelectionState`, with per-pass phase
timers (``compile.<pass>``), ``compile.pass.{start,end}`` trace events
and a ``pipeline_pass_runs_total`` counter.  The
:class:`PipelineBuilder` produces the canonical schedule for a
:class:`~repro.core.selector.SelectionConfig` — either given directly
(:meth:`PipelineBuilder.from_config`) or parsed from a declarative
spec string (:meth:`PipelineBuilder.from_spec`).

Spec grammar (comma-separated tokens, order-insensitive — the builder
always normalizes to the canonical schedule below)::

    spec   := token ("," token)*
    token  := "meld" | "meld:short" | "meld:all"
            | "exact" | "freq" | "short" | "ret" | "loop"
            | "cost" | "cost:edge" | "cost:long"
            | "minmisp:" FLOAT

Canonical schedule: meld → exact → freq → minmisp → 2d → short →
cost → finish → ret → loop, with producer/filter passes included only
when enabled.  ``meld`` (bare form = ``meld:short``) schedules the
static if-conversion :class:`~repro.compiler.transform.MeldPass`
*first*: it rewrites the program, so every selection pass after it
compiles the transformed code.  The annotation-only schedule (exact →
… → loop) is the paper's Figure 5 composition order and is what the
legacy ``DivergeSelector`` always did; the equivalence tests pin it
byte-for-byte.
"""

import time
from dataclasses import replace

from repro.compiler.analysis_manager import shared_manager
from repro.compiler.passes import (
    CompileContext,
    CostModelFilterPass,
    ExactCandidatesPass,
    FinishPass,
    FreqCandidatesPass,
    LoopPass,
    MinMispRateFilterPass,
    ReturnCFMPass,
    SelectionState,
    ShortHammockPass,
    TwoDProfileFilterPass,
)
from repro.core.marks import BinaryAnnotation
from repro.obs.context import get_metrics, get_tracer
from repro.obs.events import CompilePassEnd, CompilePassStart
from repro.obs.timers import phase

#: Pass tokens that toggle a producer/finisher in the spec grammar.
_FLAG_TOKENS = ("exact", "freq", "short", "ret", "loop")
#: Cost-model methods the ``cost:`` token accepts.
_COST_METHODS = ("edge", "long")
#: Transform modes the ``meld`` token accepts (bare = ``short``).
_MELD_MODES = ("short", "all")


def parse_spec(spec, thresholds=None, name=None):
    """Parse a pipeline spec string into a ``SelectionConfig``.

    Raises :class:`ValueError` on unknown or duplicate tokens; the
    message spells out the grammar so CLI users can self-serve.
    """
    from repro.core.selector import SelectionConfig
    from repro.core.thresholds import SelectionThresholds

    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    if not tokens:
        raise ValueError(f"empty pipeline spec: {spec!r}")
    flags = dict.fromkeys(_FLAG_TOKENS, False)
    cost_model = None
    min_misp_rate = 0.0
    meld = None
    for token in tokens:
        if token == "meld" or token.startswith("meld:"):
            mode = token[5:] if token.startswith("meld:") else "short"
            if mode not in _MELD_MODES:
                raise ValueError(
                    f"unknown meld mode {mode!r} in {token!r}; "
                    f"expected one of {', '.join(_MELD_MODES)}"
                )
            if meld is not None:
                raise ValueError(
                    f"duplicate meld token in pipeline spec {spec!r}"
                )
            meld = mode
        elif token in flags:
            if flags[token]:
                raise ValueError(
                    f"duplicate pass {token!r} in pipeline spec {spec!r}"
                )
            flags[token] = True
        elif token == "cost" or token.startswith("cost:"):
            method = token[5:] if token.startswith("cost:") else "edge"
            if method not in _COST_METHODS:
                raise ValueError(
                    f"unknown cost method {method!r} in {token!r}; "
                    f"expected one of {', '.join(_COST_METHODS)}"
                )
            if cost_model is not None:
                raise ValueError(
                    f"duplicate cost token in pipeline spec {spec!r}"
                )
            cost_model = method
        elif token.startswith("minmisp:"):
            try:
                min_misp_rate = float(token[len("minmisp:"):])
            except ValueError:
                raise ValueError(
                    f"bad minmisp rate in {token!r} "
                    f"(expected minmisp:FLOAT)"
                ) from None
        else:
            raise ValueError(
                f"unknown pipeline token {token!r}; grammar: "
                f"meld[:short|:all]|exact|freq|short|ret|loop"
                f"|cost[:edge|:long]|minmisp:FLOAT, comma-separated"
            )
    return SelectionConfig(
        enable_exact=flags["exact"],
        enable_freq=flags["freq"],
        enable_short=flags["short"],
        enable_return_cfm=flags["ret"],
        enable_loop=flags["loop"],
        cost_model=cost_model,
        thresholds=thresholds or SelectionThresholds(),
        min_misp_rate=min_misp_rate,
        meld=meld,
        name=name or spec,
    )


def format_spec(config):
    """The canonical spec string for a ``SelectionConfig``."""
    tokens = []
    if config.meld is not None:
        tokens.append(f"meld:{config.meld}")
    tokens += [
        token
        for token, enabled in (
            ("exact", config.enable_exact),
            ("freq", config.enable_freq),
            ("short", config.enable_short),
            ("ret", config.enable_return_cfm),
            ("loop", config.enable_loop),
        )
        if enabled
    ]
    if config.cost_model is not None:
        tokens.append(f"cost:{config.cost_model}")
    if config.min_misp_rate > 0.0:
        tokens.append(f"minmisp:{config.min_misp_rate:g}")
    return ",".join(tokens)


def context_for_config(program, profile, config, two_d_profile=None,
                       tracer=None, manager=None, ledger=None):
    """Build the :class:`CompileContext` a config implies.

    The analysis comes from ``manager`` (default: the process-wide
    :func:`shared_manager`), so repeated compiles of the same
    program+profile share dominators, loops, and memoized path sets.
    """
    manager = manager if manager is not None else shared_manager()
    analysis = manager.analysis(program, profile)
    cost_params = config.cost_params
    if config.cost_model is not None and config.per_app_acc_conf:
        measured = profile.measured_acc_conf
        if measured > 0.0:
            cost_params = replace(cost_params, acc_conf=measured)
    return CompileContext(
        program=program,
        profile=profile,
        analysis=analysis,
        thresholds=config.effective_thresholds,
        cost_method=config.cost_model,
        cost_params=cost_params,
        min_misp_rate=config.min_misp_rate,
        two_d_profile=two_d_profile,
        tracer=tracer if tracer is not None else get_tracer(),
        ledger=ledger,
        manager=manager,
    )


class Pipeline:
    """An ordered, instrumented sequence of selection passes."""

    def __init__(self, passes, name="pipeline"):
        self.passes = tuple(passes)
        self.name = name

    def run(self, ctx, state=None):
        """Run every pass; returns the final :class:`SelectionState`."""
        metrics = get_metrics()
        if state is None:
            state = SelectionState(BinaryAnnotation(ctx.program.name))
        state.ledger = ctx.ledger
        tracing = ctx.tracer is not None and ctx.tracer.enabled
        for index, pipeline_pass in enumerate(self.passes):
            if tracing:
                ctx.tracer.emit(CompilePassStart(
                    pipeline=self.name,
                    pass_name=pipeline_pass.name,
                    index=index,
                ))
            ctx.current_pass = pipeline_pass.name
            start = time.perf_counter()
            try:
                with phase(f"compile.{pipeline_pass.name}"):
                    pipeline_pass.run(ctx, state)
            finally:
                ctx.current_pass = ""
            metrics.counter("pipeline_pass_runs_total").inc()
            if tracing:
                ctx.tracer.emit(CompilePassEnd(
                    pipeline=self.name,
                    pass_name=pipeline_pass.name,
                    index=index,
                    seconds=time.perf_counter() - start,
                    candidates=len(state.candidates),
                    selected=len(state.annotation),
                ))
        metrics.counter("selection_runs_total").inc()
        metrics.counter("selection_branches_selected_total").inc(
            len(state.annotation)
        )
        return state

    def pass_names(self):
        return [pipeline_pass.name for pipeline_pass in self.passes]

    def __repr__(self):
        return f"<Pipeline {self.name!r}: {','.join(self.pass_names())}>"


class PipelineBuilder:
    """Builds the canonical pass schedule for a selection config."""

    def __init__(self, config):
        self.config = config

    @classmethod
    def from_config(cls, config):
        return cls(config)

    @classmethod
    def from_spec(cls, spec, thresholds=None, name=None):
        return cls(parse_spec(spec, thresholds=thresholds, name=name))

    def build(self):
        config = self.config
        passes = []
        if config.meld is not None:
            from repro.compiler.transform import MeldPass

            passes.append(MeldPass(config.meld))
        if config.enable_exact:
            passes.append(ExactCandidatesPass())
        if config.enable_freq:
            passes.append(FreqCandidatesPass())
        if config.min_misp_rate > 0.0:
            passes.append(MinMispRateFilterPass())
        # Always scheduled: a no-op unless the context carries a 2D
        # profile, which is unknowable at build time.
        passes.append(TwoDProfileFilterPass())
        if config.enable_short:
            passes.append(ShortHammockPass())
        if config.cost_model is not None:
            passes.append(CostModelFilterPass())
        passes.append(FinishPass())
        if config.enable_return_cfm:
            passes.append(ReturnCFMPass())
        if config.enable_loop:
            passes.append(LoopPass())
        return Pipeline(passes, name=config.name)


def run_selection_pipeline(program, profile, config, two_d_profile=None,
                           tracer=None, manager=None, ledger=None):
    """One-call compile: config → pipeline → final selection state."""
    ctx = context_for_config(
        program, profile, config,
        two_d_profile=two_d_profile, tracer=tracer, manager=manager,
        ledger=ledger,
    )
    return PipelineBuilder.from_config(config).build().run(ctx)
