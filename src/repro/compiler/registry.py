"""The one place selection presets resolve through.

Experiments (`experiments.configs`), campaign specs
(`campaign.spec.build_selection`), the ``repro compile`` CLI, and
tests all look up named configurations here.  Every name follows the
paper's figure legends; each maps to a factory taking optional
``thresholds`` so sweeps can rebind bounds without re-declaring the
pass composition.
"""

from repro.core.selector import SelectionConfig

#: name -> factory(thresholds=None) -> SelectionConfig.
_REGISTRY = {}


def register(name, factory):
    """Register a preset; raises on name collision."""
    if name in _REGISTRY:
        raise ValueError(f"preset {name!r} already registered")
    _REGISTRY[name] = factory
    return factory


def resolve(name, thresholds=None):
    """The :class:`SelectionConfig` for a preset name.

    Raises :class:`KeyError` listing the registered names, mirroring
    the historical ``named_config`` contract.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; choose from {names()}"
        ) from None
    return factory(thresholds=thresholds)


def names():
    """All registered preset names, sorted."""
    return sorted(_REGISTRY)


def _preset(name, **fixed):
    """Register a plain-flags preset under ``name``."""

    def factory(thresholds=None):
        kwargs = dict(fixed)
        if thresholds is not None:
            kwargs["thresholds"] = thresholds
        return SelectionConfig(name=name, **kwargs)

    register(name, factory)
    return factory


# Figure 5 (left): the cumulative heuristic series.
_preset("exact", enable_freq=False)
_preset("exact+freq")
_preset("exact+freq+short", enable_short=True)
_preset("exact+freq+short+ret", enable_short=True, enable_return_cfm=True)
register(
    "all-best-heur",
    lambda thresholds=None: SelectionConfig.all_best_heur(thresholds),
)

# Figure 5 (right): the cost-benefit model variants.
_preset("cost-long", cost_model="long")
_preset("cost-edge", cost_model="edge")
_preset("cost-edge+short", cost_model="edge", enable_short=True)
_preset("cost-edge+short+ret", cost_model="edge", enable_short=True,
        enable_return_cfm=True)
register(
    "all-best-cost",
    lambda thresholds=None: SelectionConfig.all_best_cost(
        thresholds=thresholds
    ),
)

# Static if-conversion (§6 software-predication comparison).  "meld"
# alone runs no selection pass: the annotation is empty and the melded
# program runs without dynamic predication — the pure static baseline.
# "meld+all-best-heur" layers All-best-heur selection on the melded
# program (the combined strategy).  These rewrite the program, so they
# are excluded from the legacy-oracle equivalence matrix and must be
# simulated via the meld-aware drivers.
_preset("meld", meld="short", enable_exact=False, enable_freq=False)
register(
    "meld+all-best-heur",
    lambda thresholds=None: SelectionConfig(
        enable_exact=True,
        enable_freq=True,
        enable_short=True,
        enable_return_cfm=True,
        enable_loop=True,
        meld="short",
        name="meld+all-best-heur",
        **({"thresholds": thresholds} if thresholds is not None else {}),
    ),
)

# Campaign alias: the fig7 sweeps select with exact+freq only.
register(
    "exact-freq",
    lambda thresholds=None: SelectionConfig(
        name="exact-freq",
        **({"thresholds": thresholds} if thresholds is not None else {}),
    ),
)
