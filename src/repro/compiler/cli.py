"""``python -m repro compile`` — run the selection pipeline standalone.

Compiles one benchmark's profile into a binary annotation through the
pass-manager pipeline, from either a registered preset (``--config``)
or a declarative pipeline spec (``--pipeline``)::

    python -m repro compile --benchmark twolf --config all-best-heur
    python -m repro compile --benchmark twolf \
        --pipeline "exact,freq,short,ret,loop,cost:edge" -o marks.json
    python -m repro compile --list

The emitted JSON is the exact :mod:`repro.core.annotation_io` document
the simulator consumes, so two invocations can be diffed byte-for-byte
— the CI ``pipeline-equivalence`` job does exactly that for the preset
and spec spellings of the same configuration.
"""

import argparse
import sys


def _print_transform_diff(original, state):
    """Unified before/after disassembly diff of a rewriting pipeline.

    Annotation-only pipelines leave the program untouched, so the diff
    is empty — a one-line note says so instead of printing nothing.
    """
    import difflib

    transform = state.transform
    if transform is None or not transform.changed:
        print("# no transform pass rewrote the program "
              "(annotation-only pipeline)")
        return
    before = original.disassemble().splitlines()
    after = transform.program.disassemble().splitlines()
    diff = difflib.unified_diff(
        before, after,
        fromfile=f"{original.name} (original)",
        tofile=f"{transform.program.name} (transformed)",
        lineterm="",
    )
    for line in diff:
        print(line)
    melds = ", ".join(
        f"pc {pc}->{record.new_pc} ({record.kind})"
        for pc, record in sorted(transform.melded.items())
    )
    print(f"# melded {len(transform.melded)} hammock(s): {melds}")


def main(argv=None):
    from repro.compiler import registry
    from repro.compiler.pipeline import format_spec, parse_spec

    parser = argparse.ArgumentParser(
        prog="python -m repro compile",
        description=(
            "Profile-driven diverge-branch selection through the "
            "pass-manager pipeline (see docs/compiler.md)."
        ),
    )
    parser.add_argument(
        "--benchmark",
        metavar="NAME",
        help="workload to profile and compile (see repro.workloads)",
    )
    parser.add_argument(
        "--input-set",
        default="reduced",
        metavar="SET",
        help="profiling input set (default: reduced)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-length multiplier (default: 1.0)",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--config",
        metavar="NAME",
        help="registered preset name (default: all-best-heur; "
             "see --list)",
    )
    group.add_argument(
        "--pipeline",
        metavar="SPEC",
        help="declarative pipeline spec, e.g. "
             "'exact,freq,short,ret,loop,cost:edge'",
    )
    parser.add_argument(
        "-o", "--output",
        metavar="OUT.json",
        default=None,
        help="write the annotation JSON here (default: stdout)",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="print a unified before/after disassembly diff of any "
             "program-rewriting passes (empty for annotation-only "
             "pipelines)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered presets (with their canonical specs) "
             "and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(name) for name in registry.names())
        for name in registry.names():
            spec = format_spec(registry.resolve(name))
            print(f"{name.ljust(width)}  {spec}")
        return 0
    if not args.benchmark:
        parser.error("--benchmark is required (or use --list)")

    try:
        if args.pipeline is not None:
            config = parse_spec(args.pipeline)
        else:
            config = registry.resolve(args.config or "all-best-heur")
    except (KeyError, ValueError) as exc:
        print(f"python -m repro compile: error: {exc}", file=sys.stderr)
        return 2

    from repro.compiler.pipeline import run_selection_pipeline
    from repro.core import annotation_io
    from repro.errors import ReproError
    from repro.experiments.runner import get_artifacts

    try:
        artifacts = get_artifacts(
            args.benchmark, input_set=args.input_set, scale=args.scale
        )
    except (KeyError, ValueError, ReproError) as exc:
        print(f"python -m repro compile: error: {exc}", file=sys.stderr)
        return 1

    state = run_selection_pipeline(
        artifacts.program, artifacts.profile, config
    )
    annotation = state.annotation
    text = annotation_io.dumps(annotation)

    if args.diff:
        _print_transform_diff(artifacts.program, state)

    if args.output:
        from repro.ioutil import ensure_parent

        with open(ensure_parent(args.output), "w",
                  encoding="utf-8") as handle:
            handle.write(text + "\n")
        sources = {}
        for branch in annotation:
            sources[branch.source] = sources.get(branch.source, 0) + 1
        breakdown = ", ".join(
            f"{name}: {count}" for name, count in sorted(sources.items())
        ) or "none"
        print(
            f"compiled {args.benchmark!r} with "
            f"{format_spec(config) or 'no passes'} — "
            f"{len(annotation)} diverge branches ({breakdown})"
        )
        print(f"annotation written to {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
