"""The pass-manager compiler pipeline (see ``docs/compiler.md``).

Public surface:

- :class:`AnalysisManager` / :func:`shared_manager` — content-keyed
  caching of :class:`~repro.core.analysis.ProgramAnalysis` products
  shared across configs and sweep cells;
- :class:`Pass` and the concrete selection passes;
- :class:`Pipeline` / :class:`PipelineBuilder` — canonical schedules
  from configs or declarative specs (``"exact,freq,short,ret,loop"``);
- the preset registry (:func:`resolve`, :func:`names`,
  :func:`register`) every named-config consumer resolves through.
"""

from repro.compiler.analysis_manager import (
    AnalysisManager,
    reset_shared_manager,
    shared_manager,
)
from repro.compiler.passes import (
    CompileContext,
    CostModelFilterPass,
    ExactCandidatesPass,
    FinishPass,
    FreqCandidatesPass,
    LoopPass,
    MinMispRateFilterPass,
    Pass,
    ReturnCFMPass,
    SelectionState,
    ShortHammockPass,
    TwoDProfileFilterPass,
)
from repro.compiler.pipeline import (
    Pipeline,
    PipelineBuilder,
    context_for_config,
    format_spec,
    parse_spec,
    run_selection_pipeline,
)
from repro.compiler.registry import names, register, resolve
from repro.compiler.transform import (
    MeldPass,
    TransformPass,
    TransformResult,
    apply_meld,
    apply_transform,
    find_meld_candidates,
    select_meld_candidates,
)

__all__ = [
    "AnalysisManager",
    "CompileContext",
    "CostModelFilterPass",
    "ExactCandidatesPass",
    "FinishPass",
    "FreqCandidatesPass",
    "LoopPass",
    "MeldPass",
    "MinMispRateFilterPass",
    "Pass",
    "Pipeline",
    "PipelineBuilder",
    "ReturnCFMPass",
    "SelectionState",
    "ShortHammockPass",
    "TransformPass",
    "TransformResult",
    "TwoDProfileFilterPass",
    "apply_meld",
    "apply_transform",
    "context_for_config",
    "find_meld_candidates",
    "format_spec",
    "names",
    "parse_spec",
    "register",
    "reset_shared_manager",
    "resolve",
    "run_selection_pipeline",
    "select_meld_candidates",
    "shared_manager",
]
