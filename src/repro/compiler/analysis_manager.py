"""Content-keyed caching of :class:`ProgramAnalysis` products.

A :class:`ProgramAnalysis` bundles everything selection passes derive
from a (program, profile) pair: CFGs, post-dominator trees, natural
loops, and memoized bounded path enumerations.  Building one is the
dominant cost of a selection run, yet sweeps (fig5/fig7, ``campaign``)
re-select the same pair under dozens of configs.  The manager caches
analyses under a *content* key — :attr:`Program.fingerprint` plus
:meth:`ProfileData.cache_key` — so any number of
:class:`~repro.core.selector.SelectionConfig` variations share one
analysis, and the path-set memoization inside it compounds across
threshold sweeps (path keys exclude MIN_MERGE_PROB, so merge-probability
sweeps are pure cache hits).

Invalidation contract: the key covers everything the analyses read, so
a changed program or profile naturally misses.  For in-place profile
mutation (tests, interactive use) :meth:`AnalysisManager.invalidate`
drops whole entries and :meth:`AnalysisManager.invalidate_paths` drops
only the parameter-keyed path sets while keeping the structural
analyses (dominators, loops), which depend on the program alone.
"""

from collections import OrderedDict

from repro.core.analysis import ProgramAnalysis
from repro.obs.context import get_metrics

#: Analyses retained per manager; LRU beyond this.  Sized for a full
#: benchmark-suite sweep (17 workloads) with headroom.
DEFAULT_CAPACITY = 32


class AnalysisManager:
    """Bounded LRU of :class:`ProgramAnalysis` keyed by content."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries = OrderedDict()

    @staticmethod
    def key_for(program, profile):
        """The content key an analysis is cached under."""
        return (program.fingerprint, profile.cache_key())

    def analysis(self, program, profile):
        """The cached analysis for this pair, building it on miss."""
        key = self.key_for(program, profile)
        entry = self._entries.get(key)
        metrics = get_metrics()
        if entry is not None:
            self._entries.move_to_end(key)
            metrics.counter("analysis_cache_hits_total").inc()
            return entry
        metrics.counter("analysis_cache_misses_total").inc()
        entry = ProgramAnalysis(program, profile)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            metrics.counter("analysis_cache_evictions_total").inc()
        return entry

    def invalidate(self, program, profile):
        """Drop the whole entry for this pair (if cached)."""
        self._entries.pop(self.key_for(program, profile), None)

    def invalidate_paths(self, program, profile):
        """Drop only the memoized path sets for this pair.

        Dominators and loops survive — they depend on the program, not
        the profile or any threshold.
        """
        entry = self._entries.get(self.key_for(program, profile))
        if entry is not None:
            entry.invalidate_paths()

    def stats(self):
        """Occupancy summary (the serve daemon's ``/healthz`` reports it)."""
        return {"entries": len(self._entries), "capacity": self.capacity}

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries


#: Process-wide manager the selector shims and campaign cells share.
_SHARED = None


def shared_manager():
    """The process-wide :class:`AnalysisManager` singleton.

    Forked campaign workers inherit the parent's warmed entries via
    copy-on-write, which is how the scheduler threads one manager
    through every cell of the same (benchmark, input set).
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = AnalysisManager()
    return _SHARED


def reset_shared_manager():
    """Drop the shared manager (test isolation, ``clear_cache``)."""
    global _SHARED
    _SHARED = None
