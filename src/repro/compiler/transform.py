"""Transform passes: compile-time rewriting of the Program.

The annotation-only pipeline (``docs/compiler.md``) never touches the
program it compiles; a :class:`TransformPass` does.  It produces a
:class:`TransformResult` — a rewritten :class:`~repro.isa.Program`
plus the pc remapping that relates it to the original — and the base
class applies it to the :class:`~repro.compiler.passes.CompileContext`:
the context's program is swapped, its :class:`ProfileData` is remapped
(:meth:`~repro.profiling.profiler.ProfileData.remapped`), and the
analysis is re-fetched through the :class:`AnalysisManager` — the
manager's content key covers the program fingerprint, so mutation *is*
invalidation and the original pair's entry stays valid for anyone
still compiling the untransformed program.

The first transform is static if-conversion (*melding*, after DARM):
:class:`MeldPass` finds short divergent hammocks, predicates both
sides with ``CMOV`` selects, and removes the branch — the paper's §6
software-predication comparison point, and the surgical way to stress
selection on programs whose easy hammocks are already gone.

The rewrite keeps the melded program *architecturally identical* to
the original: every side writes scratch registers (registers the
program never references) and a ``CMOV`` epilogue commits exactly the
side the branch would have executed; a ``MOVI 0`` cleanup restores the
scratch registers so the final register file matches bit-for-bit.
Sides may only contain ALU/``MOV``/``MOVI``/``LD``/``NOP`` — every one
of those is safe to run down the not-taken side (division by zero is
defined as 0, loads of unmapped words return 0, nothing stores or
redirects control).
"""

from dataclasses import dataclass

from repro.compiler.passes import Pass
from repro.isa.instructions import (
    ALU_OPCODES,
    COND_BRANCH_OPCODES,
    Instruction,
    Opcode,
)
from repro.isa.program import Function, Program
from repro.isa.registers import NUM_REGISTERS, ZERO_REGISTER

#: Opcodes a melded side may contain: unconditionally re-executable,
#: no stores, no control flow (see module docstring).
MELDABLE_OPCODES = frozenset(ALU_OPCODES) | {
    Opcode.MOV, Opcode.MOVI, Opcode.CMOV, Opcode.LD, Opcode.NOP,
}

#: Structural per-side size cap for ``meld:all`` mode; ``meld:short``
#: uses the short-hammock threshold instead.
MELD_MAX_SIDE_INSTS = 16

#: Spec-grammar modes the ``meld`` token accepts.
MELD_MODES = ("short", "all")


@dataclass(frozen=True)
class MeldCandidate:
    """A structurally meldable hammock at ``branch_pc``.

    ``then_range``/``else_range`` are half-open pc ranges of the
    fall-through and taken sides; ``join_pc`` is the reconvergence
    point (the first instruction that survives the rewrite).
    """

    branch_pc: int
    kind: str                 # "one-sided" | "diamond"
    then_range: tuple
    else_range: tuple         # empty range for one-sided hammocks
    join_pc: int


@dataclass
class MeldedBranch:
    """Ledger record of one melded hammock."""

    branch_pc: int            # original pc of the removed branch
    new_pc: int               # start of the predicated sequence
    kind: str
    join_pc: int              # original reconvergence pc
    then_insts: int
    else_insts: int
    cmovs: int
    temps: int


@dataclass
class TransformResult:
    """A rewritten program and how its pcs relate to the original.

    ``pc_map`` maps every *surviving* original pc to its new pc — the
    replaced hammock regions are absent, which is exactly the dropping
    contract :meth:`ProfileData.remapped` and the explain join expect.
    ``melded`` maps original branch pc → :class:`MeldedBranch`.
    """

    program: Program
    pc_map: dict
    melded: dict

    @property
    def changed(self):
        return bool(self.melded)

    def inverse_pc_map(self):
        """new pc → original pc for surviving instructions (bijective)."""
        return {new: old for old, new in self.pc_map.items()}


def find_meld_candidates(program, max_side_insts):
    """Structurally meldable hammocks, in branch-pc order.

    Two shapes (the DARM divergent-region patterns that fit a
    straight-line ISA):

    - one-sided: ``beqz/bnez c, @T`` with a branch-free fall-through
      block ``[pc+1, T)`` — join at ``T``;
    - diamond: ``beqz/bnez c, @T``, fall-through block ``[pc+1, T-1)``
      ending in ``jmp @M`` with taken block ``[T, M)`` — join at ``M``.

    A side qualifies only if every instruction is in
    :data:`MELDABLE_OPCODES`, it is no longer than ``max_side_insts``,
    and no control flow from outside the region enters it (the branch's
    own edge into the taken side is the one permitted entry).
    """
    instructions = program.instructions
    n = len(instructions)
    targeters = {}
    for pc, inst in enumerate(instructions):
        if inst.target is not None:
            targeters.setdefault(inst.target, []).append(pc)

    def side_ok(start, stop):
        if stop - start > max_side_insts:
            return False
        return all(
            instructions[q].op in MELDABLE_OPCODES
            for q in range(start, stop)
        )

    def interior_clear(branch_pc, start, stop, allowed=None):
        for q in range(start, stop):
            sources = targeters.get(q)
            if not sources:
                continue
            if q == allowed and sources == [branch_pc]:
                continue
            return False
        return True

    candidates = []
    for pc in program.conditional_branch_pcs():
        inst = instructions[pc]
        target = inst.target
        if target <= pc + 1:      # backward or degenerate: not a hammock
            continue
        # Diamond: fall-through side ends in a forward jmp over the
        # taken side.
        tail = instructions[target - 1]
        if (tail.op is Opcode.JMP and tail.target >= target
                and target - 1 > pc):
            join = tail.target
            then_range = (pc + 1, target - 1)
            else_range = (target, join)
            if (side_ok(*then_range) and side_ok(*else_range)
                    and (then_range[1] - then_range[0])
                    + (else_range[1] - else_range[0]) > 0
                    and interior_clear(pc, pc + 1, join,
                                       allowed=target)):
                candidates.append(MeldCandidate(
                    branch_pc=pc, kind="diamond",
                    then_range=then_range, else_range=else_range,
                    join_pc=join,
                ))
            continue
        # One-sided: branch-free fall-through side, join at the target.
        then_range = (pc + 1, target)
        if (target <= n and side_ok(*then_range)
            and target - (pc + 1) > 0
                and interior_clear(pc, pc + 1, target)):
            candidates.append(MeldCandidate(
                branch_pc=pc, kind="one-sided",
                then_range=then_range, else_range=(target, target),
                join_pc=target,
            ))
    return candidates


def select_meld_candidates(program, profile, thresholds, mode="short"):
    """Filter structural candidates down to the profitable ones.

    ``meld:short`` melds only profitable short hammocks: sides bounded
    by the §3.4 short-hammock size, branch executed during profiling,
    and misprediction rate at or above the short-hammock floor (a
    never-mispredicting hammock costs fetch bandwidth for nothing).
    ``meld:all`` melds every structural candidate up to
    :data:`MELD_MAX_SIDE_INSTS` per side, profile or not.
    """
    if mode not in MELD_MODES:
        raise ValueError(
            f"unknown meld mode {mode!r}; expected one of "
            f"{', '.join(MELD_MODES)}"
        )
    if mode == "all":
        return find_meld_candidates(program, MELD_MAX_SIDE_INSTS)
    candidates = find_meld_candidates(
        program, thresholds.short_hammock_max_insts
    )
    branch_profile = profile.branch_profile
    kept = []
    for candidate in candidates:
        pc = candidate.branch_pc
        if profile.edge_profile.exec_count(pc) == 0:
            continue
        if branch_profile.misprediction_rate(pc) \
                < thresholds.short_hammock_min_misp_rate:
            continue
        kept.append(candidate)
    return kept


def _free_registers(program):
    """Registers the program never references (the scratch pool)."""
    used = {ZERO_REGISTER}
    for inst in program.instructions:
        for reg in (inst.dest, inst.src1, inst.src2):
            if reg is not None:
                used.add(reg)
    return [reg for reg in range(1, NUM_REGISTERS) if reg not in used]


def _written_registers(instructions, block):
    """Registers a side writes, in first-write order (r0 excluded)."""
    written = []
    for pc in block:
        reg = instructions[pc].written_register()
        if reg is not None and reg != ZERO_REGISTER \
                and reg not in written:
            written.append(reg)
    return written


def _rename(inst, mapping):
    """One side instruction with its registers renamed into scratch."""
    if not mapping:
        return inst

    def to(reg):
        return mapping.get(reg, reg) if reg is not None else None

    return Instruction(
        op=inst.op, dest=to(inst.dest), src1=to(inst.src1),
        src2=to(inst.src2), imm=inst.imm, target=inst.target,
        label=inst.label,
    )


def _meld_sequence(instructions, candidate, pool):
    """The predicated replacement for one candidate, or ``None``.

    Layout: predicate computation, scratch seeding (``MOV t, w`` for
    every register a side writes), both side bodies renamed into their
    scratch registers, a ``CMOV`` epilogue committing the executed
    side, and a ``MOVI 0`` cleanup that restores every scratch
    register — the program never references them, so zero is their
    value in any unmelded run.  Returns ``None`` when the pool cannot
    cover the sequence's scratch needs.
    """
    branch = instructions[candidate.branch_pc]
    cond = branch.src1
    then_block = list(range(*candidate.then_range))
    else_block = list(range(*candidate.else_range))
    # The fall-through side executes when the branch is *not* taken:
    # BEQZ falls through on cond != 0, BNEZ on cond == 0.
    then_op = (Opcode.CMPNE if branch.op is Opcode.BEQZ
               else Opcode.CMPEQ)
    else_op = (Opcode.CMPEQ if branch.op is Opcode.BEQZ
               else Opcode.CMPNE)
    written_then = _written_registers(instructions, then_block)
    written_else = _written_registers(instructions, else_block)
    need = 1 + (1 if else_block else 0) \
        + len(written_then) + len(written_else)
    if need > len(pool):
        return None
    scratch = iter(pool)
    pred_then = next(scratch)
    pred_else = next(scratch) if else_block else None
    temp_then = {reg: next(scratch) for reg in written_then}
    temp_else = {reg: next(scratch) for reg in written_else}

    seq = [Instruction(op=then_op, dest=pred_then, src1=cond, imm=0)]
    if pred_else is not None:
        seq.append(
            Instruction(op=else_op, dest=pred_else, src1=cond, imm=0)
        )
    for reg in written_then:
        seq.append(Instruction(op=Opcode.MOV, dest=temp_then[reg],
                               src1=reg))
    for reg in written_else:
        seq.append(Instruction(op=Opcode.MOV, dest=temp_else[reg],
                               src1=reg))
    for pc in then_block:
        seq.append(_rename(instructions[pc], temp_then))
    for pc in else_block:
        seq.append(_rename(instructions[pc], temp_else))
    cmovs = 0
    for reg in written_then:
        seq.append(Instruction(op=Opcode.CMOV, dest=reg,
                               src1=pred_then, src2=temp_then[reg]))
        cmovs += 1
    for reg in written_else:
        seq.append(Instruction(op=Opcode.CMOV, dest=reg,
                               src1=pred_else, src2=temp_else[reg]))
        cmovs += 1
    temps = ([pred_then]
             + ([pred_else] if pred_else is not None else [])
             + [temp_then[reg] for reg in written_then]
             + [temp_else[reg] for reg in written_else])
    for reg in temps:
        seq.append(Instruction(op=Opcode.MOVI, dest=reg, imm=0))
    return seq, len(then_block), len(else_block), cmovs, len(temps)


def apply_meld(program, candidates):
    """Rewrite ``program`` with every applicable candidate melded.

    Candidate regions are disjoint by construction (sides are
    branch-free and externally unentered), so the rewrite is a single
    linear walk: copy surviving instructions, splice predicated
    sequences, then retarget surviving control flow through the pc map
    (the removed branch pcs themselves forward to their sequence
    starts, so back-edges into a melded hammock head stay correct).
    Function boundaries are recomputed during the walk.
    """
    instructions = program.instructions
    pool = _free_registers(program)
    planned = {}
    for candidate in sorted(candidates, key=lambda c: c.branch_pc):
        built = _meld_sequence(instructions, candidate, pool)
        if built is None:         # not enough scratch registers
            continue
        planned[candidate.branch_pc] = (candidate, built)
    identity = {pc: pc for pc in range(len(instructions))}
    if not planned:
        return TransformResult(
            program=program, pc_map=identity, melded={}
        )

    starts = {func.start: func for func in program.functions}
    new_instructions = []
    copied_rows = []              # (new index, original pc)
    pc_map = {}
    new_starts = {}
    melded = {}
    entry_map = {}                # removed branch pc -> sequence start
    old_pc = 0
    n = len(instructions)
    while old_pc < n:
        if old_pc in starts:
            new_starts[old_pc] = len(new_instructions)
        plan = planned.get(old_pc)
        if plan is None:
            pc_map[old_pc] = len(new_instructions)
            copied_rows.append((len(new_instructions), old_pc))
            new_instructions.append(instructions[old_pc])
            old_pc += 1
            continue
        candidate, (seq, then_insts, else_insts, cmovs, temps) = plan
        new_pc = len(new_instructions)
        new_instructions.extend(seq)
        entry_map[old_pc] = new_pc
        melded[old_pc] = MeldedBranch(
            branch_pc=old_pc, new_pc=new_pc, kind=candidate.kind,
            join_pc=candidate.join_pc, then_insts=then_insts,
            else_insts=else_insts, cmovs=cmovs, temps=temps,
        )
        old_pc = candidate.join_pc

    retarget = dict(pc_map)
    retarget.update(entry_map)
    for index, original_pc in copied_rows:
        inst = instructions[original_pc]
        if inst.target is None:
            continue
        new_target = retarget[inst.target]
        if new_target != inst.target:
            new_instructions[index] = inst.retarget(new_target)

    functions = []
    ordered = sorted(program.functions, key=lambda func: func.start)
    for position, func in enumerate(ordered):
        start = new_starts[func.start]
        end = (new_starts[ordered[position + 1].start]
               if position + 1 < len(ordered)
               else len(new_instructions))
        functions.append(Function(func.name, start, end))
    rewritten = Program(
        new_instructions, functions, name=program.name
    )
    return TransformResult(
        program=rewritten, pc_map=pc_map, melded=melded
    )


def apply_transform(ctx, result):
    """Swap the context onto the transformed program.

    The profile is remapped so downstream passes see correct counts at
    the new pcs, and the analysis is re-fetched through the manager —
    the (fingerprint, profile-key) content key makes the swap its own
    invalidation, without touching the original pair's cached entry.
    """
    ctx.program = result.program
    ctx.profile = ctx.profile.remapped(result.pc_map)
    if ctx.manager is not None:
        ctx.analysis = ctx.manager.analysis(ctx.program, ctx.profile)
    else:
        from repro.core.analysis import ProgramAnalysis

        ctx.analysis = ProgramAnalysis(ctx.program, ctx.profile)


class TransformPass(Pass):
    """A pass that rewrites the Program itself.

    Subclasses implement :meth:`rewrite` returning a
    :class:`TransformResult` (or ``None``); the base ``run`` applies a
    changed result to the context via :func:`apply_transform` and
    records it on ``state.transform`` so callers can recover the
    rewritten program and its pc map.  :meth:`attribute` is the ledger
    hook, called between rewrite and apply — decisions it emits are
    therefore in *original* pc space.

    One transform per pipeline for now; composing several would chain
    their pc maps.
    """

    name = "transform"

    def rewrite(self, ctx):
        raise NotImplementedError

    def attribute(self, ctx, result):
        """Emit ledger/trace decisions for the rewrite (optional)."""

    def run(self, ctx, state):
        result = self.rewrite(ctx)
        if result is None or not result.changed:
            return
        self.attribute(ctx, result)
        apply_transform(ctx, result)
        state.transform = result


class MeldPass(TransformPass):
    """Static if-conversion of profitable short hammocks.

    Runs first in the canonical schedule: melded hammocks leave the
    program (and the remapped profile), so every later selection pass
    sees a candidate set with those hammocks already claimed by the
    static strategy — the §6 comparison the meld experiment driver
    measures.
    """

    name = "meld"

    def __init__(self, mode="short"):
        if mode not in MELD_MODES:
            raise ValueError(
                f"unknown meld mode {mode!r}; expected one of "
                f"{', '.join(MELD_MODES)}"
            )
        self.mode = mode

    def rewrite(self, ctx):
        candidates = select_meld_candidates(
            ctx.program, ctx.profile, ctx.thresholds, self.mode
        )
        if not candidates:
            return None
        return apply_meld(ctx.program, candidates)

    def attribute(self, ctx, result):
        for branch_pc in sorted(result.melded):
            record = result.melded[branch_pc]
            ctx.emit_rejected(
                branch_pc, "melded",
                rule=f"meld:{self.mode}:{record.kind}",
            )
