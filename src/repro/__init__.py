"""Reproduction of "Profile-assisted Compiler Support for Dynamic
Predication in Diverge-Merge Processors" (Kim, Joao, Mutlu, Patt — CGO 2007).

The package is organized bottom-up:

- :mod:`repro.isa` — a small RISC instruction set, programs, and an assembler.
- :mod:`repro.emulator` — functional (ISA-level) execution and tracing.
- :mod:`repro.cfg` — control-flow graphs, dominators, loops, path enumeration.
- :mod:`repro.branchpred` — branch predictors and the JRS confidence estimator.
- :mod:`repro.memory` — the cache hierarchy.
- :mod:`repro.profiling` — edge / branch-misprediction / loop profiling.
- :mod:`repro.uarch` — the cycle-level baseline and DMP timing simulator.
- :mod:`repro.core` — the paper's contribution: diverge-branch selection
  algorithms (Alg-exact, Alg-freq, short hammocks, return CFMs, diverge
  loops), the analytical cost-benefit model, and simple baseline algorithms.
- :mod:`repro.workloads` — the synthetic SPEC-like benchmark suite.
- :mod:`repro.experiments` — harnesses regenerating every paper table/figure.
- :mod:`repro.obs` — telemetry: metrics registry, structured event
  tracing, phase timers, and run manifests (docs/observability.md).
"""

from repro._version import __version__

__all__ = ["__version__"]
