"""Campaign status and result reporting.

``status`` is operational: progress counts, failed attempts, and the
last error per failing cell — everything needed to decide whether to
resume or investigate.  ``report`` is scientific and *deterministic*:
it renders only from the spec and the journaled cell results (never
timestamps or attempt counts), so an interrupted-then-resumed campaign
prints a report byte-identical to an uninterrupted one.

The report has three views: per-cell simulation results, mean
speedup-vs-baseline per grid point (benchmark-order means, matching
the monolithic figure drivers' float summation exactly), and — for
two-axis sweeps — a threshold-sensitivity grid that reproduces the
paper's Figure 7 as a special case of a campaign.
"""

from repro.experiments.report import percent, render_table

#: Rendered in tables for cells with no (successful) result.
GAP = "—"


def format_value(value):
    """A compact, stable label for one axis value."""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def point_label(point):
    return ", ".join(f"{n}={format_value(v)}" for n, v in point)


def aggregate_means(spec, results):
    """Mean speedup per grid point over the spec's benchmarks.

    Returns ``(means, gaps)``: ``means`` maps each fully-covered point
    (as a tuple of (axis, value) pairs) to the arithmetic mean of its
    per-benchmark speedups, accumulated in spec benchmark order — the
    same summation order as the monolithic drivers, so a campaign
    reproduces e.g. Figure 7's numbers bit-for-bit.  ``gaps`` is the
    set of points missing at least one benchmark (quarantined or
    pending cells).
    """
    by_point = {point: [] for point in spec.points()}
    complete = {point: True for point in by_point}
    for cell in spec.cells():
        result = results.get(cell.cell_id)
        if result is None:
            complete[cell.point] = False
        else:
            by_point[cell.point].append(result["speedup"])
    means = {
        point: sum(values) / len(values)
        for point, values in by_point.items()
        if values and complete[point]
    }
    gaps = {point for point, ok in complete.items() if not ok}
    return means, gaps


def render_status(spec, state, directory=None):
    """Operational one-screen summary of a campaign's journal."""
    cells = spec.cells()
    total = len(cells)
    completed = sum(1 for c in cells if c.cell_id in state.results)
    quarantined = sum(1 for c in cells if c.cell_id in state.quarantined)
    pending = total - completed - quarantined
    lines = [
        f"campaign {spec.name!r} [spec {spec.spec_hash}] — "
        f"{completed}/{total} cells complete, "
        f"{quarantined} quarantined, {pending} pending",
        f"  sessions: {state.sessions}, journal records: {state.records}"
        + (f", corrupt lines skipped: {state.corrupt_lines}"
           if state.corrupt_lines else ""),
    ]
    if directory:
        lines.insert(1, f"  directory: {directory}")
    if state.cache:
        hits = sum(c.get("analysis_hits", 0) for c in state.cache.values())
        misses = sum(
            c.get("analysis_misses", 0) for c in state.cache.values()
        )
        lookups = hits + misses
        if lookups:
            lines.append(
                f"  analysis cache: {hits}/{lookups} hits "
                f"({100.0 * hits / lookups:.0f}%) across "
                f"{len(state.cache)} journaled cells"
            )
    failing = [c for c in cells if c.cell_id in state.failures]
    if failing:
        lines.append("  failing cells:")
        for cell in failing:
            failure = state.last_failure.get(cell.cell_id, {})
            status = ("quarantined"
                      if cell.cell_id in state.quarantined
                      else "will retry")
            lines.append(
                f"    {cell.cell_id} {cell.label()}: "
                f"{state.failures[cell.cell_id]} failed attempt(s), "
                f"{status} — last: [{failure.get('kind', '?')}] "
                f"{failure.get('error', '?')}"
            )
    return "\n".join(lines)


def render_report(spec, results, quarantined=(), ledgers=None,
                  resources=None):
    """The deterministic scientific report (see module docstring).

    ``ledgers`` (cell_id -> journaled decision-ledger summary) adds the
    ``--explain`` section; ``resources`` (cell_id -> journaled
    CPU/RSS usage) adds the ``--resources`` section.  Both are
    *annotations* — the base sections render identically without them.
    """
    cells = spec.cells()
    sections = [_render_header(spec, cells, results, quarantined)]
    sections.append(_render_cell_table(spec, cells, results, quarantined))
    if spec.axes:
        sections.append(_render_means(spec, results))
    if len(spec.axes) == 2:
        sections.append(_render_sensitivity(spec, results))
    if ledgers is not None:
        sections.append(_render_explain(spec, cells, ledgers))
    if resources is not None:
        sections.append(_render_resources(spec, cells, resources))
    return "\n\n".join(sections)


def _render_header(spec, cells, results, quarantined):
    done = sum(1 for c in cells if c.cell_id in results)
    gaps = sum(1 for c in cells if c.cell_id in quarantined)
    lines = [
        f"Campaign report: {spec.name} [spec {spec.spec_hash}]",
        f"  benchmarks: {', '.join(spec.benchmarks)}",
        f"  input sets: {', '.join(spec.input_sets)}  "
        f"scale: {format_value(spec.scale)}  "
        f"selection: {spec.selection}",
    ]
    for axis in spec.axes:
        values = ", ".join(format_value(v) for v in axis.values)
        lines.append(f"  axis {axis.name}: {values}")
    lines.append(
        f"  cells: {done}/{len(cells)} complete"
        + (f", {gaps} quarantined (rendered as gaps)" if gaps else "")
    )
    return "\n".join(lines)


def _render_cell_table(spec, cells, results, quarantined):
    headers = (["cell", "benchmark"]
               + [axis.name for axis in spec.axes]
               + ["base IPC", "DMP IPC", "speedup"])
    rows = []
    for cell in cells:
        row = [cell.cell_id, cell.benchmark]
        row += [format_value(value) for _, value in cell.point]
        result = results.get(cell.cell_id)
        if result is None:
            marker = ("quarantined" if cell.cell_id in quarantined
                      else "pending")
            row += [GAP, GAP, marker]
        else:
            row += [
                f"{result['baseline']['ipc']:.3f}",
                f"{result['stats']['ipc']:.3f}",
                percent(result["speedup"]),
            ]
        rows.append(row)
    return render_table(headers, rows, title="Per-cell results")


def _render_means(spec, results):
    means, gaps = aggregate_means(spec, results)
    rows = []
    for point in spec.points():
        label = point_label(point)
        if point in means:
            rows.append([label, percent(means[point])])
        else:
            rows.append([label, "gap"])
    table = render_table(
        ["Grid point", "Mean speedup"],
        rows,
        title=(
            f"Mean DMP speedup vs baseline "
            f"(over {len(spec.benchmarks)} benchmarks)"
        ),
    )
    if means:
        best = max(means, key=means.get)
        table += (
            f"\nBest point: {point_label(best)} "
            f"({percent(means[best])})"
        )
    return table


def _render_explain(spec, cells, ledgers):
    """Per-cell decision-ledger summaries (``report --explain``)."""
    headers = ["cell", "benchmark", "sel", "rej", "episodes",
               "avoided", "flushes", "net cycles", "misest", "recon"]
    rows = []
    misestimated_cells = 0
    for cell in cells:
        entry = ledgers.get(cell.cell_id)
        if entry is None:
            rows.append([cell.cell_id, cell.benchmark]
                        + [GAP] * (len(headers) - 2))
            continue
        misest = entry.get("misestimated", [])
        if misest:
            misestimated_cells += 1
        rows.append([
            cell.cell_id,
            cell.benchmark,
            str(entry.get("selected", 0)),
            str(entry.get("rejected", 0)),
            str(entry.get("episodes", 0)),
            str(entry.get("flushes_avoided", 0)),
            str(entry.get("flushes_taken", 0)),
            f"{entry.get('observed_net_cycles', 0.0):.1f}",
            ",".join(str(pc) for pc in misest) or "-",
            "ok" if entry.get("consistent") else "MISMATCH",
        ])
    table = render_table(
        headers, rows,
        title="Decision ledger (estimate vs observed, per cell)",
    )
    journaled = sum(1 for cell in cells if cell.cell_id in ledgers)
    table += (
        f"\n{journaled}/{len(cells)} cells journaled a ledger; "
        f"{misestimated_cells} carry mis-estimated branches "
        f"(run `python -m repro explain <benchmark>` to drill in)"
    )
    return table


def _render_resources(spec, cells, resources):
    """Per-cell worker CPU time and peak RSS (``report --resources``)."""
    headers = ["cell", "benchmark", "user s", "sys s", "cpu s",
               "max RSS MB"]
    rows = []
    total_cpu = 0.0
    peak_rss_kb = 0
    for cell in cells:
        entry = resources.get(cell.cell_id)
        if entry is None:
            rows.append([cell.cell_id, cell.benchmark]
                        + [GAP] * (len(headers) - 2))
            continue
        user = entry.get("user_seconds", 0.0)
        system = entry.get("system_seconds", 0.0)
        rss_kb = entry.get("max_rss_kb", 0)
        total_cpu += user + system
        peak_rss_kb = max(peak_rss_kb, rss_kb)
        rows.append([
            cell.cell_id,
            cell.benchmark,
            f"{user:.2f}",
            f"{system:.2f}",
            f"{user + system:.2f}",
            f"{rss_kb / 1024.0:.1f}",
        ])
    table = render_table(
        headers, rows,
        title="Worker resources (getrusage, per successful attempt)",
    )
    journaled = sum(1 for cell in cells if cell.cell_id in resources)
    table += (
        f"\n{journaled}/{len(cells)} cells journaled usage; "
        f"total CPU {total_cpu:.2f}s, peak worker RSS "
        f"{peak_rss_kb / 1024.0:.1f} MB"
    )
    return table


def _render_sensitivity(spec, results):
    """Figure 7-style two-axis sensitivity grid of mean speedups."""
    means, _ = aggregate_means(spec, results)
    row_axis, col_axis = spec.axes
    headers = [f"{row_axis.name} \\ {col_axis.name}"] + [
        format_value(v) for v in col_axis.values
    ]
    rows = []
    for row_value in row_axis.values:
        row = [format_value(row_value)]
        for col_value in col_axis.values:
            point = ((row_axis.name, row_value),
                     (col_axis.name, col_value))
            row.append(percent(means[point]) if point in means else "gap")
        rows.append(row)
    return render_table(
        headers, rows,
        title=f"Sensitivity: mean speedup vs "
              f"{row_axis.name} × {col_axis.name}",
    )
