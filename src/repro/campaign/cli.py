"""``python -m repro campaign {run,resume,status,report}``.

A campaign lives in one directory (default
``results/campaigns/<name>/``) holding exactly two files: the frozen
``spec.json`` and the append-only ``journal.jsonl``.  ``run`` creates
the directory and drains the sweep; ``resume`` replays the journal and
re-runs only pending/failed cells; ``status`` and ``report`` are pure
readers.  Exit codes: 0 — all cells settled (completed or
quarantined); 3 — interrupted with pending cells (``--max-cells`` or
SIGINT); 130 — SIGINT; 1 — usage or spec errors.
"""

import argparse
import os
import sys

from repro.campaign.journal import (
    JOURNAL_NAME,
    SPEC_NAME,
    Journal,
    replay,
)
from repro.campaign.report import render_report, render_status
from repro.campaign.scheduler import (
    DEFAULT_BACKOFF,
    DEFAULT_MAX_ATTEMPTS,
    Scheduler,
)
from repro.campaign.spec import CampaignSpec

#: Campaign directories live here unless ``--results-dir`` overrides.
DEFAULT_RESULTS_DIR = os.path.join("results", "campaigns")


def builtin_specs():
    """Named spec builders: ``(scale, benchmarks) -> CampaignSpec``."""
    from repro.experiments import ablations, fig7

    return {
        "fig7": fig7.campaign_spec,
        "confidence-threshold":
            ablations.campaign_spec_confidence_threshold,
        "predictor-sensitivity":
            ablations.campaign_spec_predictor_sensitivity,
        "max-cfm": ablations.campaign_spec_max_cfm,
    }


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(parser, args)
    except KeyboardInterrupt:
        print("\ncampaign interrupted; resume with: "
              "python -m repro campaign resume <name>", file=sys.stderr)
        return 130
    except (ValueError, OSError) as exc:
        print(f"python -m repro campaign: error: {exc}", file=sys.stderr)
        return 1


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Resumable, fault-tolerant design-space sweep campaigns "
            "(see docs/campaigns.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="start a new campaign from a builtin or JSON spec"
    )
    run.add_argument(
        "spec",
        help="builtin spec name "
             f"({', '.join(sorted(builtin_specs()))}) or a spec.json path",
    )
    run.add_argument("--name", default=None,
                     help="campaign name (default: the spec's name)")
    run.add_argument("--scale", type=float, default=None,
                     help="trace-length multiplier override")
    run.add_argument("--benchmarks", default="",
                     help="comma-separated benchmark subset override")
    run.add_argument("--fresh", action="store_true",
                     help="discard an existing journal for this name")
    _add_exec_args(run)
    run.set_defaults(handler=_cmd_run)

    resume = sub.add_parser(
        "resume", help="re-run only the pending/failed cells"
    )
    resume.add_argument("target", help="campaign name or directory")
    _add_exec_args(resume)
    resume.set_defaults(handler=_cmd_resume)

    status = sub.add_parser("status", help="progress and failure summary")
    status.add_argument("target", help="campaign name or directory")
    status.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    status.set_defaults(handler=_cmd_status)

    report = sub.add_parser(
        "report", help="deterministic per-cell and aggregate tables"
    )
    report.add_argument("target", help="campaign name or directory")
    report.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    report.add_argument(
        "--explain", action="store_true",
        help="append the per-cell decision-ledger section "
             "(estimate-vs-observed; journaled by each cell)",
    )
    report.add_argument(
        "--resources", action="store_true",
        help="append the per-cell worker CPU time and peak RSS "
             "section (getrusage; journaled by each cell)",
    )
    report.set_defaults(handler=_cmd_report)
    return parser


def _add_exec_args(sub):
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="concurrent cell workers (default 1)")
    sub.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-cell wall-clock budget in seconds")
    sub.add_argument("--retries", type=int,
                     default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                     help="total attempts before quarantine "
                          f"(default {DEFAULT_MAX_ATTEMPTS})")
    sub.add_argument("--backoff", type=float,
                     default=DEFAULT_BACKOFF, metavar="S",
                     help="first-retry backoff seconds, doubling "
                          f"(default {DEFAULT_BACKOFF})")
    sub.add_argument("--max-cells", type=int, default=None, metavar="N",
                     help="stop after N completed cells (for smoke "
                          "tests of resume)")
    sub.add_argument("--sim-engine",
                     choices=("auto", "scalar", "vectorized"),
                     default=None,
                     help="timing-simulator engine for cell workers "
                          "(default: process default / auto; results "
                          "are engine-independent)")
    sub.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR,
                     help=f"campaign root (default {DEFAULT_RESULTS_DIR})")


def _campaign_dir(target, results_dir):
    """Resolve a campaign name-or-directory to its directory."""
    if os.path.isdir(target) \
            and os.path.exists(os.path.join(target, SPEC_NAME)):
        return target
    return os.path.join(results_dir, target)


def _cmd_run(parser, args):
    spec = _resolve_spec(args)
    name = args.name or spec.name
    directory = os.path.join(args.results_dir, name)
    journal_path = os.path.join(directory, JOURNAL_NAME)
    if args.fresh and os.path.exists(directory):
        for filename in (JOURNAL_NAME, SPEC_NAME):
            path = os.path.join(directory, filename)
            if os.path.exists(path):
                os.remove(path)
    if os.path.exists(journal_path) \
            and os.path.getsize(journal_path) > 0:
        parser.error(
            f"campaign {name!r} already has a journal at "
            f"{journal_path}; use 'campaign resume {name}' "
            f"(or run --fresh to discard it)"
        )
    os.makedirs(directory, exist_ok=True)
    spec.dump(os.path.join(directory, SPEC_NAME))
    return _execute(spec, directory, args, replay(journal_path))


def _cmd_resume(parser, args):
    directory = _campaign_dir(args.target, args.results_dir)
    spec_path = os.path.join(directory, SPEC_NAME)
    if not os.path.exists(spec_path):
        parser.error(f"no campaign spec at {spec_path}")
    spec = CampaignSpec.load(spec_path)
    state = replay(os.path.join(directory, JOURNAL_NAME))
    if state.spec_hash is not None and state.spec_hash != spec.spec_hash:
        parser.error(
            f"journal was written for spec {state.spec_hash} but "
            f"{SPEC_NAME} now hashes to {spec.spec_hash}; refusing "
            f"to mix results"
        )
    return _execute(spec, directory, args, state)


def _execute(spec, directory, args, state):
    if args.jobs < 1:
        raise ValueError("--jobs must be >= 1")
    pending = state.pending_cells(spec)
    total = len(spec.cells())
    if not pending:
        print(f"campaign {spec.name!r}: all {total} cells already "
              f"settled; nothing to do")
        print(f"  report: python -m repro campaign report {spec.name}")
        return 0
    print(f"campaign {spec.name!r}: {len(pending)}/{total} cells to "
          f"run under {args.jobs} worker(s) [{directory}]")
    with Journal(os.path.join(directory, JOURNAL_NAME)) as journal:
        journal.campaign_start(spec.name, spec.spec_hash, args.jobs)
        scheduler = Scheduler(
            spec, journal,
            jobs=args.jobs,
            max_attempts=args.retries,
            backoff=args.backoff,
            cell_timeout=args.timeout,
            sim_engine=args.sim_engine,
        )
        summary = scheduler.run(state, max_cells=args.max_cells)
    completed = len(summary["results"])
    quarantined = len(summary["quarantined"])
    print(f"campaign {spec.name!r}: {completed}/{total} cells complete, "
          f"{quarantined} quarantined, "
          f"{summary['session_completed']} run this session")
    if summary["interrupted"]:
        print(f"  interrupted with {summary['pending']} cells pending; "
              f"resume with: python -m repro campaign resume {spec.name}")
        return 3
    print(f"  report: python -m repro campaign report {spec.name}")
    return 0


def _cmd_status(parser, args):
    directory = _campaign_dir(args.target, args.results_dir)
    spec_path = os.path.join(directory, SPEC_NAME)
    if not os.path.exists(spec_path):
        parser.error(f"no campaign spec at {spec_path}")
    spec = CampaignSpec.load(spec_path)
    state = replay(os.path.join(directory, JOURNAL_NAME))
    print(render_status(spec, state, directory=directory))
    return 0


def _cmd_report(parser, args):
    directory = _campaign_dir(args.target, args.results_dir)
    spec_path = os.path.join(directory, SPEC_NAME)
    if not os.path.exists(spec_path):
        parser.error(f"no campaign spec at {spec_path}")
    spec = CampaignSpec.load(spec_path)
    state = replay(os.path.join(directory, JOURNAL_NAME))
    print(render_report(
        spec, state.results,
        quarantined=state.quarantined,
        ledgers=state.ledger if args.explain else None,
        resources=state.resources if args.resources else None,
    ))
    return 0


def _resolve_spec(args):
    builders = builtin_specs()
    benchmarks = [
        b.strip() for b in args.benchmarks.split(",") if b.strip()
    ] or None
    if args.spec in builders:
        scale = args.scale if args.scale is not None else 1.0
        return builders[args.spec](scale=scale, benchmarks=benchmarks)
    if not os.path.exists(args.spec):
        raise ValueError(
            f"{args.spec!r} is neither a builtin spec "
            f"({', '.join(sorted(builders))}) nor a spec file"
        )
    spec = CampaignSpec.load(args.spec)
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if benchmarks:
        overrides["benchmarks"] = tuple(benchmarks)
    if overrides:
        import dataclasses

        spec = dataclasses.replace(spec, **overrides)
    return spec
