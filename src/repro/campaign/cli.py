"""``python -m repro campaign {run,resume,status,watch,report,merge}``.

A campaign lives in one directory (default
``results/campaigns/<name>/``) holding the frozen ``spec.json`` and
the append-only ``journal.jsonl``.  ``run`` creates the directory and
drains the sweep; ``resume`` replays the journal and re-runs only
pending/failed cells; ``status`` and ``report`` are pure readers.

Sharded runs (``--shards N --shard-index I``) drain only the cells
whose content-hashed ID lands in shard I, journaling into
``journal.shard-I-of-N.jsonl`` — run each shard on its own machine
against the same spec, collect the shard journals into one directory,
and ``merge`` recombines them into the ``journal.jsonl`` an unsharded
run would have produced (``report`` output is byte-identical).

Exit codes: 0 — all cells settled (completed or quarantined); 3 —
interrupted with pending cells (``--max-cells`` or SIGINT); 130 —
SIGINT; 143 — SIGTERM; 1 — usage or spec errors.  Both interrupt
paths drain cleanly: in-flight workers are terminated, every durably
journaled record survives, and no traceback is spewed.
"""

import argparse
import os
import signal
import sys

from repro.campaign.backends import (
    LocalPoolBackend,
    ShardedBackend,
)
from repro.campaign.journal import (
    JOURNAL_NAME,
    SPEC_NAME,
    Journal,
    find_shard_journals,
    merge_shard_journals,
    replay,
)
from repro.campaign.report import render_report, render_status
from repro.campaign.scheduler import (
    DEFAULT_BACKOFF,
    DEFAULT_MAX_ATTEMPTS,
    Scheduler,
)
from repro.campaign.spec import CampaignSpec
from repro.obs import tracectx
from repro.obs.spans import span

#: Campaign directories live here unless ``--results-dir`` overrides.
DEFAULT_RESULTS_DIR = os.path.join("results", "campaigns")


def builtin_specs():
    """Named spec builders: ``(scale, benchmarks) -> CampaignSpec``."""
    from repro.experiments import ablations, fig7, meldcompare

    return {
        "fig7": fig7.campaign_spec,
        "meld": meldcompare.campaign_spec,
        "confidence-threshold":
            ablations.campaign_spec_confidence_threshold,
        "predictor-sensitivity":
            ablations.campaign_spec_predictor_sensitivity,
        "max-cfm": ablations.campaign_spec_max_cfm,
    }


class _Terminated(Exception):
    """SIGTERM arrived; unwind like ^C but exit 143."""


def _raise_terminated(signum, frame):
    raise _Terminated()


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    # SIGTERM drains exactly like ^C: the scheduler's finally-block
    # terminates in-flight workers, the journal already holds every
    # durable record, and the exit is a clean nonzero code instead of
    # a traceback.  Only install in the main thread (signal handlers
    # are process-global; embedded callers keep their own).
    previous_term = None
    try:
        previous_term = signal.signal(signal.SIGTERM, _raise_terminated)
    except ValueError:  # pragma: no cover — not the main thread
        pass
    try:
        return args.handler(parser, args)
    except KeyboardInterrupt:
        print("\ncampaign interrupted; resume with: "
              "python -m repro campaign resume <name>", file=sys.stderr)
        return 130
    except _Terminated:
        print("\ncampaign terminated; resume with: "
              "python -m repro campaign resume <name>", file=sys.stderr)
        return 143
    except (ValueError, OSError) as exc:
        print(f"python -m repro campaign: error: {exc}", file=sys.stderr)
        return 1
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Resumable, fault-tolerant design-space sweep campaigns "
            "(see docs/campaigns.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="start a new campaign from a builtin or JSON spec"
    )
    run.add_argument(
        "spec",
        help="builtin spec name "
             f"({', '.join(sorted(builtin_specs()))}) or a spec.json path",
    )
    run.add_argument("--name", default=None,
                     help="campaign name (default: the spec's name)")
    run.add_argument("--scale", type=float, default=None,
                     help="trace-length multiplier override")
    run.add_argument("--benchmarks", default="",
                     help="comma-separated benchmark subset override")
    run.add_argument("--fresh", action="store_true",
                     help="discard an existing journal for this name")
    _add_exec_args(run)
    run.set_defaults(handler=_cmd_run)

    resume = sub.add_parser(
        "resume", help="re-run only the pending/failed cells"
    )
    resume.add_argument("target", help="campaign name or directory")
    _add_exec_args(resume)
    resume.set_defaults(handler=_cmd_resume)

    status = sub.add_parser("status", help="progress and failure summary")
    status.add_argument("target", help="campaign name or directory")
    status.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    status.set_defaults(handler=_cmd_status)

    watch = sub.add_parser(
        "watch",
        help="live status view tailing the journal(s) across shards "
             "(pure reader; never perturbs the run)",
    )
    watch.add_argument("target", help="campaign name or directory")
    watch.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    watch.add_argument("--interval", type=float, default=2.0,
                       metavar="S",
                       help="seconds between refreshes (default 2)")
    watch.add_argument("--once", action="store_true",
                       help="render a single frame and exit")
    watch.set_defaults(handler=_cmd_watch)

    report = sub.add_parser(
        "report", help="deterministic per-cell and aggregate tables"
    )
    report.add_argument("target", help="campaign name or directory")
    report.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    report.add_argument(
        "--explain", action="store_true",
        help="append the per-cell decision-ledger section "
             "(estimate-vs-observed; journaled by each cell)",
    )
    report.add_argument(
        "--resources", action="store_true",
        help="append the per-cell worker CPU time and peak RSS "
             "section (getrusage; journaled by each cell)",
    )
    report.set_defaults(handler=_cmd_report)

    merge = sub.add_parser(
        "merge",
        help="recombine shard journals into one journal.jsonl "
             "(report is byte-identical to an unsharded run)",
    )
    merge.add_argument("target", help="campaign name or directory")
    merge.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    merge.add_argument(
        "--force", action="store_true",
        help="overwrite an existing journal.jsonl",
    )
    merge.set_defaults(handler=_cmd_merge)
    return parser


def _add_exec_args(sub):
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="concurrent cell workers (default 1)")
    sub.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-cell wall-clock budget in seconds")
    sub.add_argument("--retries", type=int,
                     default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                     help="total attempts before quarantine "
                          f"(default {DEFAULT_MAX_ATTEMPTS})")
    sub.add_argument("--backoff", type=float,
                     default=DEFAULT_BACKOFF, metavar="S",
                     help="first-retry backoff seconds, doubling "
                          f"(default {DEFAULT_BACKOFF})")
    sub.add_argument("--max-cells", type=int, default=None, metavar="N",
                     help="stop after N completed cells (for smoke "
                          "tests of resume)")
    sub.add_argument("--sim-engine",
                     choices=("auto", "scalar", "vectorized"),
                     default=None,
                     help="timing-simulator engine for cell workers "
                          "(default: process default / auto; results "
                          "are engine-independent)")
    sub.add_argument("--shards", type=int, default=None, metavar="N",
                     help="split the spec's cells across N shard "
                          "journals by content-hashed cell ID; this "
                          "invocation runs one shard (see merge)")
    sub.add_argument("--shard-index", type=int, default=None,
                     metavar="I",
                     help="which shard (0..N-1) this invocation runs "
                          "(requires --shards)")
    sub.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR,
                     help=f"campaign root (default {DEFAULT_RESULTS_DIR})")
    sub.add_argument("--trace-dir", default=None, metavar="DIR",
                     help="enable distributed tracing: spool spans "
                          "from the scheduler and every cell worker "
                          "into DIR (default: $REPRO_TRACE_DIR when "
                          "set; see 'python -m repro trace show')")


def _resolve_backend(parser, args):
    """The execution backend the run/resume flags describe."""
    if args.shards is None and args.shard_index is None:
        return LocalPoolBackend()
    if args.shards is None or args.shard_index is None:
        parser.error("--shards and --shard-index go together")
    try:
        return ShardedBackend(args.shards, args.shard_index)
    except ValueError as exc:
        parser.error(str(exc))


def _campaign_dir(target, results_dir):
    """Resolve a campaign name-or-directory to its directory."""
    if os.path.isdir(target) \
            and os.path.exists(os.path.join(target, SPEC_NAME)):
        return target
    return os.path.join(results_dir, target)


def _cmd_run(parser, args):
    spec = _resolve_spec(args)
    backend = _resolve_backend(parser, args)
    name = args.name or spec.name
    directory = os.path.join(args.results_dir, name)
    journal_path = os.path.join(directory, backend.journal_name())
    if args.fresh and os.path.exists(directory):
        for filename in (backend.journal_name(), SPEC_NAME):
            path = os.path.join(directory, filename)
            if os.path.exists(path):
                os.remove(path)
    if os.path.exists(journal_path) \
            and os.path.getsize(journal_path) > 0:
        parser.error(
            f"campaign {name!r} already has a journal at "
            f"{journal_path}; use 'campaign resume {name}' "
            f"(or run --fresh to discard it)"
        )
    os.makedirs(directory, exist_ok=True)
    spec_path = os.path.join(directory, SPEC_NAME)
    if os.path.exists(spec_path):
        # Another shard of the same campaign may have written it
        # already; identical specs dump identical bytes, mismatched
        # ones must not share a directory.
        existing = CampaignSpec.load(spec_path)
        if existing.spec_hash != spec.spec_hash:
            parser.error(
                f"{spec_path} holds spec {existing.spec_hash} but this "
                f"run resolves to {spec.spec_hash}; refusing to mix"
            )
    spec.dump(spec_path)
    return _execute(spec, directory, args, replay(journal_path),
                    backend)


def _cmd_resume(parser, args):
    directory = _campaign_dir(args.target, args.results_dir)
    spec_path = os.path.join(directory, SPEC_NAME)
    if not os.path.exists(spec_path):
        parser.error(f"no campaign spec at {spec_path}")
    spec = CampaignSpec.load(spec_path)
    backend = _resolve_backend(parser, args)
    state = replay(os.path.join(directory, backend.journal_name()))
    if state.spec_hash is not None and state.spec_hash != spec.spec_hash:
        parser.error(
            f"journal was written for spec {state.spec_hash} but "
            f"{SPEC_NAME} now hashes to {spec.spec_hash}; refusing "
            f"to mix results"
        )
    return _execute(spec, directory, args, state, backend)


def _trace_context(args, backend):
    """The run's :class:`~repro.obs.tracectx.TraceContext`, or None.

    Tracing is opt-in: ``--trace-dir DIR`` (or an inherited
    ``REPRO_TRACE_DIR``) turns it on.  When ``REPRO_TRACEPARENT`` is
    also set, this run *joins* the caller's trace (e.g. a driver
    orchestrating several shards) instead of rooting a new one.
    """
    trace_dir = args.trace_dir \
        or os.environ.get(tracectx.TRACE_DIR_ENV) or None
    if not trace_dir:
        return None
    service = "campaign"
    if isinstance(backend, ShardedBackend):
        service = f"campaign-shard{backend.shard_index}"
    ctx = tracectx.TraceContext.from_env(service=service)
    if ctx is not None:
        if ctx.spool is None:
            ctx.spool = tracectx.SpanSpool(trace_dir)
        return ctx
    return tracectx.TraceContext.root(service=service,
                                      trace_dir=trace_dir)


def _execute(spec, directory, args, state, backend):
    if args.jobs < 1:
        raise ValueError("--jobs must be >= 1")
    owned = [cell for cell in spec.cells() if backend.owns(cell)]
    pending = [
        cell for cell in state.pending_cells(spec)
        if backend.owns(cell)
    ]
    total = len(owned)
    shard_note = ""
    if isinstance(backend, ShardedBackend):
        shard_note = (f" (shard {backend.shard_index}/{backend.shards}: "
                      f"{total} of {len(spec.cells())} cells)")
    if not pending:
        print(f"campaign {spec.name!r}: all {total} cells already "
              f"settled{shard_note}; nothing to do")
        print(f"  report: python -m repro campaign report {spec.name}")
        return 0
    print(f"campaign {spec.name!r}: {len(pending)}/{total} cells to "
          f"run under {args.jobs} worker(s){shard_note} [{directory}]")
    ctx = _trace_context(args, backend)
    from contextlib import ExitStack

    with ExitStack() as stack:
        stack.enter_context(tracectx.activate(ctx))
        if ctx is not None:
            stack.enter_context(span(
                "campaign.run",
                attrs={"campaign": spec.name, "pending": len(pending)},
            ))
        journal = stack.enter_context(
            Journal(os.path.join(directory, backend.journal_name()))
        )
        journal.campaign_start(spec.name, spec.spec_hash, args.jobs)
        scheduler = Scheduler(
            spec, journal,
            jobs=args.jobs,
            max_attempts=args.retries,
            backoff=args.backoff,
            cell_timeout=args.timeout,
            sim_engine=args.sim_engine,
            backend=backend,
        )
        summary = scheduler.run(state, max_cells=args.max_cells)
    completed = len(summary["results"])
    quarantined = len(summary["quarantined"])
    print(f"campaign {spec.name!r}: {completed}/{total} cells complete, "
          f"{quarantined} quarantined, "
          f"{summary['session_completed']} run this session")
    if ctx is not None:
        print(f"  trace: python -m repro trace show {ctx.trace_id} "
              f"--dir {ctx.spool.directory}")
    if summary["interrupted"]:
        print(f"  interrupted with {summary['pending']} cells pending; "
              f"resume with: python -m repro campaign resume {spec.name}")
        return 3
    if isinstance(backend, ShardedBackend):
        print(f"  merge shards: python -m repro campaign merge "
              f"{spec.name}")
    else:
        print(f"  report: python -m repro campaign report {spec.name}")
    return 0


def _warn_unmerged_shards(directory):
    """Point at ``campaign merge`` when only shard journals exist."""
    journal_path = os.path.join(directory, JOURNAL_NAME)
    if os.path.exists(journal_path) \
            and os.path.getsize(journal_path) > 0:
        return
    try:
        shards = find_shard_journals(directory)
    except ValueError:
        return
    if shards:
        print(
            f"note: {len(shards)} unmerged shard journal(s) in "
            f"{directory}; run 'python -m repro campaign merge "
            f"{os.path.basename(directory)}' to combine them",
            file=sys.stderr,
        )


def _cmd_status(parser, args):
    directory = _campaign_dir(args.target, args.results_dir)
    spec_path = os.path.join(directory, SPEC_NAME)
    if not os.path.exists(spec_path):
        parser.error(f"no campaign spec at {spec_path}")
    spec = CampaignSpec.load(spec_path)
    _warn_unmerged_shards(directory)
    state = replay(os.path.join(directory, JOURNAL_NAME))
    print(render_status(spec, state, directory=directory))
    return 0


def _cmd_watch(parser, args):
    from repro.campaign.watch import watch_loop

    directory = _campaign_dir(args.target, args.results_dir)
    spec_path = os.path.join(directory, SPEC_NAME)
    if not os.path.exists(spec_path):
        parser.error(f"no campaign spec at {spec_path}")
    spec = CampaignSpec.load(spec_path)
    if args.interval <= 0:
        parser.error("--interval must be > 0")
    return watch_loop(spec, directory, interval=args.interval,
                      once=args.once)


def _cmd_report(parser, args):
    directory = _campaign_dir(args.target, args.results_dir)
    spec_path = os.path.join(directory, SPEC_NAME)
    if not os.path.exists(spec_path):
        parser.error(f"no campaign spec at {spec_path}")
    spec = CampaignSpec.load(spec_path)
    _warn_unmerged_shards(directory)
    state = replay(os.path.join(directory, JOURNAL_NAME))
    print(render_report(
        spec, state.results,
        quarantined=state.quarantined,
        ledgers=state.ledger if args.explain else None,
        resources=state.resources if args.resources else None,
    ))
    return 0


def _cmd_merge(parser, args):
    directory = _campaign_dir(args.target, args.results_dir)
    if not os.path.isdir(directory):
        parser.error(f"no campaign directory at {directory}")
    summary = merge_shard_journals(directory, force=args.force)
    present = len(summary["shards"])
    expected = summary["shard_count"]
    print(f"merged {present}/{expected} shard journal(s) "
          f"({summary['records']} records) into {summary['output']}")
    if summary["corrupt_lines"]:
        print(f"  skipped {summary['corrupt_lines']} corrupt "
              f"(torn-tail) line(s)")
    if present < expected:
        missing = sorted(
            set(range(expected))
            - {index for index, _ in summary["shards"]}
        )
        print(f"  warning: shard(s) {missing} missing — their cells "
              f"will show as pending", file=sys.stderr)
    print(f"  report: python -m repro campaign report "
          f"{os.path.basename(directory)}")
    return 0


def _resolve_spec(args):
    builders = builtin_specs()
    benchmarks = [
        b.strip() for b in args.benchmarks.split(",") if b.strip()
    ] or None
    if args.spec in builders:
        scale = args.scale if args.scale is not None else 1.0
        return builders[args.spec](scale=scale, benchmarks=benchmarks)
    if not os.path.exists(args.spec):
        raise ValueError(
            f"{args.spec!r} is neither a builtin spec "
            f"({', '.join(sorted(builders))}) nor a spec file"
        )
    spec = CampaignSpec.load(args.spec)
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if benchmarks:
        overrides["benchmarks"] = tuple(benchmarks)
    if overrides:
        import dataclasses

        spec = dataclasses.replace(spec, **overrides)
    return spec
