"""The durable campaign journal: append-only JSONL, replayable.

Every state transition of a campaign is one line in
``results/campaigns/<name>/journal.jsonl``:

- ``campaign.start`` — a scheduler session began (one per run/resume),
  carrying the spec hash so resume can refuse a mismatched spec;
- ``cell.start`` — a cell attempt was handed to a worker;
- ``cell.finish`` — the attempt succeeded, with the cell's result dict;
- ``cell.fail`` — the attempt raised, crashed, or timed out;
- ``cell.quarantine`` — the cell exhausted its attempt budget and is
  now an explicit gap.

Records are flushed and fsynced as they are written, so the journal
survives ``kill -9`` of the scheduler: at worst the trailing line is
truncated, which :func:`replay` tolerates (a started-but-unfinished
cell simply counts as pending again).  Replaying the journal plus the
spec is the *entire* resume protocol — there is no other state.
"""

import json
import os
import re
import time
from dataclasses import dataclass, field

#: Journal file name inside a campaign directory.
JOURNAL_NAME = "journal.jsonl"

#: Spec file name inside a campaign directory.
SPEC_NAME = "spec.json"

#: Shard journals written by the sharded backend (see
#: :mod:`repro.campaign.backends`): ``journal.shard-I-of-N.jsonl``.
SHARD_JOURNAL_RE = re.compile(
    r"^journal\.shard-(\d+)-of-(\d+)\.jsonl$"
)


class Journal:
    """Append-only JSONL writer with per-record durability."""

    def __init__(self, path):
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, record):
        """Write one record durably; returns the record."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        return record

    def close(self):
        self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- record constructors (all include a wall-clock timestamp) -----

    def campaign_start(self, name, spec_hash, jobs):
        return self.append({
            "type": "campaign.start", "campaign": name,
            "spec_hash": spec_hash, "jobs": jobs, "ts": time.time(),
        })

    def cell_start(self, cell_id, attempt):
        return self.append({
            "type": "cell.start", "cell_id": cell_id,
            "attempt": attempt, "ts": time.time(),
        })

    def cell_finish(self, cell_id, attempt, seconds, result, cache=None,
                    ledger=None, resources=None):
        record = {
            "type": "cell.finish", "cell_id": cell_id,
            "attempt": attempt, "seconds": seconds,
            "result": result, "ts": time.time(),
        }
        if cache is not None:
            # Worker-side cache counters (analysis hits/misses) — an
            # operational annotation, surfaced by ``status`` only; the
            # deterministic ``report`` never reads it.
            record["cache"] = cache
        if ledger is not None:
            # Compact decision-ledger summary (see
            # ``repro.obs.explain.cell_ledger_summary``); like the cache
            # counters, an annotation — the base ``report`` ignores it,
            # ``report --explain`` renders it.
            record["ledger"] = ledger
        if resources is not None:
            # Worker-process CPU time and peak RSS (getrusage) — again
            # an annotation: the base ``report`` stays byte-identical,
            # ``report --resources`` renders it.
            record["resources"] = resources
        return self.append(record)

    def cell_fail(self, cell_id, attempt, kind, error, seconds):
        return self.append({
            "type": "cell.fail", "cell_id": cell_id,
            "attempt": attempt, "kind": kind, "error": error,
            "seconds": seconds, "ts": time.time(),
        })

    def cell_quarantine(self, cell_id, attempts):
        return self.append({
            "type": "cell.quarantine", "cell_id": cell_id,
            "attempts": attempts, "ts": time.time(),
        })


@dataclass
class JournalState:
    """The durable state reconstructed by :func:`replay`."""

    spec_hash: str = None
    #: cell_id -> result dict of the first successful attempt.
    results: dict = field(default_factory=dict)
    #: cell_id -> number of *failed* attempts so far.
    failures: dict = field(default_factory=dict)
    #: cell_id -> last failure record (kind/error), for status output.
    last_failure: dict = field(default_factory=dict)
    #: cell_id -> cache counters of the successful attempt (when the
    #: journal recorded them; older journals simply have none).
    cache: dict = field(default_factory=dict)
    #: cell_id -> decision-ledger summary of the successful attempt
    #: (when recorded; rendered by ``campaign report --explain``).
    ledger: dict = field(default_factory=dict)
    #: cell_id -> worker CPU/RSS usage of the successful attempt
    #: (when recorded; rendered by ``campaign report --resources``).
    resources: dict = field(default_factory=dict)
    quarantined: set = field(default_factory=set)
    #: cell_ids with a start but (yet) no finish/fail — in-flight when
    #: the previous session died; they count as pending on resume.
    in_flight: set = field(default_factory=set)
    records: int = 0
    sessions: int = 0
    #: Truncated/corrupt lines skipped (normally 0 or a trailing 1).
    corrupt_lines: int = 0

    @property
    def completed(self):
        return set(self.results)

    def pending_cells(self, spec):
        """Spec cells still needing work, in spec order."""
        return [
            cell for cell in spec.cells()
            if cell.cell_id not in self.results
            and cell.cell_id not in self.quarantined
        ]


def replay(path):
    """Fold a journal back into a :class:`JournalState`.

    Missing file means a fresh campaign (empty state).  A corrupt line
    (torn write from a crash) is counted and skipped; everything that
    was durably recorded before it still replays.
    """
    state = JournalState()
    if not os.path.exists(path):
        return state
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                state.corrupt_lines += 1
                continue
            state.records += 1
            _apply(state, record)
    return state


def _apply(state, record):
    kind = record.get("type")
    cell_id = record.get("cell_id")
    if kind == "campaign.start":
        state.sessions += 1
        spec_hash = record.get("spec_hash")
        if state.spec_hash is None:
            state.spec_hash = spec_hash
        elif spec_hash != state.spec_hash:
            raise ValueError(
                f"journal mixes spec hashes {state.spec_hash!r} and "
                f"{spec_hash!r}; refusing to resume"
            )
    elif kind == "cell.start":
        state.in_flight.add(cell_id)
    elif kind == "cell.finish":
        state.in_flight.discard(cell_id)
        # First success wins; a duplicate (replayed cell) must agree.
        state.results.setdefault(cell_id, record.get("result"))
        if "cache" in record:
            state.cache.setdefault(cell_id, record["cache"])
        if "ledger" in record:
            state.ledger.setdefault(cell_id, record["ledger"])
        if "resources" in record:
            state.resources.setdefault(cell_id, record["resources"])
    elif kind == "cell.fail":
        state.in_flight.discard(cell_id)
        state.failures[cell_id] = state.failures.get(cell_id, 0) + 1
        state.last_failure[cell_id] = {
            "kind": record.get("kind"), "error": record.get("error"),
        }
    elif kind == "cell.quarantine":
        state.quarantined.add(cell_id)
    # Unknown record types are ignored so newer journals still replay.


# -- shard journals ------------------------------------------------------


def find_shard_journals(directory):
    """Shard journals in a campaign directory, sorted by shard index.

    Returns ``[(index, count, path), ...]``.  Raises :class:`ValueError`
    when the shards disagree on the shard count or repeat an index —
    mixing journals from differently-sharded runs would silently drop
    or duplicate cells.
    """
    shards = []
    for name in sorted(os.listdir(directory)):
        match = SHARD_JOURNAL_RE.match(name)
        if match:
            index, count = int(match.group(1)), int(match.group(2))
            shards.append((index, count, os.path.join(directory, name)))
    if not shards:
        return []
    counts = {count for _, count, _ in shards}
    if len(counts) != 1:
        raise ValueError(
            f"shard journals disagree on the shard count: "
            f"{sorted(counts)} — refusing to merge mixed shardings"
        )
    indexes = [index for index, _, _ in shards]
    if len(set(indexes)) != len(indexes):
        raise ValueError("duplicate shard journal index")
    return sorted(shards)


def merge_shard_journals(directory, output=None, force=False):
    """Recombine shard journals into one ``journal.jsonl``.

    Concatenates the shard journals' durable records in shard-index
    order (corrupt torn-tail lines are skipped and counted, exactly as
    :func:`replay` would skip them).  The merged journal replays to the
    union of the shards' states, and because shard ownership partitions
    the cell-ID space, ``campaign report`` over the merge is
    byte-identical to the report of an unsharded run of the same spec.

    Refuses to overwrite an existing non-empty ``journal.jsonl``
    unless ``force``; refuses journals with mismatched spec hashes.
    Returns a summary dict (shards, records, corrupt lines, output
    path).
    """
    shards = find_shard_journals(directory)
    if not shards:
        raise ValueError(f"no shard journals under {directory}")
    output = output or os.path.join(directory, JOURNAL_NAME)
    if not force and os.path.exists(output) \
            and os.path.getsize(output) > 0:
        raise ValueError(
            f"{output} already exists; use --force to overwrite it"
        )
    lines = []
    records = 0
    corrupt = 0
    spec_hashes = set()
    for _, _, path in shards:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    corrupt += 1
                    continue
                if record.get("type") == "campaign.start":
                    spec_hashes.add(record.get("spec_hash"))
                records += 1
                lines.append(line)
    if len(spec_hashes) > 1:
        raise ValueError(
            f"shard journals mix spec hashes "
            f"{sorted(map(str, spec_hashes))}; refusing to merge"
        )
    tmp = output + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, output)
    return {
        "output": output,
        "shards": [(index, count) for index, count, _ in shards],
        "shard_count": shards[0][1],
        "records": records,
        "corrupt_lines": corrupt,
        "spec_hash": next(iter(spec_hashes)) if spec_hashes else None,
    }
